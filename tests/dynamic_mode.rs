//! Integration tests of the dynamic (two-vector) analysis mode against
//! the dynamic Monte Carlo baseline, across circuit families.

use psta::celllib::{DelayModel, Timing};
use psta::core::{dynamic, AnalysisConfig};
use psta::netlist::generate::ripple_carry_adder;
use psta::netlist::samples;
use psta::sta::monte_carlo::McConfig;
use psta::sta::transition::{monte_carlo_transition, simulate_transition};

#[test]
fn adder_carry_chain_transition_matches_mc() {
    let bits = 4;
    let nl = ripple_carry_adder(bits);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(9));
    // 0 + 0 -> 0xF + 1: the carry ripples the full length.
    let n_in = nl.primary_inputs().len();
    let v1 = vec![false; n_in];
    let mut v2 = vec![false; n_in];
    for i in 0..bits {
        v2[2 * i] = true;
    }
    v2[1] = true;

    let pep = dynamic::analyze_transition(&nl, &timing, &v1, &v2, &AnalysisConfig::default());
    let mc = monte_carlo_transition(
        &nl,
        &timing,
        &v1,
        &v2,
        &McConfig {
            runs: 5_000,
            ..McConfig::default()
        },
    );
    for id in nl.node_ids() {
        assert_eq!(
            pep.transitions(id),
            mc.pattern.transitions(id),
            "transition pattern must agree at {}",
            nl.node_name(id)
        );
        if let (Some(pm), Some(mm)) = (pep.mean_time(id), mc.mean(id)) {
            let rel = (pm - mm).abs() / mm.max(1e-9);
            assert!(rel < 0.06, "{}: pep {pm} mc {mm}", nl.node_name(id));
        }
    }
}

#[test]
fn transition_polarity_tracked_through_reconvergence() {
    let nl = samples::fig6();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(5));
    let n_in = nl.primary_inputs().len();
    let v1 = vec![false; n_in];
    let v2 = vec![true; n_in];
    let pep = dynamic::analyze_transition(&nl, &timing, &v1, &v2, &AnalysisConfig::default());
    let pattern = simulate_transition(&nl, &v1, &v2, |g, p| timing.arc_mean(g, p));
    for id in nl.node_ids() {
        assert_eq!(pep.transitions(id), pattern.transitions(id));
        if pep.transitions(id) {
            assert_eq!(pep.is_rising(id), pattern.is_rising(id));
            assert!(!pep.group(id).is_empty());
        } else {
            assert!(pep.group(id).is_empty());
        }
    }
}

#[test]
fn glitch_free_vectors_produce_no_events() {
    // Same vector twice: nothing switches anywhere.
    let nl = samples::c17();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(5));
    let v = vec![true, false, true, false, true];
    let pep = dynamic::analyze_transition(&nl, &timing, &v, &v, &AnalysisConfig::default());
    for id in nl.node_ids() {
        assert!(!pep.transitions(id));
        assert!(pep.group(id).is_empty());
    }
    assert_eq!(
        pep.stats().supergates,
        0,
        "nothing active, nothing evaluated"
    );
}
