//! End-to-end integration tests spanning every crate: netlist parsing →
//! delay annotation → analysis → comparison against the Monte Carlo and
//! enumeration oracles.

use psta::celllib::{DelayModel, DelayShape, Timing};
use psta::core::{analyze, compare, validate, AnalysisConfig, ArcPmfs, CombineMode};
use psta::dist::TimeStep;
use psta::netlist::{parse_bench, samples, to_bench};
use psta::sta::monte_carlo::{run_monte_carlo, McConfig};

#[test]
fn bench_text_through_full_pipeline() {
    // Parse → write → reparse → annotate → analyze: identical results.
    let nl1 = samples::c17();
    let nl2 = parse_bench("c17", &to_bench(&nl1)).expect("round-trip parses");
    let model = DelayModel::dac2001(3);
    let t1 = Timing::annotate(&nl1, &model);
    let t2 = Timing::annotate(&nl2, &model);
    let a1 = analyze(&nl1, &t1, &AnalysisConfig::default());
    let a2 = analyze(&nl2, &t2, &AnalysisConfig::default());
    for id in nl1.node_ids() {
        let other = nl2.node_id(nl1.node_name(id)).expect("same names");
        assert_eq!(a1.group(id), a2.group(other));
    }
}

#[test]
fn approximate_analysis_tracks_monte_carlo() {
    let nl = samples::fig6();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(8));
    let pep = analyze(&nl, &timing, &AnalysisConfig::default());
    let mc = run_monte_carlo(
        &nl,
        &timing,
        &McConfig {
            runs: 10_000,
            ..McConfig::default()
        },
    );
    let (mean_err, std_err) = compare::against_monte_carlo(&nl, &pep, &mc).report();
    assert!(mean_err < 2.0, "mean error {mean_err}%");
    assert!(std_err < 25.0, "sigma error {std_err}%");
}

#[test]
fn exact_analysis_equals_enumeration_across_shapes() {
    // The headline correctness statement: for every delay shape, the
    // exact sampling-evaluation equals brute-force joint enumeration.
    for shape in [DelayShape::Uniform, DelayShape::Triangular] {
        let nl = samples::mux2();
        let model = DelayModel::dac2001(4)
            .with_shape(shape)
            .with_sigma_range(0.05, 0.09);
        let timing = Timing::annotate(&nl, &model);
        let step = TimeStep::new(1.5).expect("valid step");
        let arcs = ArcPmfs::discretize_all(&nl, &timing, step);
        let truth = validate::enumerate_exact(&nl, &arcs, CombineMode::Latest);
        let pep = analyze(&nl, &timing, &AnalysisConfig::exact_with_step(step));
        for id in nl.node_ids() {
            assert!(
                pep.group(id).l1_distance(&truth[id.index()]) < 1e-9,
                "{shape:?} node {} diverges",
                nl.node_name(id)
            );
        }
    }
}

#[test]
fn quantiles_agree_with_mc_histograms() {
    let nl = psta::netlist::generate::ripple_carry_adder(6);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(6));
    let pep = analyze(&nl, &timing, &AnalysisConfig::default());
    let step = pep.step();
    let mc = run_monte_carlo(
        &nl,
        &timing,
        &McConfig {
            runs: 10_000,
            histogram_step: Some(step),
            ..McConfig::default()
        },
    );
    let cout = nl.node_id("c5").expect("carry out");
    let pep_q95 = pep.quantile_time(cout, 0.95).expect("non-empty");
    let mc_hist = mc.histogram(cout).expect("histograms enabled");
    let mc_q95 = step.time_of(mc_hist.quantile(0.95).expect("non-empty"));
    let rel = (pep_q95 - mc_q95).abs() / mc_q95;
    assert!(rel < 0.03, "95% quantile: pep {pep_q95} vs mc {mc_q95}");
}

#[test]
fn wire_delays_flow_through_the_whole_stack() {
    let nl = samples::c17();
    let model = DelayModel::dac2001(2).with_wire_fraction(0.25);
    let timing = Timing::annotate(&nl, &model);
    let pep = analyze(&nl, &timing, &AnalysisConfig::default());
    let mc = run_monte_carlo(
        &nl,
        &timing,
        &McConfig {
            runs: 10_000,
            ..McConfig::default()
        },
    );
    let (mean_err, _) = compare::against_monte_carlo(&nl, &pep, &mc).report();
    assert!(mean_err < 2.0, "wired mean error {mean_err}%");
    // And arrivals are later than the unwired ones.
    let unwired = Timing::annotate(&nl, &DelayModel::dac2001(2));
    let pep_unwired = analyze(&nl, &unwired, &AnalysisConfig::default());
    for &po in nl.primary_outputs() {
        assert!(pep.mean_time(po) > pep_unwired.mean_time(po));
    }
}

#[test]
fn hybrid_mc_path_tracks_monte_carlo() {
    // Force every multi-branch supergate through the hybrid
    // Monte-Carlo-inside-a-supergate path and check accuracy holds.
    use psta::core::HybridMcConfig;
    let nl = psta::netlist::generate::random_circuit(&psta::netlist::generate::RandomCircuitSpec {
        gates: 250,
        depth: 10,
        inputs: 20,
        seed: 41,
        ..Default::default()
    });
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(4));
    let cfg = AnalysisConfig {
        hybrid_mc: Some(HybridMcConfig {
            stem_threshold: 0,
            runs: 4_000,
            seed: 9,
        }),
        ..AnalysisConfig::default()
    };
    let pep = analyze(&nl, &timing, &cfg);
    assert!(pep.stats().hybrid_evaluations > 0, "hybrid path exercised");
    let mc = run_monte_carlo(
        &nl,
        &timing,
        &McConfig {
            runs: 10_000,
            ..McConfig::default()
        },
    );
    let (mean_err, _) = compare::against_monte_carlo(&nl, &pep, &mc).report();
    assert!(mean_err < 3.0, "hybrid mean error {mean_err}%");
    // And hybrid runs are reproducible (seeded).
    let again = analyze(&nl, &timing, &cfg);
    for id in nl.node_ids() {
        assert_eq!(pep.group(id), again.group(id));
    }
}

#[test]
fn custom_library_flows_end_to_end() {
    use psta::celllib::Library;
    let lib = Library::parse(
        "default 2.0 1.0 0.5 0.04 0.10
NAND 1.2 0.7 0.3 0.05 0.06
",
    )
    .expect("valid library");
    let nl = samples::c17();
    let timing = lib.annotate(&nl, 11);
    let pep = analyze(&nl, &timing, &AnalysisConfig::default());
    let mc = run_monte_carlo(
        &nl,
        &timing,
        &McConfig {
            runs: 5_000,
            ..McConfig::default()
        },
    );
    let (mean_err, _) = compare::against_monte_carlo(&nl, &pep, &mc).report();
    assert!(mean_err < 2.0, "library-annotated mean error {mean_err}%");
    // The custom NAND rule really is faster than the generic one.
    let generic = Library::dac2001().annotate(&nl, 11);
    let g22 = nl.node_id("22").expect("present");
    assert!(timing.cell_arc(g22, 0).mean() < generic.cell_arc(g22, 0).mean());
}

#[test]
fn analysis_is_deterministic_across_repeats() {
    let nl = psta::netlist::generate::random_circuit(&psta::netlist::generate::RandomCircuitSpec {
        gates: 300,
        depth: 10,
        seed: 77,
        ..Default::default()
    });
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let a = analyze(&nl, &timing, &AnalysisConfig::default());
    let b = analyze(&nl, &timing, &AnalysisConfig::default());
    for id in nl.node_ids() {
        assert_eq!(a.group(id), b.group(id), "node {}", nl.node_name(id));
    }
}
