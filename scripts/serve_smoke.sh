#!/usr/bin/env bash
# Black-box smoke of the real `psta serve` binary: start the daemon,
# drive it with `psta client`, then SIGTERM it under load and require a
# clean drain (exit 0) within the grace window.
set -euo pipefail

BIN=${1:-target/release/psta}
ADDR=127.0.0.1:8521
LOG=$(mktemp)

"$BIN" serve --addr "$ADDR" --workers 2 --queue 8 --grace-ms 10000 >"$LOG" 2>&1 &
PID=$!
cleanup() { kill -9 "$PID" 2>/dev/null || true; cat "$LOG"; rm -f "$LOG"; }
trap cleanup EXIT

# Wait for the daemon to come up.
for _ in $(seq 1 100); do
  if "$BIN" client health --addr "$ADDR" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

[ "$("$BIN" client health --addr "$ADDR")" = ok ]
[ "$("$BIN" client ready --addr "$ADDR")" = ready ]
"$BIN" client metrics --addr "$ADDR" | grep -q '^pep_serve_queue_depth 0$'

# Synchronous analysis round-trips.
"$BIN" client analyze sample:c17 --seed 7 --addr "$ADDR" | grep -q '"state":"done"'

# Detach, poll, cancel: the cancel of a queued/running job succeeds.
DETACHED=$("$BIN" client analyze profile:s15850 --samples 40 --detach --addr "$ADDR")
ID=$(printf '%s' "$DETACHED" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
"$BIN" client job "$ID" --addr "$ADDR" >/dev/null
"$BIN" client cancel "$ID" --addr "$ADDR" | grep -q '"state"'

# Leave slow work in flight, then send the polite kill.
"$BIN" client analyze profile:s15850 --samples 40 --detach --addr "$ADDR" >/dev/null
"$BIN" client analyze profile:s15850 --samples 40 --detach --addr "$ADDR" >/dev/null
kill -TERM "$PID"

# The drain must finish inside the grace window and exit 0.
wait "$PID"

# The final run report made it out with the job accounting.
grep -q 'serve.jobs_submitted' "$LOG"
grep -q 'pep-serve listening' "$LOG"
echo "serve smoke: OK"
