#!/usr/bin/env bash
# Validates a Chrome trace-event JSON file emitted by `psta profile` /
# `GET /jobs/:id/trace`: well-formed JSON (via python3 when available),
# the Perfetto-relevant envelope keys, thread-name metadata for the
# worker lanes, complete-duration span events, and at least one span in
# each of the categories the engine is supposed to record.
#
#   usage: check_trace.sh <trace.json> [<folded.txt>]
set -euo pipefail

trace="${1:?usage: check_trace.sh <trace.json> [<folded.txt>]}"
folded="${2:-}"

fail() {
  echo "check_trace: FAIL: $*" >&2
  exit 1
}

[ -s "$trace" ] || fail "$trace is missing or empty"

# Structural JSON validity (skipped when python3 is absent — the grep
# checks below still cover the schema).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$trace" <<'PY' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
assert "dropped_spans" in doc.get("otherData", {}), "missing otherData.dropped_spans"
phases = {e.get("ph") for e in events}
assert "M" in phases, "no metadata events (thread lanes)"
assert "X" in phases, "no complete-duration span events"
for e in events:
    if e.get("ph") == "X":
        assert e["dur"] >= 0 and e["ts"] >= 0, f"negative ts/dur: {e}"
        assert "name" in e and "cat" in e, f"span missing name/cat: {e}"
names = {e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "thread_name"}
assert "orchestrator" in names, f"no orchestrator lane, got {names}"
print(f"check_trace: {len(events)} events, lanes: {sorted(names)}")
PY
else
  echo "check_trace: python3 not found, grep-only validation" >&2
fi

# Schema spot checks that double as docs of the format.
grep -q '"displayTimeUnit"' "$trace" || fail "missing displayTimeUnit"
grep -q '"dropped_spans"' "$trace" || fail "missing dropped_spans metadata"
grep -q '"ph":"M"' "$trace" || fail "no lane metadata events"
grep -q '"ph":"X"' "$trace" || fail "no duration span events"
grep -q '"orchestrator"' "$trace" || fail "no orchestrator lane"
for cat in wave node kernel; do
  grep -q "\"cat\":\"$cat\"" "$trace" || fail "no '$cat' spans in trace"
done

if [ -n "$folded" ]; then
  [ -s "$folded" ] || fail "$folded is missing or empty"
  # Every folded line is `stack;frames… self_microseconds`.
  awk '!/^[^ ]+ [0-9]+$/ { print "bad folded line: " $0; bad = 1 } END { exit bad }' \
    "$folded" || fail "malformed folded-stacks line"
fi

echo "check_trace: OK ($trace${folded:+, $folded})"
