//! `#[derive(Serialize, Deserialize)]` for the workspace's offline serde
//! stand-in.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`
//! available offline). Supports the item shapes this workspace uses:
//! non-generic structs with named fields, tuple structs (single-field
//! tuples serialize transparently, like serde newtypes), unit structs,
//! and enums whose variants are unit, tuple or struct-like (externally
//! tagged, like serde's default representation). `#[serde(...)]`
//! attributes are not supported and generic items are rejected with a
//! compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => gen(&shape).parse().expect("generated impl must tokenize"),
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("compile_error must tokenize"),
    }
}

// --- item model ------------------------------------------------------

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// --- parsing ---------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`, which is how doc comments arrive in
/// derive input) and visibility modifiers.
fn skip_attrs_and_vis(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The attribute body `[...]`.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let mut tokens: Tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "cannot derive for generic type `{name}` (unsupported by the offline serde stub)"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parses `field: Type, ...`, returning the field names. Commas nested in
/// generic arguments are skipped by tracking `<`/`>` depth; bracketed and
/// parenthesized types arrive as single groups and need no tracking.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(token) = tokens.next() else {
            return Ok(fields);
        };
        let TokenTree::Ident(id) = token else {
            return Err(format!("expected field name, got {token:?}"));
        };
        fields.push(id.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => return Ok(fields),
            }
        }
    }
}

/// Counts the fields of a tuple struct or tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(token) = tokens.next() else {
            return Ok(variants);
        };
        let TokenTree::Ident(id) = token else {
            return Err(format!("expected variant name, got {token:?}"));
        };
        let name = id.to_string();
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume everything up to the next variant separator (covers
        // explicit discriminants, which are skipped, not serialized).
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => return Ok(variants),
            }
        }
    }
}

// --- code generation -------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Map(::std::vec![{}])", entries.join(", ")),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Seq(::std::vec![{}])", items.join(", ")),
            )
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(", ")))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::Value::field(value, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::Value::as_seq(value)\
                     .ok_or_else(|| ::serde::Error::new(\"expected sequence\"))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::new(\
                         \"wrong tuple length\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{})",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let items = ::serde::Value::as_seq(inner)\
                                         .ok_or_else(|| ::serde::Error::new(\
                                             \"expected sequence\"))?;\n\
                                     if items.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::new(\"wrong tuple length\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::Value::field(inner, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {data}\n\
                             other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"bad enum value {{other:?}} for {name}\"))),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    };
    let name = match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
