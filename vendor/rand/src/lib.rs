//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64) and the [`Rng`]/[`RngExt`] traits with `random` and
//! `random_range`. Sequences are deterministic for a given seed but are
//! not bit-compatible with the real `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`; integers: uniform over the type).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their standard distribution via [`RngExt::random`].
pub trait StandardSample {
    /// Draws one standard sample.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits: uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits into `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the bias of the plain variant is < 2⁻⁶⁴·span, which is
/// negligible for the spans used here).
#[inline]
fn bounded(rng_bits: u64, span: u64) -> u64 {
    ((rng_bits as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!(
            (sum / 10_000.0 - 0.5).abs() < 0.02,
            "mean {}",
            sum / 10_000.0
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.random_range(2..=5usize);
            assert!((2..=5).contains(&x));
            let y = rng.random_range(-10i64..10);
            assert!((-10..10).contains(&y));
            let z = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&z));
        }
        // All values of a small range are reachable.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
