//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! calibrated to a short target time, timed over a handful of samples,
//! and reported as a single `min / mean / max` line on stdout. There are
//! no plots, baselines, or statistical tests.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time budget per sample once calibrated.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, shown as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks a routine over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per benchmark; this is a no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut routine: F) {
    // Calibrate: run once to size the per-sample iteration count.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        times.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{label:<40} time: [{} {} {}]  ({samples} samples x {iters} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Collects benchmark functions into a runner, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_group_and_function_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &1u64, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("max", 32).label, "max/32");
        assert_eq!(BenchmarkId::from_parameter("c432").label, "c432");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
