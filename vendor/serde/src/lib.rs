//! Minimal offline stand-in for `serde` + `serde_json`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of serde it needs: a self-describing [`Value`] data model,
//! [`Serialize`]/[`Deserialize`] traits over it, derive macros for plain
//! structs and enums (see `serde_derive`), and a [`json`] module with a
//! writer and a parser. The data model follows serde's conventions where
//! it matters (newtype structs serialize transparently, enums are
//! externally tagged), but the serializer API is intentionally much
//! smaller than real serde's.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A self-describing value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`Option::None`, JSON `null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer outside `i64` range.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Error produced by deserialization or JSON parsing.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// A new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required field, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::new(format!("missing field `{key}`")))
    }

    /// The value as an `f64`, accepting any numeric representation.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            // Non-finite floats serialize as null.
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value as map entries.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::new(format!("expected {expected}, got {got:?}")))
}

// --- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::new(format!("expected unsigned integer, got {value:?}")))?;
                <$t>::try_from(u).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::new(format!("expected integer, got {value:?}")))?;
                <$t>::try_from(i).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::new(format!("expected number, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_bool() {
            Some(b) => Ok(b),
            None => type_error("bool", value),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some(s) => Ok(s.to_owned()),
            None => type_error("string", value),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().unwrap_or_default();
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => type_error("single-character string", value),
        }
    }
}

// --- containers ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some(items) => items.iter().map(T::from_value).collect(),
            None => type_error("sequence", value),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => type_error("2-element sequence", value),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => type_error("3-element sequence", value),
        }
    }
}

/// Renders a map key as the string JSON requires. Keys must serialize
/// to a string, an integer, or a unit enum variant (which is a string).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        other => panic!("unsupported map key shape: {other:?}"),
    }
}

/// Parses a map key back from its string form, trying the string shape
/// first (plain strings, unit enum variants), then the integer shapes.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    Err(Error::new(format!("bad map key `{key}`")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_map() {
            Some(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            None => type_error("map", value),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_map() {
            Some(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            None => type_error("map", value),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = f64::from_value(value)?;
        if secs.is_finite() && secs >= 0.0 {
            Ok(std::time::Duration::from_secs_f64(secs))
        } else {
            type_error("non-negative duration in seconds", value)
        }
    }
}
