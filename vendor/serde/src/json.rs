//! JSON writer and parser over the [`Value`](crate::Value) data model —
//! the workspace's stand-in for `serde_json`.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    out
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Parses JSON text straight into a deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on bad syntax or a shape mismatch.
pub fn from_str_as<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&from_str(text)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_delimited(out, indent, depth, '[', ']', items, |o, item, d| {
            write_value(o, item, indent, d)
        }),
        Value::Map(entries) => {
            write_delimited(out, indent, depth, '{', '}', entries, |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            })
        }
    }
}

fn write_delimited<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: &[T],
    mut write_item: impl FnMut(&mut String, &T, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value round-trips as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("c17 \"quoted\"\n".into())),
            ("count".into(), Value::UInt(6)),
            ("offset".into(), Value::Int(-3)),
            ("mass".into(), Value::Float(0.25)),
            ("whole".into(), Value::Float(2.0)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "items".into(),
                Value::Seq(vec![Value::Int(1), Value::Int(2)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        for text in [to_string(&v), to_string_pretty(&v)] {
            let back = from_str(&text).expect("parses");
            // UInt/Int distinction narrows on reparse; compare via JSON.
            assert_eq!(to_string(&back), to_string(&v), "from {text}");
        }
    }

    #[test]
    fn floats_keep_their_floatness() {
        let text = to_string(&Value::Float(3.0));
        assert_eq!(text, "3.0");
        assert_eq!(from_str(&text).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": null}], "c": -2.5e3}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_f64().unwrap(), -2500.0);
        let seq = v.get("a").unwrap().as_seq().unwrap();
        assert_eq!(seq[0].as_u64(), Some(1));
        assert_eq!(seq[1].get("b"), Some(&Value::Null));
    }
}
