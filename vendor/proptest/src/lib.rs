//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! `any::<u64>()` strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a fixed per-test seed
//! (derived from the test's module path and name), so runs are fully
//! deterministic. There is no shrinking: a failure reports the case
//! number and the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; another case is tried.
    Reject,
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A deterministic FNV-1a hash of the test path, used as the RNG seed so
/// every test has its own reproducible sequence.
pub fn seed_for(test_path: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7)
}

/// Types with a whole-domain standard strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}

arbitrary_via_standard!(u64, u32, bool, f64);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SampleRange, Strategy};

    /// Generates `Vec`s with lengths drawn from `lengths`.
    pub fn vec<S: Strategy, R>(element: S, lengths: R) -> VecStrategy<S, R>
    where
        R: SampleRange<usize> + Clone,
    {
        VecStrategy { element, lengths }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        lengths: R,
    }

    impl<S: Strategy, R> Strategy for VecStrategy<S, R>
    where
        R: SampleRange<usize> + Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            use rand::RngExt;
            let len = rng.random_range(self.lengths.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::Strategy;
    use rand::RngExt;

    /// Generates `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            if rng.random_range(0..4usize) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::Strategy;
    use rand::RngExt;

    /// Picks uniformly from a fixed set of values.
    pub fn select<T: Clone>(values: Vec<T>) -> SelectStrategy<T> {
        assert!(!values.is_empty(), "cannot select from an empty set");
        SelectStrategy { values }
    }

    /// The strategy returned by [`select`].
    pub struct SelectStrategy<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for SelectStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut super::StdRng) -> T {
            self.values[rng.random_range(0..self.values.len())].clone()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The `prop::` module hierarchy (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Runs the generated cases for one `proptest!` test (macro plumbing).
pub fn run_cases<S, F>(test_path: &str, config: &ProptestConfig, strategy: &S, run: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut rng = StdRng::seed_from_u64(seed_for(test_path));
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(8).max(1024);
    let mut case = 0u32;
    while case < config.cases {
        let value = strategy.generate(&mut rng);
        match run(value) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_path}: too many rejected cases ({rejected}) — \
                         weaken the prop_assume! conditions"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{test_path}: case {case} of {} failed (seed {}): {message}",
                    config.cases,
                    seed_for(test_path),
                );
            }
        }
    }
}

/// Defines deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident (
        $($arg:pat in $strategy:expr),* $(,)?
    ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strategy,)*);
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                &__strategy,
                |($($arg,)*)| {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l == r,
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(l == r, $($fmt)*),
        }
    };
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l != r,
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

/// Rejects the current case (another one is generated) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -5i64..5), x in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn collections_and_options(
            v in prop::collection::vec(1u32..100, 2..8),
            o in prop::option::of(0u32..3),
            pick in prop::sample::select(vec![1, 2, 3]),
            seed in any::<u64>(),
        ) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..100).contains(&x)));
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
            prop_assert!([1, 2, 3].contains(&pick));
            let _ = seed;
        }

        #[test]
        fn prop_map_and_assume(n in (1usize..50).prop_map(|n| n * 2)) {
            prop_assume!(n != 4);
            prop_assert_eq!(n % 2, 0);
            prop_assert!((2..100).contains(&n), "mapped value out of range: {}", n);
            if n == 2 {
                return Ok(());
            }
            prop_assert_ne!(n, 2);
        }
    }

    #[test]
    fn determinism() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(crate::seed_for("t"));
        let mut r2 = rand::rngs::StdRng::seed_from_u64(crate::seed_for("t"));
        use crate::Strategy;
        use rand::SeedableRng;
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
