//! Service-level determinism: concurrent clients, identical answers.
//!
//! N parallel `POST /analyze` requests for the same netlist must return
//! bit-identical event groups (checked via the FNV digest over every
//! node's full distribution) and identical *ordered* warning lists —
//! matching a solo in-process engine run — regardless of the engine
//! thread count. This holds because results commit in wave order on the
//! engine's orchestration thread and the serve layer runs each job on
//! its own [`pep_obs::Session`].

use pep_celllib::{DelayModel, Timing};
use pep_core::AnalysisConfig;
use pep_obs::Session;
use pep_serve::jobs::JobStatus;
use pep_serve::{client, serve, ServeConfig};

const SEED: u64 = 7;
const BUDGET_COMBINATIONS: u64 = 4;

fn analyze_body(threads: usize) -> String {
    format!(
        r#"{{"circuit": "profile:s5378", "seed": {SEED},
            "config": {{"threads": {threads},
                        "budget": {{"max_combinations": {BUDGET_COMBINATIONS}}}}}}}"#
    )
}

/// The ground truth: a direct engine run with the same knobs.
fn solo_run(threads: usize) -> (String, Vec<pep_obs::Warning>) {
    let profile = pep_serve::api::profile_by_name("s5378").expect("known profile");
    let nl = pep_netlist::generate::iscas_profile(profile);
    let t = Timing::annotate(&nl, &DelayModel::dac2001(SEED));
    let config = AnalysisConfig {
        threads,
        budget: Some(pep_core::Budget {
            max_combinations: Some(BUDGET_COMBINATIONS),
            ..pep_core::Budget::default()
        }),
        ..AnalysisConfig::default()
    };
    let analysis = pep_core::try_analyze_observed(&nl, &t, &config, &Session::disabled())
        .expect("solo run succeeds");
    (
        format!("{:016x}", pep_serve::api::groups_digest(&nl, &analysis)),
        analysis.warnings().to_vec(),
    )
}

#[test]
fn parallel_posts_are_bit_identical_across_thread_counts() {
    const CLIENTS: usize = 4;
    let handle = serve(ServeConfig {
        workers: CLIENTS,
        queue_capacity: 2 * CLIENTS,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();

    let mut digests_by_threads: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4] {
        let body = analyze_body(threads);
        let results: Vec<JobStatus> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let addr = addr.clone();
                    let body = body.clone();
                    scope.spawn(move || {
                        let response = client::request(&addr, "POST", "/analyze", Some(&body))
                            .expect("transport");
                        assert_eq!(response.status, 200, "body: {}", response.body);
                        serde::json::from_str_as::<JobStatus>(&response.body).expect("status JSON")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });

        let (solo_digest, solo_warnings) = solo_run(threads);
        assert!(
            !solo_warnings.is_empty(),
            "the budget must actually trip so warning *order* is exercised"
        );
        for status in &results {
            let result = status.result.as_ref().expect("done job has a result");
            assert_eq!(
                result.groups_digest, solo_digest,
                "threads={threads}: parallel POST diverged from the solo run"
            );
            assert_eq!(
                result.warnings, solo_warnings,
                "threads={threads}: warning list (including order) must match"
            );
        }
        digests_by_threads.push(solo_digest);
    }

    // And the digest itself is thread-count invariant.
    assert_eq!(digests_by_threads[0], digests_by_threads[1]);
    assert_eq!(digests_by_threads[0], digests_by_threads[2]);

    let summary = handle.shutdown_and_join();
    assert!(summary.clean);
    assert_eq!(summary.report.counters["serve.jobs_completed"], 12);
    // 3 × 4 identical requests hit the parsed-circuit cache after the
    // first misses.
    assert!(summary.report.counters["serve.cache_hits"] >= 8);
}
