//! End-to-end smoke of the daemon lifecycle: health, analyze, detach,
//! cancel, load shedding, client disconnect, signal-latch drain, and
//! the no-leaked-threads guarantee.
//!
//! Tests serialize on one mutex: several poke process-global state (the
//! signal latch, `/proc/self/status` thread counts) that parallel test
//! threads would smear.

use pep_serve::http::HttpLimits;
use pep_serve::jobs::JobStatus;
use pep_serve::{client, serve, ServeConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 2,
        grace: Duration::from_secs(30),
        limits: HttpLimits {
            read_timeout: Duration::from_secs(5),
            ..HttpLimits::default()
        },
        ..ServeConfig::default()
    }
}

const FAST_JOB: &str = r#"{"circuit": "sample:c17"}"#;
/// Slow enough (thousands of supergates, heavier sampling) that cancel
/// and shed races resolve long before it finishes.
const SLOW_JOB: &str =
    r#"{"circuit": "profile:s15850", "seed": 3, "config": {"samples": 40}, "detach": true}"#;

fn post(addr: &str, body: &str) -> client::ClientResponse {
    client::request(addr, "POST", "/analyze", Some(body)).expect("transport")
}

fn job_status(addr: &str, id: u64) -> JobStatus {
    let response = client::request(addr, "GET", &format!("/jobs/{id}"), None).expect("transport");
    serde::json::from_str_as(&response.body).expect("status JSON")
}

fn metric(addr: &str, name: &str) -> u64 {
    let response = client::request(addr, "GET", "/metrics", None).expect("transport");
    assert_eq!(response.status, 200);
    response
        .body
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{}", response.body))
}

fn wait_for<F: FnMut() -> bool>(what: &str, mut ok: F) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn health_analyze_and_errors_end_to_end() {
    let _serial = serial();
    let handle = serve(test_config()).expect("bind");
    let addr = handle.local_addr().to_string();

    // Liveness, readiness, metrics.
    assert_eq!(
        client::request(&addr, "GET", "/healthz", None)
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client::request(&addr, "GET", "/readyz", None)
            .unwrap()
            .status,
        200
    );
    assert_eq!(metric(&addr, "pep_serve_queue_depth"), 0);
    assert_eq!(metric(&addr, "pep_serve_accepting"), 1);

    // A synchronous analysis returns the full result.
    let response = post(&addr, FAST_JOB);
    assert_eq!(response.status, 200, "{}", response.body);
    let status: JobStatus = serde::json::from_str_as(&response.body).unwrap();
    assert_eq!(status.state, "done");
    let result = status.result.expect("result");
    assert_eq!(result.circuit, "c17");
    assert_eq!(result.groups_digest.len(), 16);
    assert!(!result.outputs.is_empty());

    // Typed client errors.
    assert_eq!(post(&addr, "not json").status, 400);
    assert_eq!(
        post(&addr, r#"{"circuit": "sample:c17", "oops": 1}"#).status,
        400
    );
    assert_eq!(
        client::request(&addr, "GET", "/nope", None).unwrap().status,
        404
    );
    assert_eq!(
        client::request(&addr, "DELETE", "/analyze", None)
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        client::request(&addr, "GET", "/jobs/999", None)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::request(&addr, "GET", "/jobs/xyz", None)
            .unwrap()
            .status,
        400
    );

    // Phase timings surfaced in /metrics after a job ran.
    let metrics = client::request(&addr, "GET", "/metrics", None)
        .unwrap()
        .body;
    assert!(
        metrics.contains("pep_serve_phase_seconds{phase="),
        "{metrics}"
    );

    let summary = handle.shutdown_and_join();
    assert!(summary.clean);
    assert_eq!(summary.report.counters["serve.jobs_completed"], 1);
    assert_eq!(summary.report.counters["serve.worker_panics"], 0);
    // The daemon is really gone: new connections are refused.
    assert!(client::request(&addr, "GET", "/healthz", None).is_err());
}

#[test]
fn detach_poll_and_cancel_lifecycle() {
    let _serial = serial();
    let handle = serve(test_config()).expect("bind");
    let addr = handle.local_addr().to_string();

    // Occupy the single worker with a slow job.
    let slow = post(&addr, SLOW_JOB);
    assert_eq!(slow.status, 202, "{}", slow.body);
    let slow_status: JobStatus = serde::json::from_str_as(&slow.body).unwrap();
    wait_for("slow job to start", || {
        job_status(&addr, slow_status.id).state == "running"
    });

    // A detached fast job sits queued behind it; cancel it while queued.
    let queued = post(&addr, r#"{"circuit": "sample:c17", "detach": true}"#);
    assert_eq!(queued.status, 202);
    let queued_status: JobStatus = serde::json::from_str_as(&queued.body).unwrap();
    assert_eq!(queued_status.state, "queued");
    let cancelled = client::request(
        &addr,
        "DELETE",
        &format!("/jobs/{}", queued_status.id),
        None,
    )
    .unwrap();
    assert_eq!(cancelled.status, 200);
    assert_eq!(job_status(&addr, queued_status.id).state, "cancelled");

    // Cancel the *running* job: the abort lands at the next engine poll.
    let response =
        client::request(&addr, "DELETE", &format!("/jobs/{}", slow_status.id), None).unwrap();
    assert_eq!(response.status, 200);
    wait_for("running job to abort", || {
        job_status(&addr, slow_status.id).state == "cancelled"
    });

    // The worker survived: it still completes new work.
    let after = post(&addr, FAST_JOB);
    assert_eq!(after.status, 200, "{}", after.body);

    let summary = handle.shutdown_and_join();
    assert!(summary.clean);
    assert_eq!(summary.report.counters["serve.jobs_cancelled"], 2);
    assert_eq!(summary.report.counters["serve.jobs_completed"], 1);
}

#[test]
fn traced_job_serves_trace_events_and_prometheus_metrics() {
    let _serial = serial();
    let handle = serve(test_config()).expect("bind");
    let addr = handle.local_addr().to_string();

    // A traced synchronous job.
    let response = post(&addr, r#"{"circuit": "sample:c17", "trace": "nodes"}"#);
    assert_eq!(response.status, 200, "{}", response.body);
    let status: JobStatus = serde::json::from_str_as(&response.body).unwrap();
    assert_eq!(status.state, "done");

    // Its Chrome trace-event JSON is served and carries real spans.
    let trace = client::request(&addr, "GET", &format!("/jobs/{}/trace", status.id), None).unwrap();
    assert_eq!(trace.status, 200, "{}", trace.body);
    assert!(
        trace.body.starts_with("{\"displayTimeUnit\""),
        "{}",
        trace.body
    );
    assert!(
        trace.body.contains("\"ph\":\"X\""),
        "complete events present"
    );
    assert!(
        trace.body.contains("\"cat\":\"wave\""),
        "wave spans present"
    );
    assert!(
        trace.body.contains("\"cat\":\"node\""),
        "node spans present"
    );

    // The events stream replays phase progress and ends with the
    // terminal state (chunked transfer, de-chunked by the client).
    let events =
        client::request(&addr, "GET", &format!("/jobs/{}/events", status.id), None).unwrap();
    assert_eq!(events.status, 200);
    assert!(
        events.body.contains("\"event\":\"enter\""),
        "{}",
        events.body
    );
    assert!(
        events.body.contains("\"event\":\"exit\""),
        "{}",
        events.body
    );
    assert!(
        events
            .body
            .ends_with("{\"event\":\"end\",\"state\":\"done\"}\n"),
        "{}",
        events.body
    );

    // An untraced job 404s on /trace with a distinct code.
    let plain = post(&addr, FAST_JOB);
    let plain: JobStatus = serde::json::from_str_as(&plain.body).unwrap();
    let no_trace =
        client::request(&addr, "GET", &format!("/jobs/{}/trace", plain.id), None).unwrap();
    assert_eq!(no_trace.status, 404);
    assert!(no_trace.body.contains("no-trace"), "{}", no_trace.body);

    // /metrics speaks Prometheus text exposition: typed headers and a
    // real histogram with cumulative buckets, sum, and count.
    let metrics = client::request(&addr, "GET", "/metrics", None)
        .unwrap()
        .body;
    assert!(
        metrics.contains("# TYPE pep_serve_jobs_submitted_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE pep_serve_queue_depth gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE pep_serve_job_seconds histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("pep_serve_job_seconds_bucket{le=\"+Inf\"} 2"),
        "{metrics}"
    );
    assert!(metrics.contains("pep_serve_job_seconds_sum "), "{metrics}");
    assert!(
        metrics.contains("pep_serve_job_seconds_count 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("pep_serve_phase_seconds{phase="),
        "{metrics}"
    );

    let summary = handle.shutdown_and_join();
    assert!(summary.clean);
    assert_eq!(summary.report.counters["serve.jobs_completed"], 2);
}

#[test]
fn queue_full_sheds_with_429_while_healthz_stays_green() {
    let _serial = serial();
    let handle = serve(test_config()).expect("bind");
    let addr = handle.local_addr().to_string();

    // Fill the worker and the (capacity 2) queue.
    let running = post(&addr, SLOW_JOB);
    assert_eq!(running.status, 202);
    let running: JobStatus = serde::json::from_str_as(&running.body).unwrap();
    wait_for("worker busy", || {
        job_status(&addr, running.id).state == "running"
    });
    let mut ids = vec![running.id];
    for _ in 0..2 {
        let r = post(&addr, r#"{"circuit": "sample:c17", "detach": true}"#);
        assert_eq!(r.status, 202);
        let s: JobStatus = serde::json::from_str_as(&r.body).unwrap();
        ids.push(s.id);
    }

    // The burst beyond capacity sheds with 429 + Retry-After…
    let mut shed = 0;
    for _ in 0..5 {
        let r = post(&addr, r#"{"circuit": "sample:c17", "detach": true}"#);
        if r.status == 429 {
            shed += 1;
            assert!(r.body.contains("queue-full"), "{}", r.body);
        }
    }
    assert!(
        shed >= 4,
        "queue stayed full through the burst (shed {shed})"
    );
    assert_eq!(metric(&addr, "pep_serve_jobs_shed_total"), shed);

    // …while liveness AND readiness stay green: shedding is flow
    // control, not sickness.
    assert_eq!(
        client::request(&addr, "GET", "/healthz", None)
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client::request(&addr, "GET", "/readyz", None)
            .unwrap()
            .status,
        200
    );

    // Unblock quickly, then drain.
    for id in &ids {
        let _ = client::request(&addr, "DELETE", &format!("/jobs/{id}"), None);
    }
    let summary = handle.shutdown_and_join();
    assert!(summary.clean);
    assert_eq!(summary.report.counters["serve.jobs_shed"], shed);
}

#[test]
fn client_disconnect_cancels_the_synchronous_job() {
    let _serial = serial();
    let handle = serve(test_config()).expect("bind");
    let addr = handle.local_addr().to_string();

    // A synchronous slow request whose client hangs up mid-wait.
    let sync_slow = SLOW_JOB.replace("\"detach\": true", "\"detach\": false");
    {
        use std::io::Write as _;
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        let head = format!(
            "POST /analyze HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{sync_slow}",
            sync_slow.len()
        );
        stream.write_all(head.as_bytes()).expect("send");
        stream.flush().expect("flush");
        // Wait for the job to be admitted and started…
        wait_for("job running", || metric(&addr, "pep_serve_in_flight") == 1);
        // …then vanish.
        drop(stream);
    }

    // The orphaned work is cancelled, not run to completion.
    wait_for("disconnect-triggered cancel", || {
        metric(&addr, "pep_serve_jobs_cancelled_total") == 1
    });
    wait_for("worker idle again", || {
        metric(&addr, "pep_serve_in_flight") == 0
    });

    let summary = handle.shutdown_and_join();
    assert!(summary.clean);
    assert_eq!(summary.report.counters["serve.jobs_completed"], 0);
}

#[test]
fn signal_latch_drains_cleanly_with_zero_leaked_threads() {
    let _serial = serial();
    pep_sta::cancel::reset_signal_state();
    let threads_before = thread_count();

    let handle = serve(ServeConfig {
        follow_signals: true,
        ..test_config()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();

    // Work in flight when the "signal" lands.
    let slow = post(&addr, SLOW_JOB);
    assert_eq!(slow.status, 202);
    assert_eq!(post(&addr, FAST_JOB).status, 200);

    // What a SIGTERM handler does: one note on the process latch.
    pep_sta::cancel::note_signal(pep_sta::CancelState::Degrade);

    // The accept loop notices, drains (aborting the slow job at the
    // grace boundary — use a short grace so the test is brisk), joins
    // every worker and connection thread, and returns the final report.
    let summary = handle.join();
    pep_sta::cancel::reset_signal_state();
    assert!(summary.clean, "drain must terminate every job");
    let c = &summary.report.counters;
    assert_eq!(c["serve.jobs_submitted"], 2);
    // The fast job finished before the signal; the slow one either
    // completes within grace or is cancelled at the boundary — both are
    // clean outcomes, and nothing may be left un-terminated.
    assert!(c["serve.jobs_completed"] >= 1);
    assert_eq!(c["serve.jobs_completed"] + c["serve.jobs_cancelled"], 2);
    assert!(summary.report.gauges["serve.uptime_seconds"] > 0.0);

    // No thread outlives join(): poll /proc briefly (the OS reaps
    // finished threads asynchronously).
    wait_for("threads reaped", || thread_count() <= threads_before);
}

#[test]
fn short_grace_drain_aborts_stragglers_but_exits_clean() {
    let _serial = serial();
    let handle = serve(ServeConfig {
        grace: Duration::from_millis(50),
        ..test_config()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();

    let slow = post(&addr, SLOW_JOB);
    assert_eq!(slow.status, 202);
    let slow: JobStatus = serde::json::from_str_as(&slow.body).unwrap();
    wait_for("slow job running", || {
        job_status(&addr, slow.id).state == "running"
    });

    // Grace (50 ms) is far shorter than the job: drain must escalate
    // to abort and still come back clean.
    let summary = handle.shutdown_and_join();
    assert!(summary.clean, "abort escalation must terminate the job");
    assert_eq!(summary.report.counters["serve.jobs_cancelled"], 1);
    assert_eq!(summary.report.counters["serve.jobs_completed"], 0);
}

/// Current thread count of this process (Linux).
fn thread_count() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}
