//! Property-based fuzz of the HTTP request parser.
//!
//! The parser faces the network, so the bar is: any byte sequence —
//! valid, truncated, corrupted, oversized, or pure noise — produces
//! either a parsed request or a typed [`HttpError`] with a definite
//! response status. No input may panic, hang past the read deadline,
//! or exceed the configured limits. Delivery chunking must not change
//! the result.

use pep_serve::http::{parse_bytes, read_request, HttpError, HttpLimits, Method, Request};
use proptest::prelude::*;
use std::io::Read;
use std::time::{Duration, Instant};

fn limits() -> HttpLimits {
    HttpLimits {
        max_head_bytes: 2048,
        max_headers: 16,
        max_body_bytes: 4096,
        read_timeout: Duration::from_secs(2),
    }
}

/// Renders a syntactically valid request from generated parts.
fn render(method: &str, path: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\n");
    for (name, value) in headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

fn arb_method() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["GET", "POST", "DELETE"])
}

fn arb_path() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec!["/analyze", "/healthz", "/jobs/7", "/metrics", "/x"]),
        0usize..3,
    )
        .prop_map(|(base, depth)| {
            let mut path = base.to_owned();
            for i in 0..depth {
                path.push_str(&format!("/seg{i}"));
            }
            path
        })
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        (
            prop::sample::select(vec!["host", "accept", "x-trace", "user-agent"]),
            0usize..24,
        )
            .prop_map(|(name, len)| (name.to_owned(), "v".repeat(len.max(1)))),
        0usize..6,
    )
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255u8, 0usize..200)
}

fn method_of(name: &str) -> Method {
    match name {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => Method::Delete,
    }
}

/// Every parser error must map to a definite client-facing status.
fn assert_typed(err: &HttpError) {
    let status = err.status();
    assert!(
        matches!(status, 400 | 405 | 408 | 413 | 431 | 501 | 505),
        "unexpected status {status} for {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_requests_round_trip(
        method in arb_method(),
        path in arb_path(),
        headers in arb_headers(),
        body in arb_body(),
    ) {
        let bytes = render(method, &path, &headers, &body);
        let parsed: Request = parse_bytes(&bytes, &limits())
            .expect("valid request parses")
            .expect("non-empty");
        prop_assert_eq!(parsed.method, method_of(method));
        prop_assert_eq!(parsed.target.as_str(), path.as_str());
        prop_assert_eq!(parsed.body, body);
        // Headers arrive in order: the generated ones, then the
        // content-length that render() appends.
        prop_assert_eq!(parsed.headers.len(), headers.len() + 1);
        prop_assert_eq!(&parsed.headers[..headers.len()], &headers[..]);
        prop_assert_eq!(parsed.header("content-length"), Some(body.len().to_string().as_str()));
    }

    #[test]
    fn truncation_is_typed_never_a_panic(
        method in arb_method(),
        path in arb_path(),
        headers in arb_headers(),
        body in arb_body(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = render(method, &path, &headers, &body);
        let cut = (cut_seed as usize) % (bytes.len() + 1);
        match parse_bytes(&bytes[..cut], &limits()) {
            Ok(None) => prop_assert_eq!(cut, 0, "only an empty prefix is a clean close"),
            // A cut exactly after the body's last byte is complete.
            Ok(Some(_)) => prop_assert_eq!(cut, bytes.len()),
            Err(e) => assert_typed(&e),
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(
        method in arb_method(),
        path in arb_path(),
        body in arb_body(),
        noise_at in any::<u64>(),
        noise_byte in 0u8..=255u8,
    ) {
        let mut bytes = render(method, &path, &[], &body);
        let at = (noise_at as usize) % bytes.len();
        bytes[at] = noise_byte;
        if let Err(e) = parse_bytes(&bytes, &limits()) {
            assert_typed(&e);
        }
    }

    #[test]
    fn byte_soup_never_panics(soup in prop::collection::vec(0u8..=255u8, 0usize..512)) {
        if let Err(e) = parse_bytes(&soup, &limits()) {
            assert_typed(&e);
        }
    }

    #[test]
    fn oversize_header_block_is_431(value_len in 2048usize..6000) {
        let bytes = render("GET", "/x", &[("host".into(), "y".repeat(value_len))], b"");
        let err = parse_bytes(&bytes, &limits()).unwrap_err();
        prop_assert_eq!(err.status(), 431);
    }

    #[test]
    fn oversize_declared_body_is_413(extra in 1usize..10_000) {
        let declared = limits().max_body_bytes + extra;
        let raw = format!("POST /analyze HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        let err = parse_bytes(raw.as_bytes(), &limits()).unwrap_err();
        prop_assert_eq!(err.status(), 413);
        prop_assert!(matches!(err, HttpError::BodyTooLarge { .. }));
    }

    #[test]
    fn too_many_headers_is_431(count in 17usize..64) {
        let headers: Vec<(String, String)> =
            (0..count).map(|i| (format!("x-h{i}"), "v".into())).collect();
        let bytes = render("GET", "/x", &headers, b"");
        let err = parse_bytes(&bytes, &limits()).unwrap_err();
        prop_assert!(matches!(err, HttpError::TooManyHeaders { limit: 16 }), "{err:?}");
    }

    #[test]
    fn non_utf8_json_body_is_a_typed_400(bad_byte in 0x80u8..0xC0) {
        // Continuation bytes alone are never valid UTF-8.
        let bytes = render("POST", "/analyze", &[], &[b'{', bad_byte, b'}']);
        let parsed = parse_bytes(&bytes, &limits()).unwrap().unwrap();
        let err = parsed.body_utf8().unwrap_err();
        prop_assert_eq!(err, HttpError::InvalidUtf8);
        prop_assert_eq!(err.status(), 400);
    }

    #[test]
    fn chunked_delivery_matches_one_shot(
        method in arb_method(),
        path in arb_path(),
        headers in arb_headers(),
        body in arb_body(),
        chunk in 1usize..7,
    ) {
        struct Dribble<'a> {
            data: &'a [u8],
            at: usize,
            chunk: usize,
        }
        impl Read for Dribble<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                let n = self.chunk.min(out.len()).min(self.data.len() - self.at);
                out[..n].copy_from_slice(&self.data[self.at..self.at + n]);
                self.at += n;
                Ok(n)
            }
        }
        let bytes = render(method, &path, &headers, &body);
        let whole = parse_bytes(&bytes, &limits()).unwrap().unwrap();
        let mut dribble = Dribble { data: &bytes, at: 0, chunk };
        let chunked = read_request(&mut dribble, &limits()).unwrap().unwrap();
        prop_assert_eq!(whole.method, chunked.method);
        prop_assert_eq!(whole.target, chunked.target);
        prop_assert_eq!(whole.headers, chunked.headers);
        prop_assert_eq!(whole.body, chunked.body);
    }

    #[test]
    fn slow_loris_always_times_out_in_bounded_time(prefix_len in 0usize..40) {
        // A peer that sends a prefix then stalls forever.
        struct Loris<'a> {
            prefix: &'a [u8],
            at: usize,
        }
        impl Read for Loris<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.at < self.prefix.len() {
                    out[0] = self.prefix[self.at];
                    self.at += 1;
                    Ok(1)
                } else {
                    Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
                }
            }
        }
        let full = render("POST", "/analyze", &[], &[b'x'; 20]);
        let prefix = &full[..prefix_len.min(full.len())];
        let tight = HttpLimits { read_timeout: Duration::from_millis(25), ..limits() };
        let started = Instant::now();
        let result = read_request(&mut Loris { prefix, at: 0 }, &tight);
        prop_assert!(
            matches!(result, Err(HttpError::Timeout)),
            "stalled peer must hit the deadline, got {result:?}"
        );
        prop_assert!(started.elapsed() < Duration::from_secs(2), "bounded wait");
    }
}
