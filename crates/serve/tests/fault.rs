//! Fault injection at the serve layer: an injected worker panic must be
//! contained to its own job — a 500 with a typed body for that request,
//! a healthy daemon and a working worker pool for everyone else.
//!
//! Compiled only with `--features fault-injection`; the probe is a
//! no-op (`const false`) in production builds.

#![cfg(feature = "fault-injection")]

use pep_serve::http::HttpLimits;
use pep_serve::jobs::{JobStatus, JOB_PANIC};
use pep_serve::{client, serve, ServeConfig};
use std::time::Duration;

#[test]
fn injected_worker_panic_is_a_500_for_that_job_only() {
    let handle = serve(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        limits: HttpLimits {
            read_timeout: Duration::from_secs(5),
            ..HttpLimits::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr().to_string();

    // Arm the probe to fire exactly once: the first job's worker
    // panics mid-execution.
    pep_core::faults::arm(JOB_PANIC, 0);

    let body = r#"{"circuit": "sample:c17"}"#;
    let poisoned = client::request(&addr, "POST", "/analyze", Some(body)).expect("transport");
    assert_eq!(poisoned.status, 500, "{}", poisoned.body);
    let status: JobStatus = serde::json::from_str_as(&poisoned.body).expect("status JSON");
    assert_eq!(status.state, "failed");
    let failure = status.failure.expect("typed failure");
    assert_eq!(failure.status, 500);
    assert_eq!(failure.code, "worker-panic");

    // The blast radius ends there: liveness is green and the same
    // worker thread (catch_unwind, not respawn) completes the next job.
    assert_eq!(
        client::request(&addr, "GET", "/healthz", None)
            .unwrap()
            .status,
        200
    );
    let next = client::request(&addr, "POST", "/analyze", Some(body)).expect("transport");
    assert_eq!(next.status, 200, "{}", next.body);
    let next: JobStatus = serde::json::from_str_as(&next.body).unwrap();
    assert_eq!(next.state, "done");

    pep_core::faults::disarm_all();
    let summary = handle.shutdown_and_join();
    assert!(summary.clean);
    assert_eq!(summary.report.counters["serve.worker_panics"], 1);
    assert_eq!(summary.report.counters["serve.jobs_failed"], 1);
    assert_eq!(summary.report.counters["serve.jobs_completed"], 1);
}
