//! `pep-serve` — the statistical-timing analyzer as a long-running
//! service.
//!
//! A hand-rolled HTTP/1.1 + JSON daemon over [`std::net::TcpListener`]
//! (no dependencies beyond the workspace's vendored `serde`), built for
//! robustness rather than protocol completeness:
//!
//! * **Admission control** — a bounded job queue; beyond capacity the
//!   server sheds load with `429` + `Retry-After` instead of queueing
//!   unboundedly, and `GET /healthz` stays green throughout,
//! * **Crash isolation** — each job runs on a fixed worker pool under
//!   `catch_unwind` plus the engine's budget machinery; one poisoned
//!   job returns a `500` for that job only,
//! * **Cooperative cancellation** — every job carries a
//!   [`pep_core::CancelToken`]; `DELETE /jobs/:id`, a client hang-up on
//!   a synchronous request, and the drain deadline all stop work at the
//!   engine's existing poll points,
//! * **Graceful drain** — on `SIGTERM` or
//!   [`ServerHandle::shutdown`]: stop accepting, finish in-flight jobs
//!   within a grace window (escalating to abort after), join every
//!   thread, and flush a final [`pep_obs::RunReport`],
//! * **Caching** — parsed-and-annotated circuits are shared between
//!   jobs through a content-hash cache.
//!
//! # Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /analyze` | run an analysis (sync by default, `"detach": true` for 202 + job id) |
//! | `GET /jobs/:id` | job status / result |
//! | `DELETE /jobs/:id` | cancel a job |
//! | `GET /healthz` | liveness (always 200 while the process serves) |
//! | `GET /readyz` | readiness (503 while draining) |
//! | `GET /metrics` | queue depth, shed count, in-flight jobs, per-phase timings |
//!
//! ```no_run
//! let handle = pep_serve::serve(pep_serve::ServeConfig::default())?;
//! let addr = handle.local_addr().to_string();
//! let response = pep_serve::client::request(
//!     &addr,
//!     "POST",
//!     "/analyze",
//!     Some(r#"{"circuit": "sample:c17"}"#),
//! )?;
//! assert_eq!(response.status, 200);
//! let summary = handle.shutdown_and_join();
//! assert!(summary.clean);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)] // overridden only in `signals` (one extern shim)
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod jobs;
pub mod server;
pub mod signals;

pub use api::{AnalyzeRequest, CircuitSpec, JobResult, OutputStat};
pub use cache::CircuitCache;
pub use http::{HttpError, HttpLimits, Request, Response};
pub use jobs::{JobFailure, JobState, JobStatus, Jobs, SubmitError};
pub use server::{serve, ServeConfig, ServeSummary, ServerHandle};
