//! The daemon: accept loop, routing, and graceful drain.
//!
//! One thread accepts connections (nonblocking, so it can watch the
//! shutdown latch), one short-lived thread serves each connection
//! (`Connection: close` — no keep-alive state machine), and a fixed
//! pool of worker threads executes jobs from the bounded queue. Every
//! route answers from shared state without touching the engine, except
//! `POST /analyze` which goes through admission control.
//!
//! Shutdown — whether from [`ServerHandle::shutdown`] or a signal seen
//! on the process latch — follows one script: stop accepting
//! connections, refuse new jobs, give running jobs the grace window,
//! escalate leftovers to abort, join every thread, and hand back the
//! final [`RunReport`]. Nothing is detached; a clean exit leaks no
//! threads.

use crate::api::parse_analyze_request;
use crate::cache::CircuitCache;
use crate::http::{read_request, ChunkedWriter, HttpError, HttpLimits, Method, Request, Response};
use crate::jobs::{worker_loop, JobState, JobStatus, Jobs, SubmitError};
use pep_obs::{chrome_trace_json, PhaseReport, PromWriter, RunReport};
use pep_sta::cancel::{signal_state, CancelState};
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity (beyond this, requests shed with 429).
    pub queue_capacity: usize,
    /// Grace window for in-flight jobs at shutdown.
    pub grace: Duration,
    /// Per-request read limits.
    pub limits: HttpLimits,
    /// Parsed-circuit cache capacity.
    pub cache_entries: usize,
    /// Whether the accept loop also drains on the process signal latch
    /// (`psta serve` sets this; in-process tests do not).
    pub follow_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 16,
            grace: Duration::from_secs(5),
            limits: HttpLimits::default(),
            cache_entries: 16,
            follow_signals: false,
        }
    }
}

/// What [`ServerHandle::join`] returns after a full drain.
#[derive(Debug)]
pub struct ServeSummary {
    /// `true` when every job reached a terminal state within the grace
    /// (+ bounded abort) window and every thread was joined.
    pub clean: bool,
    /// The final machine-readable report: job counters, shed counts,
    /// cache statistics, and per-phase timings aggregated over jobs.
    pub report: RunReport,
}

struct Shared {
    jobs: Jobs,
    cache: CircuitCache,
    limits: HttpLimits,
    started: Instant,
    queue_capacity: usize,
    shutdown: AtomicBool,
    draining: AtomicBool,
}

/// A running server; dropping the handle does *not* stop it — call
/// [`shutdown`](ServerHandle::shutdown) + [`join`](ServerHandle::join).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<ServeSummary>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers the graceful-drain script (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Waits for the drain to complete and returns the final summary.
    ///
    /// # Panics
    ///
    /// Panics if the accept thread itself panicked (it never should:
    /// every per-connection and per-job failure is contained).
    pub fn join(self) -> ServeSummary {
        self.thread.join().expect("accept thread never panics")
    }

    /// Convenience: [`shutdown`](ServerHandle::shutdown) then
    /// [`join`](ServerHandle::join).
    pub fn shutdown_and_join(self) -> ServeSummary {
        self.shutdown();
        self.join()
    }
}

/// Binds, spawns workers and the accept loop, and returns immediately.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        jobs: Jobs::new(config.queue_capacity),
        cache: CircuitCache::new(config.cache_entries),
        limits: config.limits.clone(),
        started: Instant::now(),
        queue_capacity: config.queue_capacity,
        shutdown: AtomicBool::new(false),
        draining: AtomicBool::new(false),
    });

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("pep-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared.jobs, &shared.cache))
                .expect("spawn worker")
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("pep-serve-accept".to_owned())
        .spawn(move || accept_loop(listener, accept_shared, workers, &config))
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr,
        shared,
        thread,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: &ServeConfig,
) -> ServeSummary {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let signal_stop = config.follow_signals && signal_state() != CancelState::Live;
        if shared.shutdown.load(Ordering::Relaxed) || signal_stop {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections.retain(|c| !c.is_finished());
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("pep-serve-conn".to_owned())
                    .spawn(move || handle_connection(stream, &conn_shared))
                    .expect("spawn connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake…):
                // back off and keep serving.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Drain script: stop accepting connections and jobs, give running
    // jobs the grace window, abort stragglers, join everything.
    shared.draining.store(true, Ordering::Relaxed);
    drop(listener);
    let clean = shared.jobs.drain(config.grace);
    for worker in workers {
        let _ = worker.join();
    }
    for conn in connections {
        let _ = conn.join();
    }
    ServeSummary {
        clean,
        report: final_report(&shared),
    }
}

fn final_report(shared: &Shared) -> RunReport {
    let c = &shared.jobs.counters;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    counters.insert(
        "serve.jobs_submitted".into(),
        c.submitted.load(Ordering::Relaxed),
    );
    counters.insert(
        "serve.jobs_completed".into(),
        c.completed.load(Ordering::Relaxed),
    );
    counters.insert("serve.jobs_failed".into(), c.failed.load(Ordering::Relaxed));
    counters.insert(
        "serve.jobs_cancelled".into(),
        c.cancelled.load(Ordering::Relaxed),
    );
    counters.insert("serve.jobs_shed".into(), c.shed.load(Ordering::Relaxed));
    counters.insert(
        "serve.worker_panics".into(),
        c.panics.load(Ordering::Relaxed),
    );
    counters.insert("serve.cache_hits".into(), shared.cache.hits());
    counters.insert("serve.cache_misses".into(), shared.cache.misses());
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    gauges.insert(
        "serve.uptime_seconds".into(),
        shared.started.elapsed().as_secs_f64(),
    );
    let phases: Vec<PhaseReport> = shared
        .jobs
        .phases
        .snapshot()
        .into_iter()
        .map(|(name, (wall_seconds, count))| PhaseReport {
            name,
            wall_seconds,
            count,
            children: Vec::new(),
        })
        .collect();
    RunReport {
        tool: "psta".to_owned(),
        version: env!("CARGO_PKG_VERSION").to_owned(),
        command: "serve".to_owned(),
        phases,
        counters,
        gauges,
        histograms: BTreeMap::new(),
        warnings: Vec::new(),
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // A short OS timeout paces the retry loop inside read_request; the
    // overall deadline comes from the limits.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let response = match read_request(&mut stream, &shared.limits) {
        Ok(None) => return, // peer opened and closed without a request
        Ok(Some(request)) => route(&request, &stream, shared),
        Err(HttpError::Io(_)) => return, // transport is gone; nothing to say
        Err(e) => Some(Response::error(e.status(), "bad-request", &e.to_string())),
    };
    if let Some(response) = response {
        let _ = response.write_to(&mut stream);
    }
}

/// Routes one request. `None` means the peer disconnected and no
/// response should (or can) be written.
fn route(request: &Request, stream: &TcpStream, shared: &Shared) -> Option<Response> {
    let path = request.path();
    let response = match (request.method, path) {
        (Method::Get, "/healthz") => Response::text(200, "ok\n"),
        (Method::Get, "/readyz") => {
            if shared.jobs.accepting() && !shared.draining.load(Ordering::Relaxed) {
                Response::text(200, "ready\n")
            } else {
                Response::error(503, "draining", "server is draining")
            }
        }
        (Method::Get, "/metrics") => {
            let mut response = Response::text(200, render_metrics(shared));
            response.content_type = "text/plain; version=0.0.4; charset=utf-8";
            response
        }
        (Method::Post, "/analyze") => return handle_analyze(request, stream, shared),
        (Method::Get, _) if path.starts_with("/jobs/") => match parse_job_path(path) {
            Some((id, "")) => match shared.jobs.get(id) {
                Some(job) => Response::json(200, serde::json::to_string(&JobStatus::of(&job))),
                None => Response::error(404, "unknown-job", &format!("no job {id}")),
            },
            Some((id, "trace")) => handle_trace(id, shared),
            Some((id, "events")) => return handle_events(id, stream, shared),
            _ => Response::error(
                400,
                "bad-job-id",
                "expected /jobs/:id, /jobs/:id/trace or /jobs/:id/events",
            ),
        },
        (Method::Delete, _) if path.starts_with("/jobs/") => match parse_job_path(path) {
            Some((id, "")) => match shared.jobs.cancel(id) {
                // Cancelling work that already finished is a conflict —
                // the result stands. (Re-cancelling a cancelled job is
                // an idempotent 200.)
                Some(JobState::Done(_) | JobState::Failed(_)) => Response::error(
                    409,
                    "already-terminal",
                    &format!("job {id} already finished; nothing to cancel"),
                ),
                Some(_) => {
                    let job = shared.jobs.get(id).expect("cancel implies known");
                    Response::json(200, serde::json::to_string(&JobStatus::of(&job)))
                }
                None => Response::error(404, "unknown-job", &format!("no job {id}")),
            },
            _ => Response::error(400, "bad-job-id", "job id must be an integer"),
        },
        (Method::Post | Method::Delete, "/healthz" | "/readyz" | "/metrics")
        | (Method::Get | Method::Delete, "/analyze") => {
            Response::error(405, "method-not-allowed", "wrong method for this path")
        }
        _ => Response::error(404, "not-found", &format!("no route for {path}")),
    };
    Some(response)
}

/// Splits `/jobs/:id[/suffix]` into the id and the (possibly empty)
/// suffix.
fn parse_job_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (id, suffix) = match rest.split_once('/') {
        Some((id, suffix)) => (id, suffix),
        None => (rest, ""),
    };
    Some((id.parse::<u64>().ok()?, suffix))
}

/// `GET /jobs/:id/trace` — the job's Chrome trace-event JSON, when the
/// request asked for tracing. Mid-run the trace holds whatever has
/// been flushed so far; the complete profile is there once the job is
/// terminal.
fn handle_trace(id: u64, shared: &Shared) -> Response {
    match shared.jobs.get(id) {
        None => Response::error(404, "unknown-job", &format!("no job {id}")),
        Some(job) => match &job.trace {
            None => Response::error(
                404,
                "no-trace",
                &format!("job {id} was submitted without \"trace\""),
            ),
            Some(trace) => Response::json(200, chrome_trace_json(&trace.spans(), trace.dropped())),
        },
    }
}

/// `GET /jobs/:id/events` — streams phase enter/exit progress as
/// chunked newline-delimited JSON until the job is terminal (the final
/// line carries the terminal state) or the client hangs up. `None`
/// because the response bytes have already been written.
fn handle_events(id: u64, stream: &TcpStream, shared: &Shared) -> Option<Response> {
    let Some(job) = shared.jobs.get(id) else {
        return Some(Response::error(404, "unknown-job", &format!("no job {id}")));
    };
    let mut w = match ChunkedWriter::begin(stream, 200, "application/x-ndjson") {
        Ok(w) => w,
        Err(_) => return None,
    };
    let mut sent = 0usize;
    loop {
        let lines = job.progress_since(sent);
        sent += lines.len();
        for line in &lines {
            if w.chunk(format!("{line}\n").as_bytes()).is_err() {
                return None; // peer hung up; the job keeps running
            }
        }
        let state = job.state();
        if state.is_terminal() {
            let _ = w.chunk(
                format!("{{\"event\":\"end\",\"state\":\"{}\"}}\n", state.name()).as_bytes(),
            );
            let _ = w.finish();
            return None;
        }
        // A drain cancels every job, so this poll loop always
        // terminates; 20ms keeps the stream snappy without spinning.
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn handle_analyze(request: &Request, stream: &TcpStream, shared: &Shared) -> Option<Response> {
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(e) => return Some(Response::error(e.status(), "bad-request", &e.to_string())),
    };
    let parsed = match parse_analyze_request(body) {
        Ok(parsed) => parsed,
        Err(e) => return Some(Response::error(400, "bad-request", &e.to_string())),
    };
    let detach = parsed.detach;
    let job = match shared.jobs.submit(parsed) {
        Err(SubmitError::QueueFull { capacity }) => {
            return Some(
                Response::error(
                    429,
                    "queue-full",
                    &format!("queue at capacity {capacity}; retry shortly"),
                )
                .with_header("retry-after", "1"),
            )
        }
        Err(SubmitError::Draining) => {
            return Some(Response::error(503, "draining", "server is draining"))
        }
        Ok(job) => job,
    };
    if detach {
        return Some(Response::json(
            202,
            serde::json::to_string(&JobStatus::of(&job)),
        ));
    }
    // Synchronous mode: wait for the job, watching for the client
    // hanging up (in which case the work is cancelled, not orphaned).
    loop {
        let state = shared
            .jobs
            .wait_terminal_slice(&job, Duration::from_millis(50));
        if state.is_terminal() {
            let status = match &state {
                JobState::Done(_) => 200,
                JobState::Failed(f) => f.status,
                _ => 409,
            };
            return Some(Response::json(
                status,
                serde::json::to_string(&JobStatus::of(&job)),
            ));
        }
        if client_disconnected(stream) {
            // Abort the work; if it was still queued this terminates it
            // immediately, otherwise the worker stops at the next poll.
            shared.jobs.cancel(job.id);
            return None;
        }
    }
}

/// Detects a closed peer without consuming request bytes.
fn client_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,                                        // orderly shutdown
        Ok(_) => false,                                       // pipelined bytes; still alive
        Err(e) if e.kind() == ErrorKind::WouldBlock => false, // alive and quiet
        Err(_) => true,                                       // reset / broken
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Renders `/metrics` in Prometheus text exposition format 0.0.4:
/// `# HELP`/`# TYPE` headers, counters with the `_total` convention,
/// gauges, label families for the per-phase rollup, and the job
/// latency as a real `_bucket`/`_sum`/`_count` histogram.
fn render_metrics(shared: &Shared) -> String {
    let c = &shared.jobs.counters;
    let mut w = PromWriter::new();
    w.gauge(
        "pep_serve_uptime_seconds",
        "Seconds since the server started.",
        shared.started.elapsed().as_secs_f64(),
    );
    w.gauge(
        "pep_serve_queue_depth",
        "Jobs waiting for a worker.",
        shared.jobs.queue_depth() as f64,
    );
    w.gauge(
        "pep_serve_queue_capacity",
        "Configured admission-control queue capacity.",
        shared.queue_capacity as f64,
    );
    w.gauge(
        "pep_serve_in_flight",
        "Jobs running on a worker right now.",
        shared.jobs.in_flight() as f64,
    );
    w.gauge(
        "pep_serve_accepting",
        "1 while the queue admits work, 0 while draining.",
        f64::from(u8::from(shared.jobs.accepting())),
    );
    w.counter(
        "pep_serve_jobs_submitted_total",
        "Jobs accepted into the queue.",
        c.submitted.load(Ordering::Relaxed),
    );
    w.counter(
        "pep_serve_jobs_completed_total",
        "Jobs finished successfully.",
        c.completed.load(Ordering::Relaxed),
    );
    w.counter(
        "pep_serve_jobs_failed_total",
        "Jobs finished with a typed failure.",
        c.failed.load(Ordering::Relaxed),
    );
    w.counter(
        "pep_serve_jobs_cancelled_total",
        "Jobs cancelled by the client or at drain.",
        c.cancelled.load(Ordering::Relaxed),
    );
    w.counter(
        "pep_serve_jobs_shed_total",
        "Requests shed because the queue was full.",
        c.shed.load(Ordering::Relaxed),
    );
    w.counter(
        "pep_serve_worker_panics_total",
        "Worker panics contained by catch_unwind.",
        c.panics.load(Ordering::Relaxed),
    );
    w.counter(
        "pep_serve_cache_hits_total",
        "Parsed-circuit cache hits.",
        shared.cache.hits(),
    );
    w.counter(
        "pep_serve_cache_misses_total",
        "Parsed-circuit cache misses.",
        shared.cache.misses(),
    );
    let phases = shared.jobs.phases.snapshot();
    let seconds: Vec<(String, f64)> = phases
        .iter()
        .map(|(name, (s, _))| (name.clone(), *s))
        .collect();
    let counts: Vec<(String, f64)> = phases
        .iter()
        .map(|(name, (_, n))| (name.clone(), *n as f64))
        .collect();
    w.counter_family(
        "pep_serve_phase_seconds",
        "Wall seconds per engine phase, aggregated over completed jobs.",
        "phase",
        &seconds,
    );
    w.counter_family(
        "pep_serve_phase_runs",
        "Executions per engine phase, aggregated over completed jobs.",
        "phase",
        &counts,
    );
    w.histogram(
        "pep_serve_job_seconds",
        "End-to-end job latency in seconds (queued through terminal).",
        &shared.jobs.job_seconds().snapshot(),
    );
    w.finish()
}
