//! A minimal, defensive HTTP/1.1 subset over any [`Read`]/[`Write`]
//! pair.
//!
//! The parser is deliberately small — request line, headers,
//! `Content-Length` body — and deliberately paranoid: every dimension of
//! the input (head bytes, header count, body bytes, wall-clock time) is
//! capped by [`HttpLimits`], and every malformed or hostile input maps
//! to a typed [`HttpError`] with a definite 4xx/5xx status. A slow-loris
//! peer that dribbles bytes forever hits the read deadline and gets a
//! 408; a peer that closes mid-request gets classified as
//! [`HttpError::Truncated`]; nothing panics and nothing blocks past the
//! deadline.
//!
//! The parser reads from a generic [`Read`] so the proptest fuzz
//! harness can drive it from byte buffers and adversarial mock readers
//! without a socket in sight.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Resource caps applied while reading one request.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (the "head").
    pub max_head_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum declared/read body bytes.
    pub max_body_bytes: usize,
    /// Wall-clock deadline for reading one complete request.
    pub read_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Typed request-read failure; [`HttpError::status`] maps each variant
/// to the response status the peer receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine(String),
    /// Method is syntactically fine but not GET/POST/DELETE.
    UnsupportedMethod(String),
    /// Not an HTTP/1.x version token.
    UnsupportedVersion(String),
    /// Head (request line + headers) exceeded `max_head_bytes`.
    HeadTooLarge {
        /// The configured cap that tripped.
        limit: usize,
    },
    /// More header lines than `max_headers`.
    TooManyHeaders {
        /// The configured cap that tripped.
        limit: usize,
    },
    /// A header line without a colon or with an empty name.
    BadHeader(String),
    /// `Content-Length` was present but not a decimal integer.
    BadContentLength(String),
    /// Declared or actual body exceeded `max_body_bytes`.
    BodyTooLarge {
        /// The configured cap that tripped.
        limit: usize,
        /// The declared Content-Length.
        declared: usize,
    },
    /// `Transfer-Encoding` (chunked bodies are not supported).
    UnsupportedTransferEncoding,
    /// A body that must be UTF-8 (JSON) was not.
    InvalidUtf8,
    /// The read deadline expired before a full request arrived
    /// (slow-loris defense).
    Timeout,
    /// The peer closed the connection mid-request.
    Truncated,
    /// Transport error (connection reset, …) — usually unanswerable.
    Io(ErrorKind),
}

impl HttpError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_)
            | HttpError::InvalidUtf8
            | HttpError::Truncated
            | HttpError::Io(_) => 400,
            HttpError::UnsupportedMethod(_) => 405,
            HttpError::UnsupportedVersion(_) => 505,
            HttpError::HeadTooLarge { .. } | HttpError::TooManyHeaders { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::Timeout => 408,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine(line) => write!(f, "malformed request line {line:?}"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::TooManyHeaders { limit } => write!(f, "more than {limit} headers"),
            HttpError::BadHeader(h) => write!(f, "malformed header {h:?}"),
            HttpError::BadContentLength(v) => write!(f, "bad content-length {v:?}"),
            HttpError::BodyTooLarge { limit, declared } => {
                write!(f, "body of {declared} bytes exceeds {limit} bytes")
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported; use content-length")
            }
            HttpError::InvalidUtf8 => write!(f, "body is not valid UTF-8"),
            HttpError::Timeout => write!(f, "read deadline expired"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// The request methods the service routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `DELETE`
    Delete,
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The (supported) request method.
    pub method: Method,
    /// Request target as sent (path, possibly with a query we ignore).
    pub target: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no Content-Length).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The body as UTF-8, or the typed 400.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::InvalidUtf8)
    }
}

/// Reads one request from `r`, respecting every limit.
///
/// Returns `Ok(None)` on a clean EOF before any byte arrived (the peer
/// simply closed an idle connection). `WouldBlock`/`TimedOut` reads are
/// retried until `limits.read_timeout` elapses, so the function works
/// with both blocking sockets (with an OS read timeout set) and
/// nonblocking mocks.
///
/// # Errors
///
/// Any [`HttpError`] variant; see each variant's docs.
pub fn read_request<R: Read>(r: &mut R, limits: &HttpLimits) -> Result<Option<Request>, HttpError> {
    let deadline = Instant::now() + limits.read_timeout;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Phase 1: accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            if pos.line_end > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge {
                    limit: limits.max_head_bytes,
                });
            }
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        match r.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if retryable(&e) => {
                if Instant::now() >= deadline {
                    return Err(HttpError::Timeout);
                }
                if e.kind() == ErrorKind::WouldBlock {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Err(e) => return Err(HttpError::Io(e.kind())),
        }
    };

    let head =
        std::str::from_utf8(&buf[..head_end.line_end]).map_err(|_| HttpError::InvalidUtf8)?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let (method, target) = parse_request_line(request_line)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(clip(line)))?;
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadHeader(clip(line)));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let find = |wanted: &str| {
        headers
            .iter()
            .find(|(n, _)| n == wanted)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let body_len = match find("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadContentLength(clip(v)))?,
    };
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body_bytes,
            declared: body_len,
        });
    }

    // Phase 2: the body. Some of it may already be buffered.
    let mut body: Vec<u8> = buf[head_end.body_start.min(buf.len())..].to_vec();
    body.truncate(body_len); // ignore pipelined bytes beyond this request
    while body.len() < body_len {
        match r.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => {
                let want = body_len - body.len();
                body.extend_from_slice(&chunk[..n.min(want)]);
            }
            Err(e) if retryable(&e) => {
                if Instant::now() >= deadline {
                    return Err(HttpError::Timeout);
                }
                if e.kind() == ErrorKind::WouldBlock {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Err(e) => return Err(HttpError::Io(e.kind())),
        }
    }

    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// Parses one request from a complete byte buffer (fuzzing entry
/// point; identical semantics to [`read_request`] with an infinite
/// deadline).
///
/// # Errors
///
/// Same as [`read_request`].
pub fn parse_bytes(bytes: &[u8], limits: &HttpLimits) -> Result<Option<Request>, HttpError> {
    let mut cursor = std::io::Cursor::new(bytes);
    read_request(&mut cursor, limits)
}

struct HeadEnd {
    /// Byte offset one past the last header line (before the blank line).
    line_end: usize,
    /// Byte offset where the body starts.
    body_start: usize,
}

fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    // Accept both CRLF CRLF and bare LF LF head terminators.
    if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(HeadEnd {
            line_end: pos,
            body_start: pos + 4,
        });
    }
    if let Some(pos) = buf.windows(2).position(|w| w == b"\n\n") {
        return Some(HeadEnd {
            line_end: pos,
            body_start: pos + 2,
        });
    }
    None
}

fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
    )
}

fn parse_request_line(line: &str) -> Result<(Method, String), HttpError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine(clip(line)));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::UnsupportedVersion(clip(version)));
    }
    if !target.starts_with('/') || target.len() > 1024 {
        return Err(HttpError::BadRequestLine(clip(line)));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "DELETE" => Method::Delete,
        other if other.bytes().all(is_token_byte) && !other.is_empty() => {
            return Err(HttpError::UnsupportedMethod(clip(other)))
        }
        _ => return Err(HttpError::BadRequestLine(clip(line))),
    };
    Ok((method, target.to_owned()))
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Clips attacker-controlled text before embedding it in an error.
fn clip(s: &str) -> String {
    const MAX: usize = 64;
    if s.len() <= MAX {
        s.to_owned()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// One response, written with `Connection: close` semantics.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (Content-Type/-Length and Connection are added by
    /// [`write_to`](Response::write_to)).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Content-Type header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response from an already-serialized body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// The uniform JSON error shape: `{"error": …, "code": …}`.
    pub fn error(status: u16, code: &str, message: &str) -> Response {
        let body = serde::json::to_string(&ErrorBody {
            error: message.to_owned(),
            code: code.to_owned(),
        });
        Response::json(status, body)
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_owned(), value.into()));
        self
    }

    /// Serializes the response to the wire.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Streams a response body with `Transfer-Encoding: chunked` — the
/// shape a long-running progress endpoint needs: the head goes out
/// immediately, each event is one chunk the peer can read as it
/// arrives, and the zero-length chunk ends the stream.
///
/// The writer is deliberately one-way: there is no buffering and every
/// [`chunk`](ChunkedWriter::chunk) flushes, so a watching client sees
/// each event with no more delay than the transport adds.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head (status, content type,
    /// `transfer-encoding: chunked`, `connection: close`) and returns
    /// the body writer.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from `w`.
    pub fn begin(mut w: W, status: u16, content_type: &str) -> std::io::Result<ChunkedWriter<W>> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
            status,
            status_text(status),
            content_type,
        );
        w.write_all(head.as_bytes())?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Sends one chunk and flushes. Empty input is skipped — a
    /// zero-length chunk would terminate the stream early.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (the peer hung up).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Decodes a complete `Transfer-Encoding: chunked` body (client side:
/// the stream is already fully read because the server closes the
/// connection after the final chunk). Returns `None` on framing the
/// decoder does not recognize.
pub fn decode_chunked(raw: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw.len());
    let mut rest = raw;
    loop {
        let line_end = rest.windows(2).position(|w| w == b"\r\n")?;
        let size_line = std::str::from_utf8(&rest[..line_end]).ok()?;
        // Chunk extensions (`;...`) are legal; we never emit them but
        // tolerate them on the way in.
        let size_hex = size_line.split(';').next()?.trim();
        let size = usize::from_str_radix(size_hex, 16).ok()?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Some(out);
        }
        if rest.len() < size + 2 {
            return None;
        }
        out.extend_from_slice(&rest[..size]);
        if &rest[size..size + 2] != b"\r\n" {
            return None;
        }
        rest = &rest[size + 2..];
    }
}

/// The serialized JSON error body.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ErrorBody {
    /// Human-readable message.
    pub error: String,
    /// Machine-matchable error code.
    pub code: String,
}

/// Reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    #[test]
    fn parses_simple_get() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n", &limits())
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse_bytes(
            b"POST /analyze?x=1 HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd",
            &limits(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path(), "/analyze");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversize_declared_body() {
        let mut l = limits();
        l.max_body_bytes = 10;
        let err =
            parse_bytes(b"POST /analyze HTTP/1.1\r\ncontent-length: 11\r\n\r\n", &l).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { declared: 11, .. }));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_oversize_head() {
        let mut l = limits();
        l.max_head_bytes = 64;
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("x: {}\r\n\r\n", "y".repeat(200)).as_bytes());
        let err = parse_bytes(&raw, &l).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn truncated_request_is_typed() {
        let err = parse_bytes(b"GET / HTTP/1.1\r\nhos", &limits()).unwrap_err();
        assert_eq!(err, HttpError::Truncated);
        // Body truncation too.
        let err = parse_bytes(
            b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nab",
            &limits(),
        )
        .unwrap_err();
        assert_eq!(err, HttpError::Truncated);
    }

    #[test]
    fn empty_connection_is_none() {
        assert!(parse_bytes(b"", &limits()).unwrap().is_none());
    }

    #[test]
    fn slow_loris_times_out() {
        struct Loris;
        impl Read for Loris {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(ErrorKind::WouldBlock))
            }
        }
        let l = HttpLimits {
            read_timeout: Duration::from_millis(30),
            ..limits()
        };
        let start = Instant::now();
        let err = read_request(&mut Loris, &l).unwrap_err();
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), 408);
        assert!(start.elapsed() < Duration::from_secs(5), "bounded wait");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn chunked_writer_wire_format_round_trips() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::begin(&mut out, 200, "application/x-ndjson").unwrap();
        w.chunk(b"{\"a\":1}\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, not a premature terminator
        w.chunk(b"{\"b\":2}\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
        let body_start = text.find("\r\n\r\n").unwrap() + 4;
        let decoded = decode_chunked(&out[body_start..]).expect("valid framing");
        assert_eq!(decoded, b"{\"a\":1}\n{\"b\":2}\n");
        // Truncated framing is a decode failure, not a panic.
        assert!(decode_chunked(&out[body_start..out.len() - 3]).is_none());
        assert!(decode_chunked(b"zz\r\n").is_none());
    }

    #[test]
    fn unsupported_method_and_version() {
        assert_eq!(
            parse_bytes(b"PATCH / HTTP/1.1\r\n\r\n", &limits())
                .unwrap_err()
                .status(),
            405
        );
        assert_eq!(
            parse_bytes(b"GET / HTTP/2\r\n\r\n", &limits())
                .unwrap_err()
                .status(),
            505
        );
    }
}
