//! POSIX signal bridging — the only unsafe code in the workspace.
//!
//! The handler does exactly one async-signal-safe thing: it stores into
//! the process-global latch via [`pep_sta::cancel::note_signal`] (one
//! relaxed atomic `fetch_max`). Everything else — draining the queue,
//! degrading an interactive run, flushing the final report — happens on
//! ordinary threads that *poll* the latch via
//! [`pep_sta::cancel::signal_state`] or a signal-aware
//! [`pep_sta::CancelToken`].
//!
//! A second signal while the first is still being honored calls
//! `_exit(130)` — the conventional "user really means it" escape hatch
//! that skips destructors but cannot corrupt state (the latch is the
//! only shared state the handler touches).

#![allow(unsafe_code)]

use pep_sta::cancel::{note_signal, signal_state, CancelState};

/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill; what orchestrators send first).
pub const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn _exit(code: i32) -> !;
}

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one atomic load + one atomic store, or _exit.
    if signal_state() != CancelState::Live {
        unsafe { _exit(130) }
    }
    note_signal(CancelState::Degrade);
}

/// Installs the Ctrl-C / SIGTERM handler (idempotent).
///
/// After this, the first signal latches a degrade-strength cancellation
/// that signal-aware tokens and the serve drain loop observe; a second
/// signal exits immediately with status 130.
pub fn install() {
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}
