//! A tiny blocking HTTP client for the CLI and the smoke tests.
//!
//! Speaks exactly the dialect the server emits (`Connection: close`,
//! `Content-Length` bodies), over one `TcpStream` per request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client-side transport or protocol failure.
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError(format!("transport error: {e}"))
    }
}

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Sends one request and reads the full response.
///
/// `addr` is `host:port`. `body = Some(json)` adds a JSON
/// `Content-Length` body.
///
/// # Errors
///
/// [`ClientError`] on connect/transport failures or a malformed
/// response head.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, ClientError> {
    request_with_timeout(addr, method, path, body, Duration::from_secs(60))
}

/// [`request`] with an explicit per-request timeout.
///
/// # Errors
///
/// [`ClientError`], including on timeout.
pub fn request_with_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<ClientResponse, ClientError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| ClientError(format!("connect to {addr} failed: {e}")))?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    send_over(stream, method, path, body)
}

/// Sends a request over an already-connected stream (used by the
/// disconnect-handling tests).
///
/// # Errors
///
/// [`ClientError`] on transport failures or a malformed response.
pub fn send_over(
    mut stream: TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, ClientError> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: pep-serve\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError("response without header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError("non-UTF-8 response head".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError(format!("bad status line {status_line:?}")))?;
    let raw_body = &raw[head_end + 4..];
    let chunked = head
        .lines()
        .any(|l| l.eq_ignore_ascii_case("transfer-encoding: chunked"));
    let body = if chunked {
        let decoded = crate::http::decode_chunked(raw_body)
            .ok_or_else(|| ClientError("malformed chunked body".into()))?;
        String::from_utf8_lossy(&decoded).into_owned()
    } else {
        String::from_utf8_lossy(raw_body).into_owned()
    };
    Ok(ClientResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_head_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 1\r\n\r\n{\"a\":1}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.body, "{\"a\":1}");
        assert!(!r.is_success());
        assert!(parse_response(b"garbage").is_err());
    }

    #[test]
    fn dechunks_streamed_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n\
                    4\r\nab\r\n\r\n3\r\ncd\n\r\n0\r\n\r\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.body, "ab\r\ncd\n");
        let bad = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n";
        assert!(parse_response(bad).is_err());
    }
}
