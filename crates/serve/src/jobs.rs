//! The bounded job queue, worker pool, and job registry.
//!
//! Admission control happens at [`Jobs::submit`]: a full queue sheds the
//! request (→ 429 + `Retry-After`), a draining server refuses it
//! (→ 503). Each accepted job carries its own [`CancelToken`]; workers
//! run the analysis under `catch_unwind` so one poisoned job returns a
//! 500 for *that job only* and the worker thread survives to take the
//! next one. Shutdown is cooperative: [`Jobs::drain`] stops admission,
//! cancels everything still queued, gives running jobs a grace window,
//! and only then escalates their tokens to abort.

use crate::api::{job_result, AnalyzeRequest, JobResult};
use crate::cache::CircuitCache;
use pep_core::{try_analyze_cancellable, CancelToken, PepError};
use pep_obs::{LogHistogram, MetricsRegistry, Session, Trace};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the data from a poisoned lock. A panicked
/// holder is always some *other* job's contained panic; inheriting its
/// (at worst slightly stale) aggregates beats taking `/metrics` and
/// every later job down with it.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fault site: panic in the serve worker just before the analysis runs
/// (probed through the engine's cfg-gated fault registry, so it
/// compiles away without the `fault-injection` feature).
pub const JOB_PANIC: &str = "serve-job-panic";

/// How many terminal jobs the registry remembers for `GET /jobs/:id`.
const TERMINAL_RETENTION: usize = 256;

/// Lifecycle of one job.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished successfully.
    Done(Box<JobResult>),
    /// Finished with a typed error.
    Failed(JobFailure),
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// Short state name for status JSON.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// A typed job failure (maps directly onto the HTTP response).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFailure {
    /// HTTP status for this failure.
    pub status: u16,
    /// Machine-matchable code (`bad-circuit`, `budget-exceeded`,
    /// `worker-panic`, …).
    pub code: String,
    /// Human-readable message.
    pub error: String,
}

/// One job: the request, its cancel token, and its observable state.
#[derive(Debug)]
pub struct Job {
    /// Monotonic job id.
    pub id: u64,
    /// The parsed request.
    pub request: AnalyzeRequest,
    /// Cancels this job (degrade-free: service cancellation aborts).
    pub cancel: CancelToken,
    /// Span trace attached when the request asked for one
    /// (`GET /jobs/:id/trace` serves it).
    pub trace: Option<Trace>,
    state: Mutex<JobState>,
    /// Phase enter/exit progress lines, appended as the job runs and
    /// streamed by `GET /jobs/:id/events`. Shared with the phase
    /// listener installed on the job's session.
    progress: Arc<Mutex<Vec<String>>>,
}

impl Job {
    /// Snapshot of the current state.
    pub fn state(&self) -> JobState {
        lock_recover(&self.state).clone()
    }

    /// Progress lines recorded so far, starting at `offset` (so a
    /// streaming endpoint can poll incrementally).
    pub fn progress_since(&self, offset: usize) -> Vec<String> {
        let lines = lock_recover(&self.progress);
        lines
            .get(offset..)
            .map(<[String]>::to_vec)
            .unwrap_or_default()
    }
}

/// Wire shape of `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// State name (`queued`, `running`, `done`, `failed`, `cancelled`).
    pub state: String,
    /// The result, when `state == "done"`.
    pub result: Option<JobResult>,
    /// The failure, when `state == "failed"`.
    pub failure: Option<JobFailure>,
}

impl JobStatus {
    /// Builds the status payload for a job.
    pub fn of(job: &Job) -> JobStatus {
        let state = job.state();
        JobStatus {
            id: job.id,
            state: state.name().to_owned(),
            result: match &state {
                JobState::Done(r) => Some((**r).clone()),
                _ => None,
            },
            failure: match state {
                JobState::Failed(f) => Some(f),
                _ => None,
            },
        }
    }
}

/// Why [`Jobs::submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — shed with 429 + `Retry-After`.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// Server is draining — 503.
    Draining,
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<Arc<Job>>,
    registry: HashMap<u64, Arc<Job>>,
    terminal_order: VecDeque<u64>,
    accepting: bool,
    in_flight: usize,
}

/// Monotonic counters the queue maintains for `/metrics`.
#[derive(Debug, Default)]
pub struct JobCounters {
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests shed because the queue was full.
    pub shed: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs finished with a typed failure.
    pub failed: AtomicU64,
    /// Jobs cancelled (client- or drain-initiated).
    pub cancelled: AtomicU64,
    /// Worker panics contained by `catch_unwind`.
    pub panics: AtomicU64,
}

/// Aggregated per-phase wall time across every job, for `/metrics`.
#[derive(Debug, Default)]
pub struct PhaseAgg {
    totals: Mutex<BTreeMap<String, (f64, u64)>>,
}

impl PhaseAgg {
    /// Folds one job's phase tree into the totals.
    pub fn fold(&self, phases: &[pep_obs::PhaseReport]) {
        let mut totals = lock_recover(&self.totals);
        fn walk(totals: &mut BTreeMap<String, (f64, u64)>, nodes: &[pep_obs::PhaseReport]) {
            for n in nodes {
                let entry = totals.entry(n.name.clone()).or_insert((0.0, 0));
                entry.0 += n.wall_seconds;
                entry.1 += n.count;
                walk(totals, &n.children);
            }
        }
        walk(&mut totals, phases);
    }

    /// Snapshot: phase name → (total seconds, count).
    pub fn snapshot(&self) -> BTreeMap<String, (f64, u64)> {
        lock_recover(&self.totals).clone()
    }
}

/// The shared queue + registry; one per server.
#[derive(Debug)]
pub struct Jobs {
    inner: Mutex<Inner>,
    /// Wakes workers when work arrives or shutdown begins.
    work_cv: Condvar,
    /// Wakes waiters when any job reaches a terminal state.
    done_cv: Condvar,
    next_id: AtomicU64,
    capacity: usize,
    /// Monotonic counters for `/metrics`.
    pub counters: JobCounters,
    /// Per-phase timing rollup for `/metrics`.
    pub phases: PhaseAgg,
    /// Log2-bucket histograms (job latency) for `/metrics`.
    pub metrics: MetricsRegistry,
}

impl Jobs {
    /// A queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Self {
        Jobs {
            inner: Mutex::new(Inner {
                accepting: true,
                ..Inner::default()
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            counters: JobCounters::default(),
            phases: PhaseAgg::default(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// End-to-end job latency histogram (seconds, queued → terminal on
    /// a worker).
    pub fn job_seconds(&self) -> LogHistogram {
        self.metrics.log_histogram("pep.serve.job.seconds")
    }

    /// Jobs waiting for a worker right now.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.inner).queue.len()
    }

    /// Jobs running right now.
    pub fn in_flight(&self) -> usize {
        lock_recover(&self.inner).in_flight
    }

    /// Whether the queue still admits work.
    pub fn accepting(&self) -> bool {
        lock_recover(&self.inner).accepting
    }

    /// Admission control: accepts the request or sheds it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under load, [`SubmitError::Draining`]
    /// after shutdown began.
    pub fn submit(&self, request: AnalyzeRequest) -> Result<Arc<Job>, SubmitError> {
        let mut inner = lock_recover(&self.inner);
        if !inner.accepting {
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.capacity {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let trace = request.trace.map(Trace::new);
        let job = Arc::new(Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            request,
            cancel: CancelToken::new(),
            trace,
            state: Mutex::new(JobState::Queued),
            progress: Arc::new(Mutex::new(Vec::new())),
        });
        inner.queue.push_back(Arc::clone(&job));
        inner.registry.insert(job.id, Arc::clone(&job));
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.work_cv.notify_one();
        Ok(job)
    }

    /// Looks up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        lock_recover(&self.inner).registry.get(&id).cloned()
    }

    /// Cancels a job: queued jobs terminate immediately, running jobs
    /// get their token escalated to abort and terminate at the next
    /// engine poll point. Returns the post-cancel state, or `None` for
    /// an unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let job = self.get(id)?;
        job.cancel.cancel_abort();
        {
            let mut state = lock_recover(&job.state);
            if matches!(*state, JobState::Queued) {
                *state = JobState::Cancelled;
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.note_terminal(job.id);
                self.done_cv.notify_all();
            }
        }
        Some(job.state())
    }

    /// Blocks until a job is available; returns `None` when the queue
    /// is draining and empty (the worker should exit).
    pub fn take_next(&self) -> Option<Arc<Job>> {
        let mut inner = lock_recover(&self.inner);
        loop {
            while let Some(job) = inner.queue.pop_front() {
                let mut state = lock_recover(&job.state);
                if matches!(*state, JobState::Queued) {
                    *state = JobState::Running;
                    drop(state);
                    inner.in_flight += 1;
                    return Some(job);
                }
                // Cancelled while queued — skip it.
            }
            if !inner.accepting {
                return None;
            }
            inner = self
                .work_cv
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records a job's terminal state and wakes waiters.
    pub fn finish(&self, job: &Job, state: JobState) {
        debug_assert!(state.is_terminal());
        match &state {
            JobState::Done(_) => self.counters.completed.fetch_add(1, Ordering::Relaxed),
            JobState::Cancelled => self.counters.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => self.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        *lock_recover(&job.state) = state;
        {
            let mut inner = lock_recover(&self.inner);
            inner.in_flight = inner.in_flight.saturating_sub(1);
        }
        self.note_terminal(job.id);
        self.done_cv.notify_all();
    }

    fn note_terminal(&self, id: u64) {
        let mut inner = lock_recover(&self.inner);
        inner.terminal_order.push_back(id);
        while inner.terminal_order.len() > TERMINAL_RETENTION {
            if let Some(old) = inner.terminal_order.pop_front() {
                inner.registry.remove(&old);
            }
        }
    }

    /// Waits up to `slice` for `job` to reach a terminal state; returns
    /// the state either way. Callers loop around this so they can poll
    /// side conditions (client disconnect) between slices.
    pub fn wait_terminal_slice(&self, job: &Job, slice: Duration) -> JobState {
        let deadline = Instant::now() + slice;
        let mut state = lock_recover(&job.state);
        while !state.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // The shared done_cv pairs with the *inner* mutex for
            // drain waits, but terminal transitions notify while the
            // job's own state lock is free — a short timed wait keeps
            // this simple and race-free.
            drop(state);
            std::thread::sleep(Duration::from_millis(2).min(deadline - now));
            state = lock_recover(&job.state);
        }
        state.clone()
    }

    /// Stops admission and cancels everything still queued.
    pub fn begin_shutdown(&self) {
        let queued: Vec<Arc<Job>> = {
            let mut inner = lock_recover(&self.inner);
            inner.accepting = false;
            inner.queue.drain(..).collect()
        };
        for job in queued {
            let mut state = lock_recover(&job.state);
            if matches!(*state, JobState::Queued) {
                *state = JobState::Cancelled;
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.note_terminal(job.id);
            }
        }
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Graceful drain: stop admission, give running jobs `grace` to
    /// finish, then escalate their tokens to abort and wait (bounded)
    /// for the workers to observe. Returns `true` when everything
    /// terminated.
    pub fn drain(&self, grace: Duration) -> bool {
        self.begin_shutdown();
        let deadline = Instant::now() + grace;
        while self.in_flight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if self.in_flight() > 0 {
            // Grace expired: abort whatever is still running.
            let running: Vec<Arc<Job>> = {
                let inner = lock_recover(&self.inner);
                inner.registry.values().cloned().collect()
            };
            for job in running {
                if matches!(job.state(), JobState::Running) {
                    job.cancel.cancel_abort();
                }
            }
            // Cancellation latency is bounded by the engine's poll
            // granularity; wait a bounded extra window.
            let hard = Instant::now() + Duration::from_secs(10);
            while self.in_flight() > 0 && Instant::now() < hard {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.in_flight() == 0
    }
}

/// Runs one job to its terminal state. Everything — cache miss parse,
/// the analysis itself, result assembly — happens under
/// `catch_unwind`, so a panic poisons only this job.
pub fn run_job(jobs: &Jobs, cache: &CircuitCache, job: &Job) {
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(cache, job)));
    let state = match outcome {
        Ok(Ok((result, report))) => {
            jobs.phases.fold(&report.phases);
            JobState::Done(Box::new(result))
        }
        Ok(Err(JobOutcomeErr::Cancelled)) => JobState::Cancelled,
        Ok(Err(JobOutcomeErr::Failure(f))) => JobState::Failed(f),
        Err(panic) => {
            jobs.counters.panics.fetch_add(1, Ordering::Relaxed);
            JobState::Failed(JobFailure {
                status: 500,
                code: "worker-panic".to_owned(),
                error: format!("worker panicked: {}", panic_message(&panic)),
            })
        }
    };
    jobs.job_seconds().record(started.elapsed().as_secs_f64());
    jobs.finish(job, state);
}

/// Worker thread body: take jobs until the queue drains.
pub fn worker_loop(jobs: &Jobs, cache: &CircuitCache) {
    while let Some(job) = jobs.take_next() {
        run_job(jobs, cache, &job);
    }
}

enum JobOutcomeErr {
    Cancelled,
    Failure(JobFailure),
}

fn execute(
    cache: &CircuitCache,
    job: &Job,
) -> Result<(JobResult, pep_obs::RunReport), JobOutcomeErr> {
    let request = &job.request;
    let cancel = &job.cancel;
    let started = Instant::now();
    if pep_core::faults::fires(JOB_PANIC) {
        panic!("injected fault: {JOB_PANIC}");
    }
    let circuit = cache
        .get_or_parse(&request.circuit, request.seed)
        .map_err(|e| {
            JobOutcomeErr::Failure(JobFailure {
                status: 422,
                code: "bad-circuit".to_owned(),
                error: e.to_string(),
            })
        })?;
    let obs = Session::new();
    if let Some(trace) = &job.trace {
        obs.set_trace(trace.clone());
    }
    // Every phase boundary becomes one progress line the events
    // endpoint streams. Phase names are code-chosen identifiers, so
    // the hand-rolled JSON needs no escaping.
    let progress = Arc::clone(&job.progress);
    obs.set_phase_listener(Arc::new(move |phase: &str, entering: bool, t: f64| {
        let line = format!(
            "{{\"event\":\"{}\",\"phase\":\"{phase}\",\"t_seconds\":{t:.6}}}",
            if entering { "enter" } else { "exit" },
        );
        lock_recover(&progress).push(line);
    }));
    let analysis = try_analyze_cancellable(
        &circuit.netlist,
        &circuit.timing,
        &request.config,
        &obs,
        cancel,
    )
    .map_err(|e| match e {
        PepError::Cancelled(_) => JobOutcomeErr::Cancelled,
        other => JobOutcomeErr::Failure(JobFailure {
            status: 422,
            code: "analysis-failed".to_owned(),
            error: other.to_string(),
        }),
    })?;
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let result = job_result(&request.circuit, &circuit.netlist, &analysis, elapsed_ms);
    Ok((result, obs.report("serve-analyze")))
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::CircuitSpec;
    use pep_core::AnalysisConfig;

    fn request() -> AnalyzeRequest {
        AnalyzeRequest {
            circuit: CircuitSpec::Sample("c17".into()),
            seed: 1,
            config: AnalysisConfig::default(),
            detach: false,
            trace: None,
        }
    }

    #[test]
    fn queue_sheds_beyond_capacity() {
        let jobs = Jobs::new(2);
        assert!(jobs.submit(request()).is_ok());
        assert!(jobs.submit(request()).is_ok());
        match jobs.submit(request()) {
            Err(SubmitError::QueueFull { capacity: 2 }) => {}
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(jobs.counters.shed.load(Ordering::Relaxed), 1);
        assert_eq!(jobs.queue_depth(), 2);
    }

    #[test]
    fn draining_queue_refuses_submissions() {
        let jobs = Jobs::new(4);
        let queued = jobs.submit(request()).unwrap();
        jobs.begin_shutdown();
        assert!(matches!(jobs.submit(request()), Err(SubmitError::Draining)));
        // The queued job was cancelled, not lost.
        assert!(matches!(queued.state(), JobState::Cancelled));
        // And workers see an empty, draining queue.
        assert!(jobs.take_next().is_none());
    }

    #[test]
    fn cancel_of_queued_job_is_immediate() {
        let jobs = Jobs::new(4);
        let job = jobs.submit(request()).unwrap();
        let state = jobs.cancel(job.id).expect("known id");
        assert!(matches!(state, JobState::Cancelled));
        assert!(jobs.cancel(999).is_none(), "unknown id is None");
        // A worker never sees it.
        jobs.begin_shutdown();
        assert!(jobs.take_next().is_none());
    }

    #[test]
    fn worker_runs_job_to_done() {
        let jobs = Jobs::new(4);
        let cache = CircuitCache::new(4);
        let job = jobs.submit(request()).unwrap();
        let taken = jobs.take_next().unwrap();
        assert_eq!(taken.id, job.id);
        run_job(&jobs, &cache, &taken);
        match job.state() {
            JobState::Done(result) => {
                assert_eq!(result.circuit, "c17");
                assert!(!result.outputs.is_empty());
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(jobs.counters.completed.load(Ordering::Relaxed), 1);
        assert_eq!(jobs.in_flight(), 0);
        // Phase timings were folded into the rollup.
        assert!(!jobs.phases.snapshot().is_empty());
    }

    #[test]
    fn traced_job_records_spans_progress_and_latency() {
        let jobs = Jobs::new(4);
        let cache = CircuitCache::new(4);
        let job = jobs
            .submit(AnalyzeRequest {
                trace: Some(pep_obs::TraceLevel::Nodes),
                ..request()
            })
            .unwrap();
        let taken = jobs.take_next().unwrap();
        run_job(&jobs, &cache, &taken);
        assert!(matches!(job.state(), JobState::Done(_)));
        // The trace captured wave and node spans for the job.
        let trace = job.trace.as_ref().expect("trace requested");
        let spans = trace.spans();
        assert!(spans.iter().any(|s| s.cat == "wave"), "wave spans");
        assert!(spans.iter().any(|s| s.cat == "node"), "node spans");
        // Phase progress lines were streamed into the job.
        let lines = job.progress_since(0);
        assert!(
            lines.iter().any(|l| l.contains("\"event\":\"enter\"")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("\"event\":\"exit\"")),
            "{lines:?}"
        );
        assert!(job.progress_since(lines.len()).is_empty());
        // And the latency histogram saw exactly this job.
        let snap = jobs.job_seconds().snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum > 0.0);
        // An untraced job carries no trace.
        let plain = jobs.submit(request()).unwrap();
        assert!(plain.trace.is_none());
    }

    #[test]
    fn poisoned_phase_agg_still_serves_data() {
        let agg = PhaseAgg::default();
        agg.fold(&[pep_obs::PhaseReport {
            name: "analyze".into(),
            wall_seconds: 0.25,
            count: 1,
            children: Vec::new(),
        }]);
        // Poison the mutex the way a contained worker panic would.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = agg.totals.lock().unwrap();
            panic!("poison");
        }));
        assert!(agg.totals.lock().is_err(), "mutex is actually poisoned");
        // Both sides recover the data instead of propagating the panic.
        let snap = agg.snapshot();
        assert_eq!(snap.get("analyze"), Some(&(0.25, 1)));
        agg.fold(&[pep_obs::PhaseReport {
            name: "analyze".into(),
            wall_seconds: 0.75,
            count: 1,
            children: Vec::new(),
        }]);
        assert_eq!(agg.snapshot().get("analyze"), Some(&(1.0, 2)));
    }

    #[test]
    fn drain_with_no_workers_cancels_queued_work() {
        let jobs = Jobs::new(8);
        let a = jobs.submit(request()).unwrap();
        let b = jobs.submit(request()).unwrap();
        assert!(jobs.drain(Duration::from_millis(50)));
        assert!(matches!(a.state(), JobState::Cancelled));
        assert!(matches!(b.state(), JobState::Cancelled));
        assert_eq!(jobs.counters.cancelled.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn job_status_json_round_trips() {
        let jobs = Jobs::new(4);
        let job = jobs.submit(request()).unwrap();
        let status = JobStatus::of(&job);
        assert_eq!(status.state, "queued");
        let text = serde::json::to_string(&status);
        let back: JobStatus = serde::json::from_str_as(&text).unwrap();
        assert_eq!(back, status);
    }
}
