//! The service's request/response vocabulary.
//!
//! Request bodies are parsed *manually* through the vendored
//! [`serde::Value`] tree rather than the derive, for two reasons: the
//! derived `Deserialize` requires every struct field present (clients
//! should be able to send just `{"circuit": "sample:c17"}`), and a
//! service must reject unknown fields with a helpful 400 instead of
//! silently ignoring a typo'd knob. Responses use the derive — the
//! server always populates every field.

use pep_core::{AnalysisConfig, Budget, CombineMode, PepAnalysis};
use pep_netlist::Netlist;
use pep_obs::{TraceLevel, Warning, WarningGroup};
use serde::{Deserialize, Serialize, Value};

/// A client-facing request-shape error (always a 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError(pub String);

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ApiError {}

/// Which circuit to analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSpec {
    /// An embedded sample (`c17`, `mux2`, `fig6`).
    Sample(String),
    /// An ISCAS89 profile generator (`s5378`, …).
    Profile(String),
    /// Inline ISCAS `.bench` text.
    Bench {
        /// Circuit name used in reports.
        name: String,
        /// The `.bench` source.
        text: String,
    },
}

impl CircuitSpec {
    /// A stable cache-key string covering everything that determines
    /// the parsed netlist.
    pub fn cache_text(&self) -> String {
        match self {
            CircuitSpec::Sample(name) => format!("sample:{name}"),
            CircuitSpec::Profile(name) => format!("profile:{name}"),
            CircuitSpec::Bench { name, text } => format!("bench:{name}\n{text}"),
        }
    }

    /// Display name for reports.
    pub fn display_name(&self) -> &str {
        match self {
            CircuitSpec::Sample(name) | CircuitSpec::Profile(name) => name,
            CircuitSpec::Bench { name, .. } => name,
        }
    }
}

/// One parsed `POST /analyze` body.
#[derive(Debug, Clone)]
pub struct AnalyzeRequest {
    /// What to analyze.
    pub circuit: CircuitSpec,
    /// Delay-annotation seed (default 1).
    pub seed: u64,
    /// Engine configuration, overlaid on the defaults.
    pub config: AnalysisConfig,
    /// `true` → enqueue and return 202 with the job id immediately;
    /// `false` (default) → wait for the result in the response.
    pub detach: bool,
    /// When set, the job runs with span tracing at this level and
    /// `GET /jobs/:id/trace` serves the Chrome trace-event JSON.
    pub trace: Option<TraceLevel>,
}

/// Parses and validates a `POST /analyze` JSON body.
///
/// # Errors
///
/// [`ApiError`] (→ 400) on bad JSON, unknown fields, bad types, or a
/// missing circuit.
pub fn parse_analyze_request(body: &str) -> Result<AnalyzeRequest, ApiError> {
    let value = serde::json::from_str(body).map_err(|e| ApiError(format!("bad JSON: {e}")))?;
    let map = value
        .as_map()
        .ok_or_else(|| ApiError("request body must be a JSON object".into()))?;

    const KNOWN: &[&str] = &[
        "circuit", "bench", "name", "seed", "config", "detach", "trace",
    ];
    for (key, _) in map {
        if !KNOWN.contains(&key.as_str()) {
            return Err(ApiError(format!(
                "unknown field {key:?} (known: {})",
                KNOWN.join(", ")
            )));
        }
    }

    let circuit = match (value.get("circuit"), value.get("bench")) {
        (Some(_), Some(_)) => {
            return Err(ApiError(
                "give either \"circuit\" or \"bench\", not both".into(),
            ))
        }
        (Some(spec), None) => {
            let spec = spec
                .as_str()
                .ok_or_else(|| ApiError("\"circuit\" must be a string".into()))?;
            parse_circuit_spec(spec)?
        }
        (None, Some(bench)) => {
            let text = bench
                .as_str()
                .ok_or_else(|| ApiError("\"bench\" must be a string".into()))?;
            let name = match value.get("name") {
                None => "inline".to_owned(),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| ApiError("\"name\" must be a string".into()))?
                    .to_owned(),
            };
            CircuitSpec::Bench {
                name,
                text: text.to_owned(),
            }
        }
        (None, None) => {
            return Err(ApiError(
                "missing circuit: give \"circuit\": \"sample:c17\" or inline \"bench\" text".into(),
            ))
        }
    };

    let seed = match value.get("seed") {
        None => 1,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ApiError("\"seed\" must be a non-negative integer".into()))?,
    };
    let detach = match value.get("detach") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ApiError("\"detach\" must be a boolean".into()))?,
    };
    let config = match value.get("config") {
        None => AnalysisConfig::default(),
        Some(v) => parse_config(v)?,
    };
    let trace = match value.get("trace") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let s = v.as_str().ok_or_else(|| {
                ApiError("\"trace\" must be \"phases\", \"nodes\" or \"kernels\"".into())
            })?;
            Some(parse_trace_level(s)?)
        }
    };

    Ok(AnalyzeRequest {
        circuit,
        seed,
        config,
        detach,
        trace,
    })
}

/// Parses a span-trace detail level name.
///
/// # Errors
///
/// [`ApiError`] on an unknown level name.
pub fn parse_trace_level(s: &str) -> Result<TraceLevel, ApiError> {
    match s {
        "phases" => Ok(TraceLevel::Phases),
        "nodes" => Ok(TraceLevel::Nodes),
        "kernels" => Ok(TraceLevel::Kernels),
        other => Err(ApiError(format!(
            "unknown trace level {other:?} (have: phases, nodes, kernels)"
        ))),
    }
}

/// Parses a `prefix:name` circuit spec string.
///
/// # Errors
///
/// [`ApiError`] on an unknown prefix or unknown sample/profile name.
pub fn parse_circuit_spec(spec: &str) -> Result<CircuitSpec, ApiError> {
    if let Some(name) = spec.strip_prefix("sample:") {
        if !matches!(name, "c17" | "mux2" | "fig6") {
            return Err(ApiError(format!(
                "unknown sample {name:?} (have: c17, mux2, fig6)"
            )));
        }
        return Ok(CircuitSpec::Sample(name.to_owned()));
    }
    if let Some(name) = spec.strip_prefix("profile:") {
        if profile_by_name(name).is_none() {
            let names: Vec<&str> = pep_netlist::generate::IscasProfile::all()
                .iter()
                .map(|p| p.name())
                .collect();
            return Err(ApiError(format!(
                "unknown profile {name:?} (have: {})",
                names.join(", ")
            )));
        }
        return Ok(CircuitSpec::Profile(name.to_owned()));
    }
    Err(ApiError(format!(
        "bad circuit spec {spec:?}: expected \"sample:<name>\" or \"profile:<name>\" \
         (file paths are not served; send inline \"bench\" text instead)"
    )))
}

/// Looks up an ISCAS profile by its canonical name.
pub fn profile_by_name(name: &str) -> Option<pep_netlist::generate::IscasProfile> {
    pep_netlist::generate::IscasProfile::all()
        .into_iter()
        .find(|p| p.name() == name)
}

/// Materializes the netlist a spec describes.
///
/// # Errors
///
/// [`ApiError`] when inline `.bench` text fails to parse. Sample and
/// profile names were validated at request-parse time.
pub fn build_netlist(spec: &CircuitSpec) -> Result<Netlist, ApiError> {
    match spec {
        CircuitSpec::Sample(name) => Ok(match name.as_str() {
            "c17" => pep_netlist::samples::c17(),
            "mux2" => pep_netlist::samples::mux2(),
            _ => pep_netlist::samples::fig6(),
        }),
        CircuitSpec::Profile(name) => {
            let profile = profile_by_name(name)
                .ok_or_else(|| ApiError(format!("unknown profile {name:?}")))?;
            Ok(pep_netlist::generate::iscas_profile(profile))
        }
        CircuitSpec::Bench { name, text } => pep_netlist::parse_bench(name, text)
            .map_err(|e| ApiError(format!("bad .bench text: {e}"))),
    }
}

/// Overlays a (partial) JSON config object onto
/// [`AnalysisConfig::default`], rejecting unknown fields.
fn parse_config(value: &Value) -> Result<AnalysisConfig, ApiError> {
    let map = value
        .as_map()
        .ok_or_else(|| ApiError("\"config\" must be a JSON object".into()))?;
    const KNOWN: &[&str] = &[
        "samples",
        "min_event_prob",
        "supergate_depth",
        "max_effective_stems",
        "max_conditioning_events",
        "conditioning_resolution",
        "filter_stems",
        "threads",
        "mode",
        "budget",
    ];
    for (key, _) in map {
        if !KNOWN.contains(&key.as_str()) {
            return Err(ApiError(format!(
                "unknown config field {key:?} (known: {})",
                KNOWN.join(", ")
            )));
        }
    }
    let mut config = AnalysisConfig::default();
    if let Some(v) = value.get("samples") {
        config.samples = usize_field(v, "config.samples")?;
    }
    if let Some(v) = value.get("min_event_prob") {
        let p = v
            .as_f64()
            .ok_or_else(|| ApiError("config.min_event_prob must be a number".into()))?;
        if !(0.0..1.0).contains(&p) {
            return Err(ApiError(format!(
                "config.min_event_prob must be in [0, 1), got {p}"
            )));
        }
        config.min_event_prob = p;
    }
    if let Some(v) = value.get("supergate_depth") {
        config.supergate_depth = opt_field(v, "config.supergate_depth")?
            .map(|d: u64| u32::try_from(d).unwrap_or(u32::MAX));
    }
    if let Some(v) = value.get("max_effective_stems") {
        config.max_effective_stems = opt_usize_field(v, "config.max_effective_stems")?;
    }
    if let Some(v) = value.get("max_conditioning_events") {
        config.max_conditioning_events = opt_usize_field(v, "config.max_conditioning_events")?;
    }
    if let Some(v) = value.get("conditioning_resolution") {
        config.conditioning_resolution = opt_usize_field(v, "config.conditioning_resolution")?;
    }
    if let Some(v) = value.get("filter_stems") {
        config.filter_stems = v
            .as_bool()
            .ok_or_else(|| ApiError("config.filter_stems must be a boolean".into()))?;
    }
    if let Some(v) = value.get("threads") {
        config.threads = usize_field(v, "config.threads")?;
    }
    if let Some(v) = value.get("mode") {
        let mode = v
            .as_str()
            .ok_or_else(|| ApiError("config.mode must be a string".into()))?;
        config.mode = match mode {
            "latest" | "Latest" => CombineMode::Latest,
            "earliest" | "Earliest" => CombineMode::Earliest,
            other => {
                return Err(ApiError(format!(
                    "config.mode must be \"latest\" or \"earliest\", got {other:?}"
                )))
            }
        };
    }
    if let Some(v) = value.get("budget") {
        config.budget = parse_budget(v)?;
    }
    Ok(config)
}

fn parse_budget(value: &Value) -> Result<Option<Budget>, ApiError> {
    if matches!(value, Value::Null) {
        return Ok(None);
    }
    let map = value
        .as_map()
        .ok_or_else(|| ApiError("config.budget must be a JSON object or null".into()))?;
    const KNOWN: &[&str] = &[
        "deadline_ms",
        "max_combinations",
        "max_event_bytes",
        "max_stems_per_supergate",
        "fail_fast",
    ];
    for (key, _) in map {
        if !KNOWN.contains(&key.as_str()) {
            return Err(ApiError(format!(
                "unknown budget field {key:?} (known: {})",
                KNOWN.join(", ")
            )));
        }
    }
    let mut budget = Budget::default();
    if let Some(v) = value.get("deadline_ms") {
        budget.deadline_ms = opt_field(v, "budget.deadline_ms")?;
    }
    if let Some(v) = value.get("max_combinations") {
        budget.max_combinations = opt_field(v, "budget.max_combinations")?;
    }
    if let Some(v) = value.get("max_event_bytes") {
        budget.max_event_bytes = opt_usize_field(v, "budget.max_event_bytes")?;
    }
    if let Some(v) = value.get("max_stems_per_supergate") {
        budget.max_stems_per_supergate = opt_usize_field(v, "budget.max_stems_per_supergate")?;
    }
    if let Some(v) = value.get("fail_fast") {
        budget.fail_fast = v
            .as_bool()
            .ok_or_else(|| ApiError("budget.fail_fast must be a boolean".into()))?;
    }
    Ok(Some(budget))
}

fn usize_field(v: &Value, what: &str) -> Result<usize, ApiError> {
    let n = v
        .as_u64()
        .ok_or_else(|| ApiError(format!("{what} must be a non-negative integer")))?;
    usize::try_from(n).map_err(|_| ApiError(format!("{what} is out of range")))
}

fn opt_usize_field(v: &Value, what: &str) -> Result<Option<usize>, ApiError> {
    match v {
        Value::Null => Ok(None),
        _ => usize_field(v, what).map(Some),
    }
}

fn opt_field(v: &Value, what: &str) -> Result<Option<u64>, ApiError> {
    match v {
        Value::Null => Ok(None),
        _ => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ApiError(format!("{what} must be a non-negative integer or null"))),
    }
}

/// Arrival-time summary of one primary output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputStat {
    /// Output node name.
    pub name: String,
    /// Mean arrival time.
    pub mean: f64,
    /// Standard deviation of the arrival time.
    pub std: f64,
    /// 99th-percentile arrival time (0 when the distribution is empty).
    pub q99: f64,
}

/// The completed-job payload returned by `POST /analyze` and
/// `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Circuit display name.
    pub circuit: String,
    /// Node count of the analyzed netlist.
    pub nodes: u64,
    /// Supergates the analysis extracted.
    pub supergates: u64,
    /// Stems actually conditioned on.
    pub stems_conditioned: u64,
    /// Per-primary-output arrival statistics.
    pub outputs: Vec<OutputStat>,
    /// FNV-1a digest over every node's full arrival distribution —
    /// bit-identical runs produce identical digests, so determinism is
    /// checkable without shipping every group over the wire.
    pub groups_digest: String,
    /// Structured degradation warnings, in emission order.
    pub warnings: Vec<Warning>,
    /// The warnings aggregated by (code, knob).
    pub warning_groups: Vec<WarningGroup>,
    /// Wall-clock job time in milliseconds.
    pub elapsed_ms: u64,
}

/// Builds the response payload from a finished analysis.
pub fn job_result(
    spec: &CircuitSpec,
    netlist: &Netlist,
    analysis: &PepAnalysis,
    elapsed_ms: u64,
) -> JobResult {
    let outputs = netlist
        .primary_outputs()
        .iter()
        .map(|&po| OutputStat {
            name: netlist.node_name(po).to_owned(),
            mean: analysis.mean_time(po),
            std: analysis.std_time(po),
            q99: analysis.quantile_time(po, 0.99).unwrap_or(0.0),
        })
        .collect();
    let warnings = analysis.warnings().to_vec();
    let warning_groups = pep_obs::aggregate_warnings(&warnings);
    JobResult {
        circuit: spec.display_name().to_owned(),
        nodes: netlist.node_count() as u64,
        supergates: analysis.stats().supergates as u64,
        stems_conditioned: analysis.stats().stems_conditioned as u64,
        outputs,
        groups_digest: format!("{:016x}", groups_digest(netlist, analysis)),
        warnings,
        warning_groups,
        elapsed_ms,
    }
}

/// FNV-1a over every node's full distribution (tick and exact
/// probability bits, in node order). Two analyses digest equal iff
/// their groups are bit-identical.
pub fn groups_digest(netlist: &Netlist, analysis: &PepAnalysis) -> u64 {
    let mut hash = crate::cache::FNV_OFFSET;
    for id in netlist.node_ids() {
        hash = crate::cache::fnv1a_extend(hash, &(id.index() as u64).to_le_bytes());
        for (tick, prob) in analysis.group(id).iter() {
            hash = crate::cache::fnv1a_extend(hash, &tick.to_le_bytes());
            hash = crate::cache::fnv1a_extend(hash, &prob.to_bits().to_le_bytes());
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_defaults() {
        let req = parse_analyze_request(r#"{"circuit": "sample:c17"}"#).unwrap();
        assert_eq!(req.circuit, CircuitSpec::Sample("c17".into()));
        assert_eq!(req.seed, 1);
        assert!(!req.detach);
        assert_eq!(req.config.samples, AnalysisConfig::default().samples);
    }

    #[test]
    fn partial_config_overlays_defaults() {
        let req = parse_analyze_request(
            r#"{"circuit": "sample:fig6", "seed": 9,
                "config": {"threads": 4, "mode": "earliest",
                           "budget": {"deadline_ms": 250, "fail_fast": true}}}"#,
        )
        .unwrap();
        assert_eq!(req.seed, 9);
        assert_eq!(req.config.threads, 4);
        assert_eq!(req.config.mode, CombineMode::Earliest);
        let b = req.config.budget.expect("budget set");
        assert_eq!(b.deadline_ms, Some(250));
        assert!(b.fail_fast);
        // Untouched knobs keep their defaults.
        assert_eq!(
            req.config.supergate_depth,
            AnalysisConfig::default().supergate_depth
        );
    }

    #[test]
    fn trace_field_selects_a_level_or_rejects() {
        let req = parse_analyze_request(r#"{"circuit": "sample:c17"}"#).unwrap();
        assert_eq!(req.trace, None);
        for (name, level) in [
            ("phases", TraceLevel::Phases),
            ("nodes", TraceLevel::Nodes),
            ("kernels", TraceLevel::Kernels),
        ] {
            let body = format!(r#"{{"circuit": "sample:c17", "trace": "{name}"}}"#);
            assert_eq!(parse_analyze_request(&body).unwrap().trace, Some(level));
        }
        for body in [
            r#"{"circuit": "sample:c17", "trace": "everything"}"#,
            r#"{"circuit": "sample:c17", "trace": true}"#,
        ] {
            assert!(parse_analyze_request(body).is_err(), "accepted: {body}");
        }
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        for body in [
            r#"{"circuit": "sample:c17", "tweaks": 1}"#,
            r#"{"circuit": "sample:c17", "config": {"smples": 10}}"#,
            r#"{"circuit": "sample:c17", "config": {"budget": {"deadlin": 5}}}"#,
        ] {
            let err = parse_analyze_request(body).unwrap_err();
            assert!(err.0.contains("unknown"), "{body} → {err}");
        }
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for body in [
            r#"{}"#,
            r#"{"circuit": "sample:c99"}"#,
            r#"{"circuit": "profile:s1"}"#,
            r#"{"circuit": "/etc/passwd"}"#,
            r#"{"circuit": "sample:c17", "bench": "x"}"#,
            r#"{"circuit": 7}"#,
            r#"not json"#,
            r#"[1,2,3]"#,
            r#"{"circuit": "sample:c17", "config": {"min_event_prob": 2.0}}"#,
        ] {
            assert!(parse_analyze_request(body).is_err(), "accepted: {body}");
        }
    }

    #[test]
    fn inline_bench_is_parsed() {
        let req = parse_analyze_request(
            r#"{"bench": "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "name": "tiny"}"#,
        )
        .unwrap();
        let nl = build_netlist(&req.circuit).unwrap();
        assert_eq!(nl.name(), "tiny");
        assert_eq!(nl.gate_count(), 1);
        // Malformed text is a typed error, not a panic.
        assert!(build_netlist(&CircuitSpec::Bench {
            name: "bad".into(),
            text: "y = AND(a,".into()
        })
        .is_err());
    }

    #[test]
    fn job_result_round_trips_and_digests_deterministically() {
        use pep_celllib::{DelayModel, Timing};
        let nl = pep_netlist::samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let spec = CircuitSpec::Sample("c17".into());
        let a = pep_core::analyze(&nl, &t, &AnalysisConfig::default());
        let b = pep_core::analyze(&nl, &t, &AnalysisConfig::default());
        let ra = job_result(&spec, &nl, &a, 12);
        let rb = job_result(&spec, &nl, &b, 12);
        assert_eq!(ra.groups_digest, rb.groups_digest);
        assert_eq!(ra.groups_digest.len(), 16);
        assert!(!ra.outputs.is_empty());
        let text = serde::json::to_string(&ra);
        let back: JobResult = serde::json::from_str_as(&text).unwrap();
        assert_eq!(back, ra);
        // A different seed digests differently.
        let t2 = Timing::annotate(&nl, &DelayModel::dac2001(2));
        let c = pep_core::analyze(&nl, &t2, &AnalysisConfig::default());
        assert_ne!(
            job_result(&spec, &nl, &c, 0).groups_digest,
            ra.groups_digest
        );
    }
}
