//! Content-addressed circuit cache.
//!
//! Re-analyzing the same netlist with different knobs is the common
//! service workload, and parsing/annotating a 19k-gate profile dwarfs
//! many analyses. The cache keys on an FNV-1a hash of everything that
//! determines the parsed-and-annotated circuit — the spec text and the
//! delay seed — and holds `Arc`s so concurrent jobs share one parsed
//! copy. Eviction is FIFO with a fixed entry cap: deterministic, and
//! good enough for a cache whose entries are all cheap to rebuild.

use crate::api::{build_netlist, ApiError, CircuitSpec};
use pep_celllib::{DelayModel, Timing};
use pep_netlist::Netlist;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extends an FNV-1a hash with more bytes.
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a 64-bit of a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// A parsed-and-annotated circuit, shared between concurrent jobs.
#[derive(Debug)]
pub struct CachedCircuit {
    /// The validated netlist.
    pub netlist: Netlist,
    /// Its annotated timing.
    pub timing: Timing,
    /// The content-hash key this entry lives under.
    pub key: u64,
}

/// The bounded, content-addressed circuit cache.
#[derive(Debug)]
pub struct CircuitCache {
    entries: Mutex<Entries>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct Entries {
    map: HashMap<u64, Arc<CachedCircuit>>,
    order: VecDeque<u64>,
}

impl CircuitCache {
    /// A cache holding at most `capacity` circuits (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CircuitCache {
            entries: Mutex::new(Entries::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. parses) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache key for a (spec, seed) pair.
    pub fn key_for(spec: &CircuitSpec, seed: u64) -> u64 {
        let mut hash = fnv1a64(spec.cache_text().as_bytes());
        hash = fnv1a_extend(hash, &seed.to_le_bytes());
        hash
    }

    /// Returns the cached circuit for `(spec, seed)`, parsing and
    /// annotating on a miss.
    ///
    /// The parse runs *outside* the cache lock, so a slow parse never
    /// blocks concurrent lookups; two simultaneous misses on the same
    /// key both parse and one insert wins (harmless — the results are
    /// deterministic and equal).
    ///
    /// # Errors
    ///
    /// [`ApiError`] when inline `.bench` text fails to parse.
    pub fn get_or_parse(
        &self,
        spec: &CircuitSpec,
        seed: u64,
    ) -> Result<Arc<CachedCircuit>, ApiError> {
        let key = Self::key_for(spec, seed);
        if let Some(found) = self.entries.lock().expect("cache lock").map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let netlist = build_netlist(spec)?;
        let timing = Timing::annotate(&netlist, &DelayModel::dac2001(seed));
        let entry = Arc::new(CachedCircuit {
            netlist,
            timing,
            key,
        });
        let mut entries = self.entries.lock().expect("cache lock");
        if !entries.map.contains_key(&key) {
            while entries.map.len() >= self.capacity {
                match entries.order.pop_front() {
                    Some(oldest) => {
                        entries.map.remove(&oldest);
                    }
                    None => break,
                }
            }
            entries.map.insert(key, Arc::clone(&entry));
            entries.order.push_back(key);
        }
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_shares_the_same_parse() {
        let cache = CircuitCache::new(4);
        let spec = CircuitSpec::Sample("c17".into());
        let a = cache.get_or_parse(&spec, 1).unwrap();
        let b = cache.get_or_parse(&spec, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // A different seed is a different circuit.
        let c = cache.get_or_parse(&spec, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = CircuitCache::new(2);
        let spec = CircuitSpec::Sample("c17".into());
        for seed in 0..5 {
            cache.get_or_parse(&spec, seed).unwrap();
            assert!(cache.len() <= 2);
        }
        // Seed 0 was evicted long ago → re-parsing is a miss.
        let before = cache.misses();
        cache.get_or_parse(&spec, 0).unwrap();
        assert_eq!(cache.misses(), before + 1);
        // Most recent seed is still cached.
        let before = cache.hits();
        cache.get_or_parse(&spec, 4).unwrap();
        assert_eq!(cache.hits(), before + 1);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = CircuitCache::new(2);
        let bad = CircuitSpec::Bench {
            name: "bad".into(),
            text: "y = AND(".into(),
        };
        assert!(cache.get_or_parse(&bad, 1).is_err());
        assert!(cache.is_empty());
    }
}
