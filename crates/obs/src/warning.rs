//! Structured degradation warnings.
//!
//! When the analysis engine trips a resource budget it does not abort —
//! it degrades along the paper's own approximation knobs (drop
//! threshold, effective stems, conditioning resolution, topological
//! fallback) and records what it did as a [`Warning`]. Warnings are
//! collected by the [`crate::Session`] in emission order and exported in
//! the [`crate::RunReport`], so a budgeted run's accuracy impact is
//! machine-readable, not folded silently into the numbers.

use serde::{Deserialize, Serialize};

/// One structured degradation or recovery notice.
///
/// Every field is a plain string so the type serializes through the
/// vendored serde derive and stays stable as new degradation kinds are
/// added; `code` is the machine-matchable discriminant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Warning {
    /// Machine-readable code, dotted (`budget.combinations`,
    /// `budget.deadline`, `budget.memory`, `budget.stems`,
    /// `recover.degenerate`, `recover.worker_panic`, `mc.deadline`, …).
    pub code: String,
    /// What was affected: a supergate output name, a node name, or a
    /// pipeline phase.
    pub subject: String,
    /// The configuration knob the engine changed in response
    /// (`conditioning_resolution`, `max_effective_stems`,
    /// `topological_fallback`, `min_event_prob`, `runs`, …).
    pub knob: String,
    /// Human-readable detail: old/new values, the limit that tripped.
    pub detail: String,
    /// Estimated accuracy impact of the degradation, as prose
    /// (`"coarser event grid; correlations preserved"`,
    /// `"stem correlation ignored for this region"`, …).
    pub impact: String,
}

impl Warning {
    /// Convenience constructor from anything stringy.
    pub fn new(
        code: impl Into<String>,
        subject: impl Into<String>,
        knob: impl Into<String>,
        detail: impl Into<String>,
        impact: impl Into<String>,
    ) -> Self {
        Warning {
            code: code.into(),
            subject: subject.into(),
            knob: knob.into(),
            detail: detail.into(),
            impact: impact.into(),
        }
    }
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} ({}; impact: {})",
            self.code, self.subject, self.knob, self.detail, self.impact
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_fields() {
        let w = Warning::new(
            "budget.combinations",
            "sg:n1042",
            "conditioning_resolution",
            "coarsen 1 -> 4 (est. 4096 > cap 256)",
            "coarser event grid; correlations preserved",
        );
        let text = w.to_string();
        for part in [
            "budget.combinations",
            "sg:n1042",
            "conditioning_resolution",
            "4096 > cap 256",
            "correlations preserved",
        ] {
            assert!(text.contains(part), "missing {part} in {text}");
        }
    }

    #[test]
    fn json_round_trip() {
        let w = Warning::new("a", "b", "c", "d", "e");
        let text = serde::json::to_string(&w);
        let back: Warning = serde::json::from_str_as(&text).unwrap();
        assert_eq!(back, w);
    }
}
