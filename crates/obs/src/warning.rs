//! Structured degradation warnings.
//!
//! When the analysis engine trips a resource budget it does not abort —
//! it degrades along the paper's own approximation knobs (drop
//! threshold, effective stems, conditioning resolution, topological
//! fallback) and records what it did as a [`Warning`]. Warnings are
//! collected by the [`crate::Session`] in emission order and exported in
//! the [`crate::RunReport`], so a budgeted run's accuracy impact is
//! machine-readable, not folded silently into the numbers.

use serde::{Deserialize, Serialize};

/// One structured degradation or recovery notice.
///
/// Every field is a plain string so the type serializes through the
/// vendored serde derive and stays stable as new degradation kinds are
/// added; `code` is the machine-matchable discriminant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Warning {
    /// Machine-readable code, dotted (`budget.combinations`,
    /// `budget.deadline`, `budget.memory`, `budget.stems`,
    /// `recover.degenerate`, `recover.worker_panic`, `mc.deadline`, …).
    pub code: String,
    /// What was affected: a supergate output name, a node name, or a
    /// pipeline phase.
    pub subject: String,
    /// The configuration knob the engine changed in response
    /// (`conditioning_resolution`, `max_effective_stems`,
    /// `topological_fallback`, `min_event_prob`, `runs`, …).
    pub knob: String,
    /// Human-readable detail: old/new values, the limit that tripped.
    pub detail: String,
    /// Estimated accuracy impact of the degradation, as prose
    /// (`"coarser event grid; correlations preserved"`,
    /// `"stem correlation ignored for this region"`, …).
    pub impact: String,
}

impl Warning {
    /// Convenience constructor from anything stringy.
    pub fn new(
        code: impl Into<String>,
        subject: impl Into<String>,
        knob: impl Into<String>,
        detail: impl Into<String>,
        impact: impl Into<String>,
    ) -> Self {
        Warning {
            code: code.into(),
            subject: subject.into(),
            knob: knob.into(),
            detail: detail.into(),
            impact: impact.into(),
        }
    }
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} ({}; impact: {})",
            self.code, self.subject, self.knob, self.detail, self.impact
        )
    }
}

/// A run of same-`code`/same-`knob` warnings collapsed into one entry.
///
/// A hostile or deadline-starved run can emit thousands of identical
/// degradation warnings (one per affected supergate); the aggregated
/// form keeps reports readable while preserving the count and the
/// first/last affected subject. The full list stays available in the
/// [`crate::RunReport`] JSON and behind verbose rendering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarningGroup {
    /// The shared machine-readable code.
    pub code: String,
    /// The shared knob.
    pub knob: String,
    /// How many warnings collapsed into this entry.
    pub count: u64,
    /// Subject of the first collapsed warning (emission order).
    pub first_subject: String,
    /// Subject of the last collapsed warning.
    pub last_subject: String,
    /// Detail of the first collapsed warning (representative).
    pub detail: String,
    /// Impact of the first collapsed warning (representative).
    pub impact: String,
}

impl std::fmt::Display for WarningGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count == 1 {
            write!(
                f,
                "[{}] {}: {} ({}; impact: {})",
                self.code, self.first_subject, self.knob, self.detail, self.impact
            )
        } else {
            write!(
                f,
                "[{}] ×{} {}: first {}, last {} ({}; impact: {})",
                self.code,
                self.count,
                self.knob,
                self.first_subject,
                self.last_subject,
                self.detail,
                self.impact
            )
        }
    }
}

/// Collapses warnings into [`WarningGroup`]s keyed by `(code, knob)`,
/// in first-emission order. Deterministic: the same warning list always
/// aggregates identically.
pub fn aggregate(warnings: &[Warning]) -> Vec<WarningGroup> {
    let mut groups: Vec<WarningGroup> = Vec::new();
    for w in warnings {
        if let Some(g) = groups
            .iter_mut()
            .find(|g| g.code == w.code && g.knob == w.knob)
        {
            g.count += 1;
            g.last_subject.clone_from(&w.subject);
        } else {
            groups.push(WarningGroup {
                code: w.code.clone(),
                knob: w.knob.clone(),
                count: 1,
                first_subject: w.subject.clone(),
                last_subject: w.subject.clone(),
                detail: w.detail.clone(),
                impact: w.impact.clone(),
            });
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_fields() {
        let w = Warning::new(
            "budget.combinations",
            "sg:n1042",
            "conditioning_resolution",
            "coarsen 1 -> 4 (est. 4096 > cap 256)",
            "coarser event grid; correlations preserved",
        );
        let text = w.to_string();
        for part in [
            "budget.combinations",
            "sg:n1042",
            "conditioning_resolution",
            "4096 > cap 256",
            "correlations preserved",
        ] {
            assert!(text.contains(part), "missing {part} in {text}");
        }
    }

    #[test]
    fn json_round_trip() {
        let w = Warning::new("a", "b", "c", "d", "e");
        let text = serde::json::to_string(&w);
        let back: Warning = serde::json::from_str_as(&text).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn aggregation_collapses_by_code_and_knob() {
        let warnings = vec![
            Warning::new("budget.deadline", "sg:n1", "conditioning", "d1", "i"),
            Warning::new("budget.deadline", "sg:n2", "conditioning", "d2", "i"),
            Warning::new("budget.memory", "wave:3", "min_event_prob", "m", "i"),
            Warning::new("budget.deadline", "sg:n9", "conditioning", "d9", "i"),
        ];
        let groups = aggregate(&warnings);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].code, "budget.deadline");
        assert_eq!(groups[0].count, 3);
        assert_eq!(groups[0].first_subject, "sg:n1");
        assert_eq!(groups[0].last_subject, "sg:n9");
        assert_eq!(groups[0].detail, "d1", "first detail is representative");
        assert_eq!(groups[1].count, 1);
        let text = groups[0].to_string();
        assert!(text.contains("×3"), "count shown: {text}");
        assert!(text.contains("sg:n1") && text.contains("sg:n9"));
        // Singleton groups render like the plain warning.
        assert!(groups[1].to_string().contains("wave:3"));
        assert!(!groups[1].to_string().contains('×'));
    }

    #[test]
    fn warning_group_round_trips_through_json() {
        let g = aggregate(&[
            Warning::new("a", "s1", "k", "d", "i"),
            Warning::new("a", "s2", "k", "d", "i"),
        ])
        .remove(0);
        let text = serde::json::to_string(&g);
        let back: WarningGroup = serde::json::from_str_as(&text).unwrap();
        assert_eq!(back, g);
    }
}
