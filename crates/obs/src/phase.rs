//! Hierarchical wall-clock phase timing.
//!
//! A [`PhaseTree`] records nested spans (`parse` → `propagate` →
//! `sampling-eval` …). Spans with the same name under the same parent
//! merge: their durations add and their invocation count increments, so
//! timing a phase inside a loop (one `sampling-eval` guard per
//! supergate) yields one aggregate span instead of thousands of nodes.
//!
//! The tree is driven through [`crate::Session::phase`], which returns a
//! scope guard; the span closes when the guard drops. Spans track one
//! logical stack, so open phases from the *orchestration* thread only —
//! worker threads should record counters/histograms instead.

use std::time::Duration;

/// One aggregated span in the phase tree.
#[derive(Debug, Clone)]
struct SpanNode {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    total: Duration,
    count: u64,
}

/// An arena-allocated tree of aggregated phase spans.
#[derive(Debug, Default)]
pub struct PhaseTree {
    spans: Vec<SpanNode>,
    stack: Vec<usize>,
}

impl PhaseTree {
    /// Opens a span named `name` under the currently open span, merging
    /// with an existing same-named sibling. Returns the span's index,
    /// which [`close`](PhaseTree::close) takes back.
    pub fn open(&mut self, name: &str) -> usize {
        let parent = self.stack.last().copied();
        let existing = match parent {
            Some(p) => self.spans[p]
                .children
                .iter()
                .copied()
                .find(|&i| self.spans[i].name == name),
            None => (0..self.spans.len())
                .find(|&i| self.spans[i].parent.is_none() && self.spans[i].name == name),
        };
        let index = existing.unwrap_or_else(|| {
            let index = self.spans.len();
            self.spans.push(SpanNode {
                name: name.to_owned(),
                parent,
                children: Vec::new(),
                total: Duration::ZERO,
                count: 0,
            });
            if let Some(p) = parent {
                self.spans[p].children.push(index);
            }
            index
        });
        self.stack.push(index);
        index
    }

    /// Closes the span `index` with the measured `elapsed`. Any spans
    /// left open above it (a guard leaked or dropped out of order) are
    /// closed with zero additional time.
    pub fn close(&mut self, index: usize, elapsed: Duration) {
        while let Some(top) = self.stack.pop() {
            if top == index {
                break;
            }
        }
        let span = &mut self.spans[index];
        span.total += elapsed;
        span.count += 1;
    }

    // Root spans are the ones without a parent; computed on demand so the
    // arena stays append-only.
    fn roots_scratch(&self) -> Vec<usize> {
        (0..self.spans.len())
            .filter(|&i| self.spans[i].parent.is_none())
            .collect()
    }

    /// Total recorded time across every span named `name`, if any
    /// closed.
    pub fn total_of(&self, name: &str) -> Option<Duration> {
        let mut found = false;
        let mut total = Duration::ZERO;
        for span in &self.spans {
            if span.name == name && span.count > 0 {
                found = true;
                total += span.total;
            }
        }
        found.then_some(total)
    }

    /// The tree as serializable [`crate::report::PhaseReport`] nodes
    /// (roots in first-open order).
    pub fn to_reports(&self) -> Vec<crate::report::PhaseReport> {
        self.roots_scratch()
            .into_iter()
            .map(|i| self.report_of(i))
            .collect()
    }

    fn report_of(&self, index: usize) -> crate::report::PhaseReport {
        let span = &self.spans[index];
        crate::report::PhaseReport {
            name: span.name.clone(),
            wall_seconds: span.total.as_secs_f64(),
            count: span.count,
            children: span.children.iter().map(|&c| self.report_of(c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_ordering_preserved() {
        let mut t = PhaseTree::default();
        let parse = t.open("parse");
        t.close(parse, Duration::from_millis(5));
        let prop = t.open("propagate");
        let inner = t.open("sampling-eval");
        t.close(inner, Duration::from_millis(2));
        t.close(prop, Duration::from_millis(10));

        let reports = t.to_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "parse");
        assert_eq!(reports[1].name, "propagate");
        assert_eq!(reports[1].children.len(), 1);
        assert_eq!(reports[1].children[0].name, "sampling-eval");
        assert!(reports[1].wall_seconds >= reports[1].children[0].wall_seconds);
    }

    #[test]
    fn same_named_siblings_merge() {
        let mut t = PhaseTree::default();
        let prop = t.open("propagate");
        for _ in 0..100 {
            let s = t.open("sampling-eval");
            t.close(s, Duration::from_micros(10));
        }
        t.close(prop, Duration::from_millis(1));
        let reports = t.to_reports();
        assert_eq!(reports[0].children.len(), 1, "merged into one span");
        assert_eq!(reports[0].children[0].count, 100);
        assert_eq!(
            reports[0].children[0].wall_seconds,
            Duration::from_millis(1).as_secs_f64()
        );
    }

    #[test]
    fn same_name_under_different_parents_stays_separate() {
        let mut t = PhaseTree::default();
        let a = t.open("pep");
        let ia = t.open("eval");
        t.close(ia, Duration::from_millis(1));
        t.close(a, Duration::from_millis(1));
        let b = t.open("mc");
        let ib = t.open("eval");
        t.close(ib, Duration::from_millis(2));
        t.close(b, Duration::from_millis(2));
        let reports = t.to_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].children[0].name, "eval");
        assert_eq!(reports[1].children[0].name, "eval");
        assert_eq!(
            t.total_of("eval"),
            Some(Duration::from_millis(3)),
            "total_of sums across parents"
        );
    }

    #[test]
    fn out_of_order_close_recovers() {
        let mut t = PhaseTree::default();
        let outer = t.open("outer");
        let _leaked = t.open("leaked");
        t.close(outer, Duration::from_millis(1));
        // The stack is clean again: the next span is a root.
        let next = t.open("next");
        t.close(next, Duration::from_millis(1));
        let reports = t.to_reports();
        assert_eq!(reports.last().unwrap().name, "next");
        assert!(reports.last().unwrap().children.is_empty());
    }

    #[test]
    fn total_of_missing_phase_is_none() {
        let t = PhaseTree::default();
        assert_eq!(t.total_of("ghost"), None);
    }
}
