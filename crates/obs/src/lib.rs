//! Observability for the probabilistic-event-propagation pipeline:
//! phase-level tracing, a metrics registry, and machine-readable run
//! reports.
//!
//! The central type is [`Session`] — a cheaply clonable handle threaded
//! through the analysis layers. Code under observation does three
//! things:
//!
//! * open **phases** ([`Session::phase`]) around pipeline stages
//!   (`parse`, `arc-pmf-build`, `levelize`, `propagate`,
//!   `supergate-extract`, `sampling-eval`, `mc-baseline`, …); spans
//!   nest, and same-named spans under the same parent merge, so a phase
//!   timed inside a loop aggregates instead of exploding,
//! * bump **metrics** (counters / float counters / gauges /
//!   histograms) resolved once by dotted name (`pep.supergates`,
//!   `mc.runs_completed`) and incremented lock-free on the hot path,
//! * export a [`RunReport`] ([`Session::report`]) — a serde-serializable
//!   snapshot with JSON (`--metrics-json`) and pretty-text renderings.
//!
//! The [`Session::disabled`] session makes all of this free: no
//! timestamps, no locks, detached histograms. Counter handles from a
//! disabled session still count (they are plain atomics), so statistics
//! computed from counter deltas — `pep_core`'s `AnalysisStats` — are
//! identical whether or not anyone is observing.
//!
//! Memory-discipline metrics live under `pep.alloc.*`:
//! `pep.alloc.checkouts` (counter) is the number of scratch-distribution
//! checkouts from the per-worker kernel arenas — a proxy for how many
//! heap allocations the allocating kernels *would* have performed — and
//! `pep.alloc.slab_high_water` (gauge) is the deepest any single
//! worker's arena got during the run. The checkout total is summed over
//! workers and does not depend on the thread count; the high-water mark,
//! like `pep.threads`, reflects the thread layout.
//!
//! ```
//! use pep_obs::Session;
//!
//! let obs = Session::new();
//! {
//!     let _phase = obs.phase("propagate");
//!     let nodes = obs.counter("pep.nodes_evaluated");
//!     for _ in 0..6 {
//!         nodes.inc();
//!     }
//! }
//! let report = obs.report("analyze");
//! assert_eq!(report.counters["pep.nodes_evaluated"], 6);
//! assert!(report.to_json_pretty().contains("propagate"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod phase;
pub mod report;
mod session;
pub mod trace;
pub mod warning;

pub use export::{
    chrome_trace_json, folded_stacks, render_self_time_table, self_time_table, PromWriter,
    SelfTimeRow,
};
pub use metrics::{
    log_bucket_index, log_bucket_upper_bound, Counter, FloatCounter, Gauge, Histogram,
    LogHistogram, LogHistogramSnapshot, MetricsRegistry, LOG_HISTOGRAM_BUCKETS,
};
pub use report::{HistogramSummary, PhaseReport, RunReport};
pub use session::{PhaseGuard, PhaseListener, Session};
pub use trace::{
    KernelAgg, KernelKind, SpanArgs, SpanRecord, SpanToken, Trace, TraceBuffer, TraceLevel,
};
pub use warning::{aggregate as aggregate_warnings, Warning, WarningGroup};
