//! The machine-readable run report: everything a [`crate::Session`]
//! observed, as one serde-serializable value with JSON and pretty-text
//! renderings.

use crate::warning::Warning;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One aggregated phase span (see [`crate::phase::PhaseTree`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name (`parse`, `propagate`, `sampling-eval`, …).
    pub name: String,
    /// Total wall-clock seconds across every invocation of this phase.
    pub wall_seconds: f64,
    /// Number of invocations merged into this span.
    pub count: u64,
    /// Phases opened while this one was open.
    pub children: Vec<PhaseReport>,
}

/// Summary statistics of one histogram metric.
///
/// Percentiles use the nearest-rank method on the recorded samples; an
/// empty histogram reports all-zero fields (never NaN, so the JSON
/// round-trips losslessly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Builds a summary from samples sorted ascending.
    pub fn from_sorted(sorted: &[f64]) -> Self {
        if sorted.is_empty() {
            return HistogramSummary {
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        let sum: f64 = sorted.iter().sum();
        let nearest_rank = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        HistogramSummary {
            count: sorted.len() as u64,
            sum,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sum / sorted.len() as f64,
            p50: nearest_rank(0.50),
            p90: nearest_rank(0.90),
            p99: nearest_rank(0.99),
        }
    }
}

/// Everything one observed run produced: the phase tree plus snapshots
/// of every registered metric. This is the `--metrics-json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Producing tool (`psta`, `repro_all`, …).
    pub tool: String,
    /// Tool version.
    pub version: String,
    /// The command or experiment that ran (`analyze`, `compare`, …).
    pub command: String,
    /// Root phase spans in first-open order.
    pub phases: Vec<PhaseReport>,
    /// Integer counters (monotonic event counts).
    pub counters: BTreeMap<String, u64>,
    /// Float-valued metrics: gauges and float counters.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Structured degradation warnings, in emission order.
    pub warnings: Vec<Warning>,
}

impl RunReport {
    /// Compact JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Pretty-printed JSON (the `--metrics-json` file format).
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on bad JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str_as(text)
    }

    /// Number of distinct phase names in the tree.
    pub fn phase_count(&self) -> usize {
        fn collect<'a>(nodes: &'a [PhaseReport], names: &mut Vec<&'a str>) {
            for n in nodes {
                if !names.contains(&n.name.as_str()) {
                    names.push(&n.name);
                }
                collect(&n.children, names);
            }
        }
        let mut names = Vec::new();
        collect(&self.phases, &mut names);
        names.len()
    }

    /// Number of distinct metric names across counters, gauges and
    /// histograms.
    pub fn metric_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Just the phase-timing tree (the `--timing` output): each span's
    /// total wall time, its share of its root span, and its call count.
    pub fn render_phases(&self) -> String {
        let mut out = String::new();
        if self.phases.is_empty() {
            return out;
        }
        out.push_str("phases:\n");
        for root in &self.phases {
            render_phase(&mut out, root, 1, root.wall_seconds);
        }
        out
    }

    /// Human-readable rendering: the phase tree (with percentages of the
    /// root phase) followed by metric tables. `verbose` adds the
    /// histogram summaries and the full (unaggregated) warning list.
    pub fn render_text(&self, verbose: bool) -> String {
        self.render_text_opts(verbose, verbose)
    }

    /// [`render_text`](RunReport::render_text) with the warning
    /// rendering controlled separately: `verbose_warnings` lists every
    /// warning in emission order; otherwise same-code/same-knob runs
    /// collapse into [`WarningGroup`](crate::WarningGroup) entries (a
    /// deadline-starved run can emit thousands of identical fallbacks).
    pub fn render_text_opts(&self, verbose: bool, verbose_warnings: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report: {} {} — {}",
            self.tool, self.version, self.command
        );
        out.push_str(&self.render_phases());
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<32} {value:.6}");
            }
        }
        if !self.warnings.is_empty() {
            out.push_str("warnings:\n");
            if verbose_warnings {
                for w in &self.warnings {
                    let _ = writeln!(out, "  {w}");
                }
            } else {
                let groups = crate::warning::aggregate(&self.warnings);
                for g in &groups {
                    let _ = writeln!(out, "  {g}");
                }
                if groups.len() < self.warnings.len() {
                    let _ = writeln!(
                        out,
                        "  ({} warnings in {} groups; --verbose-warnings lists all)",
                        self.warnings.len(),
                        groups.len()
                    );
                }
            }
        }
        if verbose && !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3} mean={:.3}",
                    h.count, h.min, h.p50, h.p90, h.p99, h.max, h.mean
                );
            }
        }
        out
    }
}

fn render_phase(out: &mut String, phase: &PhaseReport, depth: usize, root_seconds: f64) {
    let indent = "  ".repeat(depth);
    let pct = if root_seconds > 0.0 {
        phase.wall_seconds / root_seconds * 100.0
    } else {
        0.0
    };
    let calls = if phase.count > 1 {
        format!("  ({} calls)", phase.count)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{indent}{:<28} {:>10}  {pct:5.1}%{calls}",
        phase.name,
        format_seconds(phase.wall_seconds),
    );
    for child in &phase.children {
        render_phase(out, child, depth + 1, root_seconds);
    }
}

/// Formats seconds at a scale-appropriate unit.
pub fn format_seconds(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            tool: "psta".into(),
            version: "0.1.0".into(),
            command: "analyze".into(),
            phases: vec![PhaseReport {
                name: "analyze".into(),
                wall_seconds: 0.5,
                count: 1,
                children: vec![
                    PhaseReport {
                        name: "parse".into(),
                        wall_seconds: 0.1,
                        count: 1,
                        children: vec![],
                    },
                    PhaseReport {
                        name: "propagate".into(),
                        wall_seconds: 0.4,
                        count: 1,
                        children: vec![PhaseReport {
                            name: "sampling-eval".into(),
                            wall_seconds: 0.25,
                            count: 42,
                            children: vec![],
                        }],
                    },
                ],
            }],
            counters: BTreeMap::from([("pep.supergates".into(), 42u64)]),
            gauges: BTreeMap::from([("pep.dropped_mass".into(), 0.0125f64)]),
            histograms: BTreeMap::from([(
                "pep.group_size".into(),
                HistogramSummary::from_sorted(&[1.0, 2.0, 3.0, 4.0]),
            )]),
            warnings: vec![Warning::new(
                "budget.combinations",
                "sg:n7",
                "conditioning_resolution",
                "coarsen 1 -> 2",
                "coarser event grid",
            )],
        }
    }

    #[test]
    fn json_round_trip() {
        let report = sample_report();
        for text in [report.to_json(), report.to_json_pretty()] {
            let back = RunReport::from_json(&text).expect("parses");
            assert_eq!(back, report, "round-trip through {text}");
        }
    }

    #[test]
    fn counts_distinct_phases_and_metrics() {
        let report = sample_report();
        assert_eq!(report.phase_count(), 4);
        assert_eq!(report.metric_count(), 3);
    }

    #[test]
    fn renders_text_tree() {
        let text = sample_report().render_text(true);
        assert!(text.contains("analyze"));
        assert!(text.contains("sampling-eval"));
        assert!(text.contains("(42 calls)"));
        assert!(text.contains("pep.supergates"));
        assert!(text.contains("pep.group_size"));
        assert!(text.contains("warnings:"));
        assert!(text.contains("budget.combinations"));
        // Non-verbose rendering omits histograms.
        let brief = sample_report().render_text(false);
        assert!(!brief.contains("pep.group_size"));
    }

    #[test]
    fn repeated_warnings_collapse_unless_verbose() {
        let mut report = sample_report();
        report.warnings = (0..100)
            .map(|i| {
                Warning::new(
                    "budget.deadline",
                    format!("sg:n{i}"),
                    "conditioning",
                    "sampling-evaluation skipped",
                    "correlation ignored",
                )
            })
            .collect();
        let brief = report.render_text(false);
        assert!(brief.contains("×100"), "collapsed count shown: {brief}");
        assert!(brief.contains("sg:n0") && brief.contains("sg:n99"));
        assert!(brief.contains("100 warnings in 1 groups"));
        assert!(!brief.contains("sg:n50"), "interior subjects collapsed");
        let full = report.render_text_opts(false, true);
        assert!(full.contains("sg:n50"), "verbose-warnings lists all");
        // JSON always carries the full list.
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.warnings.len(), 100);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = HistogramSummary::from_sorted(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
        // And survives JSON.
        let text = serde::json::to_string(&s);
        let back: HistogramSummary = serde::json::from_str_as(&text).unwrap();
        assert_eq!(back, s);
    }
}
