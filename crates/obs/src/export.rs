//! Zero-dependency exporters for traces and metrics:
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. Each
//!   lane becomes a named thread track; span args become event `args`.
//! * [`folded_stacks`] — `inferno`/`flamegraph.pl`-style folded stack
//!   lines (`lane;parent;child self_us`), reconstructed from interval
//!   containment per lane.
//! * [`self_time_table`] / [`render_self_time_table`] — top-N spans by
//!   self time (duration minus child durations), aggregated by name.
//! * [`PromWriter`] — Prometheus text exposition (`# HELP`/`# TYPE`,
//!   counters, gauges, and log2-bucket histograms as
//!   `_bucket`/`_sum`/`_count`).

use crate::metrics::{log_bucket_upper_bound, LogHistogramSnapshot};
use crate::trace::SpanRecord;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The display name for a lane: lane 0 orchestrates, the rest are
/// workers.
pub fn lane_name(lane: u32) -> String {
    if lane == 0 {
        "orchestrator".to_owned()
    } else {
        format!("worker-{lane}")
    }
}

/// Renders spans as Chrome trace-event JSON (the "JSON Array Format"
/// with a `traceEvents` envelope).
///
/// Spans must be in exporter order (see [`crate::trace::sort_spans`];
/// [`crate::trace::Trace::spans`] returns them sorted). Timestamps are
/// microseconds with sub-microsecond precision preserved as fractions.
/// `dropped` (spans lost to the per-lane cap) is recorded as trace
/// metadata so a truncated profile is visibly truncated.
pub fn chrome_trace_json(spans: &[SpanRecord], dropped: u64) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",");
    let _ = write!(out, "\"otherData\":{{\"dropped_spans\":{dropped}}},");
    out.push_str("\"traceEvents\":[");
    let mut first = true;
    let mut seen_lanes: Vec<u32> = Vec::new();
    for s in spans {
        if !seen_lanes.contains(&s.lane) {
            seen_lanes.push(s.lane);
        }
    }
    seen_lanes.sort_unstable();
    for lane in &seen_lanes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            lane_name(*lane)
        );
        // Sort index keeps the orchestrator on top in Perfetto.
        if !first {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{lane}}}}}"
        );
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = s.start_ns as f64 / 1000.0;
        let dur = s.dur_ns as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\
             \"name\":\"{}\",\"cat\":\"{}\"",
            s.lane,
            json_escape(&s.name),
            json_escape(s.cat),
        );
        if !s.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(k));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Per-span self time, computed by interval containment within each
/// lane (spans in one lane come from one thread, so they nest).
fn compute_self_ns(spans: &[SpanRecord]) -> Vec<u64> {
    let mut self_ns: Vec<u64> = spans.iter().map(|s| s.dur_ns).collect();
    // (end_ns, index) stack per containment run; spans are sorted by
    // (lane, start, -dur) so a parent precedes its children.
    let mut stack: Vec<(u64, usize)> = Vec::new();
    let mut cur_lane = u32::MAX;
    for (i, s) in spans.iter().enumerate() {
        if s.lane != cur_lane {
            stack.clear();
            cur_lane = s.lane;
        }
        let end = s.start_ns.saturating_add(s.dur_ns);
        while let Some(&(top_end, _)) = stack.last() {
            if top_end <= s.start_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, parent)) = stack.last() {
            self_ns[parent] = self_ns[parent].saturating_sub(s.dur_ns);
        }
        stack.push((end, i));
    }
    self_ns
}

/// Renders folded flamegraph stacks: one line per unique stack,
/// `lane;name;name… self_microseconds`, suitable for
/// `flamegraph.pl` / `inferno-flamegraph` / speedscope.
///
/// Spans must be in exporter order (sorted by `(lane, start, -dur)`).
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    use std::collections::BTreeMap;
    let self_ns = compute_self_ns(spans);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut stack: Vec<(u64, String)> = Vec::new(); // (end_ns, frame name)
    let mut cur_lane = u32::MAX;
    for (i, s) in spans.iter().enumerate() {
        if s.lane != cur_lane {
            stack.clear();
            cur_lane = s.lane;
        }
        let end = s.start_ns.saturating_add(s.dur_ns);
        while let Some((top_end, _)) = stack.last() {
            if *top_end <= s.start_ns {
                stack.pop();
            } else {
                break;
            }
        }
        stack.push((end, s.name.replace([';', ' ', '\n'], "_")));
        let micros = self_ns[i] / 1000;
        if micros > 0 {
            let mut key = lane_name(s.lane);
            for (_, frame) in &stack {
                key.push(';');
                key.push_str(frame);
            }
            *folded.entry(key).or_insert(0) += micros;
        }
    }
    let mut out = String::new();
    for (key, micros) in folded {
        let _ = writeln!(out, "{key} {micros}");
    }
    out
}

/// One row of the self-time table: spans aggregated by `(name, cat)`.
#[derive(Debug, Clone)]
pub struct SelfTimeRow {
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: &'static str,
    /// Number of spans with this name.
    pub calls: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Self (exclusive) nanoseconds.
    pub self_ns: u64,
}

/// Aggregates spans by name and returns the top `n` by self time.
///
/// Spans must be in exporter order (sorted by `(lane, start, -dur)`).
pub fn self_time_table(spans: &[SpanRecord], n: usize) -> Vec<SelfTimeRow> {
    use std::collections::BTreeMap;
    let self_ns = compute_self_ns(spans);
    let mut agg: BTreeMap<(String, &'static str), (u64, u64, u64)> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let e = agg.entry((s.name.to_string(), s.cat)).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.dur_ns;
        e.2 += self_ns[i];
    }
    let mut rows: Vec<SelfTimeRow> = agg
        .into_iter()
        .map(|((name, cat), (calls, total_ns, self_ns))| SelfTimeRow {
            name,
            cat,
            calls,
            total_ns,
            self_ns,
        })
        .collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    rows.truncate(n);
    rows
}

/// Renders a [`self_time_table`] as aligned text.
pub fn render_self_time_table(rows: &[SelfTimeRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:<10} {:>10} {:>12} {:>12}",
        "span", "cat", "calls", "total", "self"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:<10} {:>10} {:>12} {:>12}",
            r.name,
            r.cat,
            r.calls,
            format_ns(r.total_ns),
            format_ns(r.self_ns),
        );
    }
    out
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Sanitizes a dotted metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots, dashes and other invalid bytes
/// become underscores.
pub fn prom_sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prom_escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Incremental Prometheus text-exposition writer (text format 0.0.4).
///
/// Metric names are sanitized with [`prom_sanitize`]; each family gets
/// its `# HELP`/`# TYPE` header exactly once even when samples are
/// appended family-by-family.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one counter sample. `name` is sanitized; pass the final
    /// name including any `_total` suffix convention you want.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let name = prom_sanitize(name);
        self.header(&name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Writes one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let name = prom_sanitize(name);
        self.header(&name, help, "gauge");
        let _ = writeln!(self.out, "{name} {}", prom_f64(value));
    }

    /// Writes a family of counter samples labeled by one label key.
    pub fn counter_family(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        samples: &[(String, f64)],
    ) {
        let name = prom_sanitize(name);
        self.header(&name, help, "counter");
        for (value_label, v) in samples {
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{}\"}} {}",
                prom_escape_label(value_label),
                prom_f64(*v)
            );
        }
    }

    /// Writes one histogram family from a log2-bucket snapshot:
    /// cumulative `_bucket` lines for every non-empty bucket (plus the
    /// mandatory `le="+Inf"`), then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &LogHistogramSnapshot) {
        let name = prom_sanitize(name);
        self.header(&name, help, "histogram");
        let mut cumulative = 0u64;
        for (i, &c) in snap.buckets.iter().enumerate() {
            cumulative += c;
            let bound = log_bucket_upper_bound(i);
            if c > 0 && bound.is_finite() {
                let _ = writeln!(
                    self.out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    prom_f64(bound)
                );
            }
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(self.out, "{name}_sum {}", prom_f64(snap.sum));
        let _ = writeln!(self.out, "{name}_count {cumulative}");
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanArgs, SpanRecord};
    use std::borrow::Cow;

    fn span(name: &'static str, cat: &'static str, lane: u32, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            cat,
            start_ns: start,
            dur_ns: dur,
            lane,
            args: SpanArgs::new(),
        }
    }

    #[test]
    fn chrome_trace_has_lanes_and_args() {
        let mut s = span("wave", "wave", 0, 1_000, 10_000);
        s.args.push("width", 12);
        let spans = vec![s, span("convolve", "kernel", 1, 2_000, 500)];
        let json = chrome_trace_json(&spans, 3);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"orchestrator\""));
        assert!(json.contains("\"worker-1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"width\":12}"));
        assert!(json.contains("\"dropped_spans\":3"));
        assert!(json.contains("\"ts\":1,"), "ns → µs conversion");
    }

    #[test]
    fn self_time_subtracts_children() {
        // parent [0, 100), child A [10, 30), child B [40, 50),
        // grandchild [12, 20) under A.
        let spans = vec![
            span("parent", "phase", 0, 0, 100),
            span("a", "node", 0, 10, 20),
            span("g", "kernel", 0, 12, 8),
            span("b", "node", 0, 40, 10),
        ];
        let self_ns = compute_self_ns(&spans);
        assert_eq!(self_ns, vec![70, 12, 8, 10]);
        let rows = self_time_table(&spans, 10);
        assert_eq!(rows[0].name, "parent");
        assert_eq!(rows[0].self_ns, 70);
        let total: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(total, 100, "self times partition the root");
    }

    #[test]
    fn folded_stacks_nest_by_containment() {
        let spans = vec![
            span("analyze", "phase", 0, 0, 100_000),
            span("wave", "wave", 0, 10_000, 50_000),
            span("n1", "node", 0, 12_000, 20_000),
        ];
        let folded = folded_stacks(&spans);
        assert!(folded.contains("orchestrator;analyze 50\n"));
        assert!(folded.contains("orchestrator;analyze;wave 30\n"));
        assert!(folded.contains("orchestrator;analyze;wave;n1 20\n"));
    }

    #[test]
    fn sibling_lanes_do_not_nest() {
        let spans = vec![
            span("n1", "node", 1, 0, 1_000_000),
            span("n2", "node", 1, 2_000_000, 1_000_000),
        ];
        let folded = folded_stacks(&spans);
        assert!(folded.contains("worker-1;n1 1000\n"));
        assert!(folded.contains("worker-1;n2 1000\n"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut w = PromWriter::new();
        w.counter("pep_serve.jobs_completed_total", "Jobs completed.", 7);
        w.gauge("pep_serve.queue_depth", "Queued jobs.", 2.0);
        let live = crate::metrics::MetricsRegistry::default();
        let lh = live.log_histogram("x");
        lh.record(0.5);
        lh.record(0.75);
        lh.record(3.0);
        w.histogram("pep_serve.job_seconds", "Job latency.", &lh.snapshot());
        let text = w.finish();
        assert!(text.contains("# TYPE pep_serve_jobs_completed_total counter"));
        assert!(text.contains("pep_serve_jobs_completed_total 7"));
        assert!(text.contains("# TYPE pep_serve_queue_depth gauge"));
        assert!(text.contains("pep_serve_queue_depth 2"));
        assert!(text.contains("# TYPE pep_serve_job_seconds histogram"));
        // 0.5 and 0.75 share the [0.5, 1) bucket; cumulative at le=1 is 2.
        assert!(text.contains("pep_serve_job_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("pep_serve_job_seconds_bucket{le=\"4\"} 3"));
        assert!(text.contains("pep_serve_job_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("pep_serve_job_seconds_sum 4.25"));
        assert!(text.contains("pep_serve_job_seconds_count 3"));
    }

    #[test]
    fn prom_sanitize_fixes_names() {
        assert_eq!(prom_sanitize("pep.kernel.max-ns"), "pep_kernel_max_ns");
        assert_eq!(prom_sanitize("9lives"), "_9lives");
    }
}
