//! The [`Session`] handle that ties phases, metrics and reports
//! together.
//!
//! A session is cheap to clone (one `Arc`) and cheap to ignore: the
//! [`disabled`](Session::disabled) session never takes a timestamp,
//! never locks, and hands out detached histogram handles — so
//! instrumented code paths cost nothing when nobody is observing.
//! Counters and gauges from a disabled session are still *functional*
//! (they are plain atomics), just unregistered: callers that compute
//! statistics from counter deltas (see `pep_core::AnalysisStats`) work
//! identically either way.

use crate::metrics::{Counter, FloatCounter, Gauge, Histogram, MetricsRegistry};
use crate::phase::PhaseTree;
use crate::report::RunReport;
use crate::warning::Warning;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug, Default)]
struct SessionInner {
    registry: MetricsRegistry,
    phases: Mutex<PhaseTree>,
    warnings: Mutex<Vec<Warning>>,
}

/// A shared observation context for one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Session {
    inner: Option<Arc<SessionInner>>,
}

impl Session {
    /// An enabled session that records phases and metrics.
    pub fn new() -> Self {
        Session {
            inner: Some(Arc::default()),
        }
    }

    /// The no-op session: every operation is a cheap early-out.
    pub fn disabled() -> Self {
        Session { inner: None }
    }

    /// Whether this session records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a phase span; it closes (and records its wall time) when
    /// the returned guard drops. Same-named phases under the same parent
    /// merge — timing a phase inside a loop is fine.
    ///
    /// Phases form one logical stack: open them from the orchestration
    /// thread only.
    pub fn phase(&self, name: &str) -> PhaseGuard {
        match &self.inner {
            None => PhaseGuard { open: None },
            Some(inner) => {
                let index = inner.phases.lock().expect("phase lock").open(name);
                PhaseGuard {
                    open: Some(OpenPhase {
                        inner: Arc::clone(inner),
                        index,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// A counter handle. On a disabled session the handle works but is
    /// unregistered (reported nowhere).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// A float-counter handle (same disabled semantics as
    /// [`counter`](Session::counter)).
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        match &self.inner {
            Some(inner) => inner.registry.float_counter(name),
            None => FloatCounter::default(),
        }
    }

    /// A gauge handle (same disabled semantics as
    /// [`counter`](Session::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// A histogram handle; detached (recording is a no-op) on a disabled
    /// session.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Total recorded wall time across every closed span named `name`.
    pub fn total_of(&self, name: &str) -> Option<std::time::Duration> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.phases.lock().expect("phase lock").total_of(name))
    }

    /// Records a structured degradation [`Warning`]. No-op on a disabled
    /// session.
    pub fn warn(&self, warning: Warning) {
        if let Some(inner) = &self.inner {
            inner.warnings.lock().expect("warning lock").push(warning);
        }
    }

    /// Snapshot of the warnings recorded so far, in emission order.
    pub fn warnings(&self) -> Vec<Warning> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.warnings.lock().expect("warning lock").clone(),
        }
    }

    /// Snapshots everything observed so far into a [`RunReport`].
    /// Disabled sessions produce an empty report.
    pub fn report(&self, command: &str) -> RunReport {
        let (phases, counters, gauges, histograms, warnings) = match &self.inner {
            None => Default::default(),
            Some(inner) => (
                inner.phases.lock().expect("phase lock").to_reports(),
                inner.registry.counters_snapshot(),
                inner.registry.gauges_snapshot(),
                inner.registry.histograms_snapshot(),
                inner.warnings.lock().expect("warning lock").clone(),
            ),
        };
        RunReport {
            tool: "psta".to_owned(),
            version: env!("CARGO_PKG_VERSION").to_owned(),
            command: command.to_owned(),
            phases,
            counters,
            gauges,
            histograms,
            warnings,
        }
    }
}

#[derive(Debug)]
struct OpenPhase {
    inner: Arc<SessionInner>,
    index: usize,
    start: Instant,
}

/// Scope guard returned by [`Session::phase`]; closes the span on drop.
#[derive(Debug)]
#[must_use = "the phase closes when this guard drops — bind it with `let _guard = …`"]
pub struct PhaseGuard {
    open: Option<OpenPhase>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let elapsed = open.start.elapsed();
            open.inner
                .phases
                .lock()
                .expect("phase lock")
                .close(open.index, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_session_is_inert_but_functional() {
        let s = Session::disabled();
        assert!(!s.is_enabled());
        {
            let _p = s.phase("parse");
        }
        let c = s.counter("pep.nodes");
        c.add(7);
        assert_eq!(c.get(), 7, "handles still count");
        let report = s.report("analyze");
        assert!(report.phases.is_empty());
        assert!(report.counters.is_empty(), "but nothing is registered");
        assert_eq!(s.total_of("parse"), None);
    }

    #[test]
    fn enabled_session_records_everything() {
        let s = Session::new();
        {
            let _outer = s.phase("analyze");
            {
                let _inner = s.phase("propagate");
                s.counter("pep.nodes").add(10);
                s.float_counter("pep.dropped_mass").add(0.5);
                s.gauge("pep.step").set(0.25);
                s.histogram("pep.group_size").record(3.0);
            }
        }
        let report = s.report("analyze");
        assert_eq!(report.command, "analyze");
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "analyze");
        assert_eq!(report.phases[0].children[0].name, "propagate");
        assert_eq!(report.counters["pep.nodes"], 10);
        assert_eq!(report.gauges["pep.dropped_mass"], 0.5);
        assert_eq!(report.gauges["pep.step"], 0.25);
        assert_eq!(report.histograms["pep.group_size"].count, 1);
        assert!(s.total_of("analyze").unwrap() >= s.total_of("propagate").unwrap());
    }

    #[test]
    fn clones_share_state() {
        let s = Session::new();
        let t = s.clone();
        t.counter("x").inc();
        assert_eq!(s.report("c").counters["x"], 1);
    }

    #[test]
    fn warnings_are_collected_in_order() {
        let s = Session::new();
        s.warn(Warning::new("a", "s1", "k1", "d1", "i1"));
        s.clone().warn(Warning::new("b", "s2", "k2", "d2", "i2"));
        let ws = s.warnings();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].code, "a");
        assert_eq!(ws[1].code, "b");
        assert_eq!(s.report("analyze").warnings, ws);
        // Disabled sessions drop warnings silently.
        let d = Session::disabled();
        d.warn(Warning::new("a", "s", "k", "d", "i"));
        assert!(d.warnings().is_empty());
        assert!(d.report("analyze").warnings.is_empty());
    }
}
