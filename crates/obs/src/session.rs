//! The [`Session`] handle that ties phases, metrics and reports
//! together.
//!
//! A session is cheap to clone (one `Arc`) and cheap to ignore: the
//! [`disabled`](Session::disabled) session never takes a timestamp,
//! never locks, and hands out detached histogram handles — so
//! instrumented code paths cost nothing when nobody is observing.
//! Counters and gauges from a disabled session are still *functional*
//! (they are plain atomics), just unregistered: callers that compute
//! statistics from counter deltas (see `pep_core::AnalysisStats`) work
//! identically either way.

use crate::metrics::{Counter, FloatCounter, Gauge, Histogram, LogHistogram, MetricsRegistry};
use crate::phase::PhaseTree;
use crate::report::RunReport;
use crate::trace::{SpanArgs, SpanRecord, Trace, TraceLevel};
use crate::warning::Warning;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Callback invoked on the orchestration thread at phase boundaries:
/// `(phase_name, entering, seconds_since_session_start)`. Used by the
/// serve layer to stream progress events for long-running jobs.
pub type PhaseListener = Arc<dyn Fn(&str, bool, f64) + Send + Sync>;

#[derive(Default)]
struct ListenerSlot(Option<PhaseListener>);

impl std::fmt::Debug for ListenerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "PhaseListener(set)"
        } else {
            "PhaseListener(unset)"
        })
    }
}

#[derive(Debug)]
struct SessionInner {
    registry: MetricsRegistry,
    phases: Mutex<PhaseTree>,
    warnings: Mutex<Vec<Warning>>,
    trace: Mutex<Trace>,
    listener: Mutex<ListenerSlot>,
    started: Instant,
}

impl Default for SessionInner {
    fn default() -> Self {
        SessionInner {
            registry: MetricsRegistry::default(),
            phases: Mutex::default(),
            warnings: Mutex::default(),
            trace: Mutex::default(),
            listener: Mutex::default(),
            started: Instant::now(),
        }
    }
}

/// A shared observation context for one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Session {
    inner: Option<Arc<SessionInner>>,
}

impl Session {
    /// An enabled session that records phases and metrics.
    pub fn new() -> Self {
        Session {
            inner: Some(Arc::default()),
        }
    }

    /// The no-op session: every operation is a cheap early-out.
    pub fn disabled() -> Self {
        Session { inner: None }
    }

    /// Whether this session records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a phase span; it closes (and records its wall time) when
    /// the returned guard drops. Same-named phases under the same parent
    /// merge — timing a phase inside a loop is fine.
    ///
    /// Phases form one logical stack: open them from the orchestration
    /// thread only.
    pub fn phase(&self, name: &str) -> PhaseGuard {
        match &self.inner {
            None => PhaseGuard { open: None },
            Some(inner) => {
                let index = inner.phases.lock().expect("phase lock").open(name);
                let trace = {
                    let t = inner.trace.lock().expect("trace lock");
                    (t.level() >= TraceLevel::Phases).then(|| t.clone())
                };
                let listener = inner.listener.lock().expect("listener lock").0.clone();
                let start = Instant::now();
                if let Some(listener) = &listener {
                    listener(
                        name,
                        true,
                        start.saturating_duration_since(inner.started).as_secs_f64(),
                    );
                }
                PhaseGuard {
                    open: Some(OpenPhase {
                        inner: Arc::clone(inner),
                        index,
                        start,
                        name: (trace.is_some() || listener.is_some()).then(|| name.to_owned()),
                        trace,
                        listener,
                    }),
                }
            }
        }
    }

    /// Attaches a [`Trace`] to this session: analysis layers pick it up
    /// (via [`trace`](Session::trace)) and phase guards record phase
    /// spans into it. No-op on a disabled session.
    pub fn set_trace(&self, trace: Trace) {
        if let Some(inner) = &self.inner {
            *inner.trace.lock().expect("trace lock") = trace;
        }
    }

    /// The attached trace (the disabled trace when none was attached or
    /// the session is disabled). Cheap to clone and thread through.
    pub fn trace(&self) -> Trace {
        match &self.inner {
            Some(inner) => inner.trace.lock().expect("trace lock").clone(),
            None => Trace::disabled(),
        }
    }

    /// Registers a [`PhaseListener`] called at every phase enter/exit
    /// on the orchestration thread. No-op on a disabled session.
    pub fn set_phase_listener(&self, listener: PhaseListener) {
        if let Some(inner) = &self.inner {
            inner.listener.lock().expect("listener lock").0 = Some(listener);
        }
    }

    /// A counter handle. On a disabled session the handle works but is
    /// unregistered (reported nowhere).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// A float-counter handle (same disabled semantics as
    /// [`counter`](Session::counter)).
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        match &self.inner {
            Some(inner) => inner.registry.float_counter(name),
            None => FloatCounter::default(),
        }
    }

    /// A gauge handle (same disabled semantics as
    /// [`counter`](Session::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// A histogram handle; detached (recording is a no-op) on a disabled
    /// session.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// A log2-bucket histogram handle (atomic, Prometheus-exportable);
    /// detached on a disabled session.
    pub fn log_histogram(&self, name: &str) -> LogHistogram {
        match &self.inner {
            Some(inner) => inner.registry.log_histogram(name),
            None => LogHistogram::detached(),
        }
    }

    /// Snapshot of every log2-bucket histogram registered so far.
    pub fn log_histograms_snapshot(
        &self,
    ) -> std::collections::BTreeMap<String, crate::metrics::LogHistogramSnapshot> {
        match &self.inner {
            Some(inner) => inner.registry.log_histograms_snapshot(),
            None => Default::default(),
        }
    }

    /// Total recorded wall time across every closed span named `name`.
    pub fn total_of(&self, name: &str) -> Option<std::time::Duration> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.phases.lock().expect("phase lock").total_of(name))
    }

    /// Records a structured degradation [`Warning`]. No-op on a disabled
    /// session.
    pub fn warn(&self, warning: Warning) {
        if let Some(inner) = &self.inner {
            inner.warnings.lock().expect("warning lock").push(warning);
        }
    }

    /// Snapshot of the warnings recorded so far, in emission order.
    pub fn warnings(&self) -> Vec<Warning> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.warnings.lock().expect("warning lock").clone(),
        }
    }

    /// Snapshots everything observed so far into a [`RunReport`].
    /// Disabled sessions produce an empty report.
    pub fn report(&self, command: &str) -> RunReport {
        let (phases, counters, gauges, histograms, warnings) = match &self.inner {
            None => Default::default(),
            Some(inner) => (
                inner.phases.lock().expect("phase lock").to_reports(),
                inner.registry.counters_snapshot(),
                inner.registry.gauges_snapshot(),
                inner.registry.histograms_snapshot(),
                inner.warnings.lock().expect("warning lock").clone(),
            ),
        };
        RunReport {
            tool: "psta".to_owned(),
            version: env!("CARGO_PKG_VERSION").to_owned(),
            command: command.to_owned(),
            phases,
            counters,
            gauges,
            histograms,
            warnings,
        }
    }
}

struct OpenPhase {
    inner: Arc<SessionInner>,
    index: usize,
    start: Instant,
    /// The phase name, kept only when the trace or a listener needs it
    /// at close time.
    name: Option<String>,
    /// Set when the attached trace records phases.
    trace: Option<Trace>,
    listener: Option<PhaseListener>,
}

impl std::fmt::Debug for OpenPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenPhase")
            .field("index", &self.index)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Scope guard returned by [`Session::phase`]; closes the span on drop.
#[derive(Debug)]
#[must_use = "the phase closes when this guard drops — bind it with `let _guard = …`"]
pub struct PhaseGuard {
    open: Option<OpenPhase>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let elapsed = open.start.elapsed();
            open.inner
                .phases
                .lock()
                .expect("phase lock")
                .close(open.index, elapsed);
            if let (Some(trace), Some(name)) = (&open.trace, &open.name) {
                trace.record_span(SpanRecord {
                    name: std::borrow::Cow::Owned(name.clone()),
                    cat: "phase",
                    start_ns: trace.elapsed_ns(open.start),
                    dur_ns: elapsed.as_nanos() as u64,
                    lane: 0,
                    args: SpanArgs::new(),
                });
            }
            if let (Some(listener), Some(name)) = (&open.listener, &open.name) {
                listener(
                    name,
                    false,
                    (open.start + elapsed)
                        .saturating_duration_since(open.inner.started)
                        .as_secs_f64(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_session_is_inert_but_functional() {
        let s = Session::disabled();
        assert!(!s.is_enabled());
        {
            let _p = s.phase("parse");
        }
        let c = s.counter("pep.nodes");
        c.add(7);
        assert_eq!(c.get(), 7, "handles still count");
        let report = s.report("analyze");
        assert!(report.phases.is_empty());
        assert!(report.counters.is_empty(), "but nothing is registered");
        assert_eq!(s.total_of("parse"), None);
    }

    #[test]
    fn enabled_session_records_everything() {
        let s = Session::new();
        {
            let _outer = s.phase("analyze");
            {
                let _inner = s.phase("propagate");
                s.counter("pep.nodes").add(10);
                s.float_counter("pep.dropped_mass").add(0.5);
                s.gauge("pep.step").set(0.25);
                s.histogram("pep.group_size").record(3.0);
            }
        }
        let report = s.report("analyze");
        assert_eq!(report.command, "analyze");
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "analyze");
        assert_eq!(report.phases[0].children[0].name, "propagate");
        assert_eq!(report.counters["pep.nodes"], 10);
        assert_eq!(report.gauges["pep.dropped_mass"], 0.5);
        assert_eq!(report.gauges["pep.step"], 0.25);
        assert_eq!(report.histograms["pep.group_size"].count, 1);
        assert!(s.total_of("analyze").unwrap() >= s.total_of("propagate").unwrap());
    }

    #[test]
    fn attached_trace_records_phase_spans() {
        let s = Session::new();
        assert!(!s.trace().is_enabled(), "no trace attached by default");
        let t = Trace::new(TraceLevel::Phases);
        s.set_trace(t.clone());
        {
            let _p = s.phase("propagate");
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "propagate");
        assert_eq!(spans[0].cat, "phase");
        assert_eq!(spans[0].lane, 0);
        // Disabled sessions ignore attachment.
        let d = Session::disabled();
        d.set_trace(Trace::new(TraceLevel::Phases));
        assert!(!d.trace().is_enabled());
    }

    #[test]
    fn phase_listener_sees_enter_and_exit() {
        let s = Session::new();
        let events: Arc<Mutex<Vec<(String, bool, f64)>>> = Arc::default();
        let sink = Arc::clone(&events);
        s.set_phase_listener(Arc::new(move |name, enter, at| {
            sink.lock()
                .expect("events")
                .push((name.to_owned(), enter, at));
        }));
        {
            let _p = s.phase("levelize");
        }
        let events = events.lock().expect("events");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, "levelize");
        assert!(events[0].1, "enter first");
        assert!(!events[1].1, "then exit");
        assert!(events[1].2 >= events[0].2, "time is monotone");
    }

    #[test]
    fn clones_share_state() {
        let s = Session::new();
        let t = s.clone();
        t.counter("x").inc();
        assert_eq!(s.report("c").counters["x"], 1);
    }

    #[test]
    fn warnings_are_collected_in_order() {
        let s = Session::new();
        s.warn(Warning::new("a", "s1", "k1", "d1", "i1"));
        s.clone().warn(Warning::new("b", "s2", "k2", "d2", "i2"));
        let ws = s.warnings();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].code, "a");
        assert_eq!(ws[1].code, "b");
        assert_eq!(s.report("analyze").warnings, ws);
        // Disabled sessions drop warnings silently.
        let d = Session::disabled();
        d.warn(Warning::new("a", "s", "k", "d", "i"));
        assert!(d.warnings().is_empty());
        assert!(d.report("analyze").warnings.is_empty());
    }
}
