//! The metrics registry: named counters, gauges and histograms with
//! cheap, thread-safe handles.
//!
//! Handles are resolved **once** by name (`registry.counter("pep.x")`)
//! and then incremented lock-free on the hot path — an increment is a
//! single relaxed atomic add. Histograms store raw samples behind a
//! mutex and summarize (count / sum / min / max / mean / percentiles)
//! on demand; record samples at per-node or per-chunk granularity, not
//! per-event.

use crate::report::HistogramSummary;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing floating-point accumulator (e.g. total
/// probability mass dropped). Adds are ordered within one thread, so
/// single-threaded accumulation is bit-for-bit deterministic.
#[derive(Debug, Clone, Default)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    /// Adds `x` (compare-and-swap loop over the f64 bit pattern).
    pub fn add(&self, x: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A last-write-wins floating-point metric (e.g. thread count, step
/// size).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A sample distribution metric. `Histogram::detached()` produces a
/// no-op handle (used by disabled sessions) whose `record` is free.
#[derive(Debug, Clone)]
pub struct Histogram {
    samples: Option<Arc<Mutex<Vec<f64>>>>,
}

impl Histogram {
    fn live() -> Self {
        Histogram {
            samples: Some(Arc::default()),
        }
    }

    /// A handle that drops every sample (the disabled fast path).
    pub fn detached() -> Self {
        Histogram { samples: None }
    }

    /// Records one sample (no-op on a detached handle).
    pub fn record(&self, x: f64) {
        if let Some(samples) = &self.samples {
            samples.lock().expect("histogram lock").push(x);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        match &self.samples {
            Some(samples) => samples.lock().expect("histogram lock").len() as u64,
            None => 0,
        }
    }

    /// Summarizes the recorded samples (all-zero summary when empty).
    pub fn summary(&self) -> HistogramSummary {
        let sorted = match &self.samples {
            Some(samples) => {
                let mut v = samples.lock().expect("histogram lock").clone();
                v.sort_by(f64::total_cmp);
                v
            }
            None => Vec::new(),
        };
        HistogramSummary::from_sorted(&sorted)
    }
}

/// Name → metric store; the single source of truth for run statistics.
///
/// Metric names are dotted paths (`pep.supergates`, `mc.runs`); each
/// name lives in exactly one of the four metric kinds — asking for
/// `counter("x")` and `gauge("x")` creates two different metrics that
/// would collide in the report, so don't.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    float_counters: Mutex<BTreeMap<String, FloatCounter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.counters, name, Counter::default)
    }

    /// The float counter registered under `name`.
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        get_or_insert(&self.float_counters, name, FloatCounter::default)
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.gauges, name, Gauge::default)
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.histograms, name, Histogram::live)
    }

    /// Snapshot of every counter.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        snapshot(&self.counters, Counter::get)
    }

    /// Snapshot of every gauge and float counter (both are `f64`-valued
    /// and report in one namespace).
    pub fn gauges_snapshot(&self) -> BTreeMap<String, f64> {
        let mut out = snapshot(&self.float_counters, FloatCounter::get);
        out.extend(snapshot(&self.gauges, Gauge::get));
        out
    }

    /// Snapshot of every histogram, summarized.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, HistogramSummary> {
        snapshot(&self.histograms, Histogram::summary)
    }
}

fn get_or_insert<M: Clone>(
    store: &Mutex<BTreeMap<String, M>>,
    name: &str,
    make: impl FnOnce() -> M,
) -> M {
    let mut map = store.lock().expect("registry lock");
    match map.get(name) {
        Some(metric) => metric.clone(),
        None => {
            let metric = make();
            map.insert(name.to_owned(), metric.clone());
            metric
        }
    }
}

fn snapshot<M, V>(
    store: &Mutex<BTreeMap<String, M>>,
    read: impl Fn(&M) -> V,
) -> BTreeMap<String, V> {
    store
        .lock()
        .expect("registry lock")
        .iter()
        .map(|(name, metric)| (name.clone(), read(metric)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("pep.nodes");
        let b = reg.counter("pep.nodes");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("pep.nodes").get(), 4);
        assert_eq!(reg.counters_snapshot()["pep.nodes"], 4);
    }

    #[test]
    fn float_counter_accumulates() {
        let reg = MetricsRegistry::default();
        let m = reg.float_counter("pep.dropped_mass");
        for _ in 0..10 {
            m.add(0.125);
        }
        assert_eq!(m.get(), 1.25);
        assert_eq!(reg.gauges_snapshot()["pep.dropped_mass"], 1.25);
    }

    #[test]
    fn float_counter_is_thread_safe() {
        let reg = MetricsRegistry::default();
        let m = reg.float_counter("x");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.add(1.0);
                    }
                });
            }
        });
        assert_eq!(m.get(), 4000.0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let reg = MetricsRegistry::default();
        reg.gauge("mc.threads").set(8.0);
        reg.gauge("mc.threads").set(4.0);
        assert_eq!(reg.gauges_snapshot()["mc.threads"], 4.0);
    }

    #[test]
    fn histogram_summarizes_and_detached_is_noop() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("pep.group_size");
        for x in 1..=100 {
            h.record(x as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);

        let d = Histogram::detached();
        d.record(5.0);
        assert_eq!(d.count(), 0);
        assert_eq!(d.summary().count, 0);
    }
}
