//! The metrics registry: named counters, gauges and histograms with
//! cheap, thread-safe handles.
//!
//! Handles are resolved **once** by name (`registry.counter("pep.x")`)
//! and then incremented lock-free on the hot path — an increment is a
//! single relaxed atomic add. Histograms store raw samples behind a
//! mutex and summarize (count / sum / min / max / mean / percentiles)
//! on demand; record samples at per-node or per-chunk granularity, not
//! per-event.

use crate::report::HistogramSummary;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing floating-point accumulator (e.g. total
/// probability mass dropped). Adds are ordered within one thread, so
/// single-threaded accumulation is bit-for-bit deterministic.
#[derive(Debug, Clone, Default)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    /// Adds `x` (compare-and-swap loop over the f64 bit pattern).
    pub fn add(&self, x: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A last-write-wins floating-point metric (e.g. thread count, step
/// size).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A sample distribution metric. `Histogram::detached()` produces a
/// no-op handle (used by disabled sessions) whose `record` is free.
#[derive(Debug, Clone)]
pub struct Histogram {
    samples: Option<Arc<Mutex<Vec<f64>>>>,
}

impl Histogram {
    fn live() -> Self {
        Histogram {
            samples: Some(Arc::default()),
        }
    }

    /// A handle that drops every sample (the disabled fast path).
    pub fn detached() -> Self {
        Histogram { samples: None }
    }

    /// Records one sample (no-op on a detached handle).
    pub fn record(&self, x: f64) {
        if let Some(samples) = &self.samples {
            samples.lock().expect("histogram lock").push(x);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        match &self.samples {
            Some(samples) => samples.lock().expect("histogram lock").len() as u64,
            None => 0,
        }
    }

    /// Summarizes the recorded samples (all-zero summary when empty).
    pub fn summary(&self) -> HistogramSummary {
        let sorted = match &self.samples {
            Some(samples) => {
                let mut v = samples.lock().expect("histogram lock").clone();
                v.sort_by(f64::total_cmp);
                v
            }
            None => Vec::new(),
        };
        HistogramSummary::from_sorted(&sorted)
    }
}

/// Number of buckets in a [`LogHistogram`].
pub const LOG_HISTOGRAM_BUCKETS: usize = 64;

/// The bucket a value lands in: power-of-two buckets, lower-inclusive.
///
/// Bucket `i` (for `0 < i < 63`) holds `v` in `[2^(i-32), 2^(i-31))`;
/// bucket 0 is the underflow bucket (zero, negatives, subnormals, NaN,
/// and anything below `2^-31`), bucket 63 the overflow bucket
/// (`>= 2^31`, plus `+inf`). The index is computed from the f64
/// exponent bits, so boundary values are classified exactly — every
/// finite value lands in exactly one bucket.
pub fn log_bucket_index(v: f64) -> usize {
    if !v.is_finite() {
        return if v > 0.0 {
            LOG_HISTOGRAM_BUCKETS - 1
        } else {
            0
        };
    }
    if v < f64::MIN_POSITIVE {
        // Zero, negatives and subnormals: underflow.
        return 0;
    }
    // For normal f64, the biased exponent gives floor(log2(v)) exactly.
    let e = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    (e + 32).clamp(0, LOG_HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// The *exclusive* upper bound of bucket `i` (`2^(i-31)`); the last
/// bucket is unbounded and reports `+inf`.
pub fn log_bucket_upper_bound(i: usize) -> f64 {
    if i >= LOG_HISTOGRAM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        (i as f64 - 31.0).exp2()
    }
}

/// A point-in-time copy of a [`LogHistogram`]: per-bucket counts plus
/// the exact sum and count. `count` always equals the bucket total.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogramSnapshot {
    /// Count per log2 bucket (see [`log_bucket_index`]).
    pub buckets: [u64; LOG_HISTOGRAM_BUCKETS],
    /// Sum of recorded values.
    pub sum: f64,
    /// Number of recorded values.
    pub count: u64,
}

impl Default for LogHistogramSnapshot {
    fn default() -> Self {
        LogHistogramSnapshot {
            buckets: [0; LOG_HISTOGRAM_BUCKETS],
            sum: 0.0,
            count: 0,
        }
    }
}

impl LogHistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug)]
struct LogHistogramInner {
    buckets: [AtomicU64; LOG_HISTOGRAM_BUCKETS],
    // f64 bit pattern, updated by CAS like `FloatCounter`.
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for LogHistogramInner {
    fn default() -> Self {
        LogHistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket (log2), fully atomic latency/size histogram: `record`
/// is one atomic increment plus a CAS-loop sum update — no locks, no
/// allocation, safe to hammer from worker threads. This is the metric
/// kind behind Prometheus `_bucket`/`_sum`/`_count` exposition; the
/// raw-sample [`Histogram`] remains for exact percentiles in run
/// reports.
///
/// `LogHistogram::detached()` is the free no-op handle.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    inner: Option<Arc<LogHistogramInner>>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::detached()
    }
}

impl LogHistogram {
    fn live() -> Self {
        LogHistogram {
            inner: Some(Arc::default()),
        }
    }

    /// A handle that drops every sample (the disabled fast path).
    pub fn detached() -> Self {
        LogHistogram { inner: None }
    }

    /// Records one value (no-op on a detached handle).
    pub fn record(&self, v: f64) {
        if let Some(inner) = &self.inner {
            inner.buckets[log_bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            inner.count.fetch_add(1, Ordering::Relaxed);
            let mut current = inner.sum.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + v).to_bits();
                match inner.sum.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(actual) => current = actual,
                }
            }
        }
    }

    /// Merges a pre-aggregated bucket array (e.g. a per-worker trace
    /// buffer's kernel aggregate) into this histogram in one pass.
    pub fn merge_buckets(&self, buckets: &[u64; LOG_HISTOGRAM_BUCKETS], sum: f64, count: u64) {
        if let Some(inner) = &self.inner {
            for (slot, &c) in inner.buckets.iter().zip(buckets.iter()) {
                if c > 0 {
                    slot.fetch_add(c, Ordering::Relaxed);
                }
            }
            inner.count.fetch_add(count, Ordering::Relaxed);
            let mut current = inner.sum.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + sum).to_bits();
                match inner.sum.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(actual) => current = actual,
                }
            }
        }
    }

    /// Merges another histogram's current contents into this one.
    pub fn merge_from(&self, other: &LogHistogram) {
        let snap = other.snapshot();
        if snap.count > 0 {
            self.merge_buckets(&snap.buckets, snap.sum, snap.count);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.count.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// A consistent-enough snapshot (buckets are read one by one; under
    /// concurrent recording the totals may trail by in-flight records,
    /// but `count` is always the bucket total of *some* valid state
    /// once recording quiesces).
    pub fn snapshot(&self) -> LogHistogramSnapshot {
        match &self.inner {
            None => LogHistogramSnapshot::default(),
            Some(inner) => {
                let mut out = LogHistogramSnapshot {
                    buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
                    sum: f64::from_bits(inner.sum.load(Ordering::Relaxed)),
                    count: inner.count.load(Ordering::Relaxed),
                };
                // Quiesced reads keep the invariant exactly; racing
                // reads report the bucket total as the count so the
                // exposition stays internally consistent.
                out.count = out.buckets.iter().sum();
                out
            }
        }
    }
}

/// Name → metric store; the single source of truth for run statistics.
///
/// Metric names are dotted paths (`pep.supergates`, `mc.runs`); each
/// name lives in exactly one of the four metric kinds — asking for
/// `counter("x")` and `gauge("x")` creates two different metrics that
/// would collide in the report, so don't.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    float_counters: Mutex<BTreeMap<String, FloatCounter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    log_histograms: Mutex<BTreeMap<String, LogHistogram>>,
}

impl MetricsRegistry {
    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.counters, name, Counter::default)
    }

    /// The float counter registered under `name`.
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        get_or_insert(&self.float_counters, name, FloatCounter::default)
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.gauges, name, Gauge::default)
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.histograms, name, Histogram::live)
    }

    /// The log2-bucket histogram registered under `name`.
    pub fn log_histogram(&self, name: &str) -> LogHistogram {
        get_or_insert(&self.log_histograms, name, LogHistogram::live)
    }

    /// Snapshot of every counter.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        snapshot(&self.counters, Counter::get)
    }

    /// Snapshot of every gauge and float counter (both are `f64`-valued
    /// and report in one namespace).
    pub fn gauges_snapshot(&self) -> BTreeMap<String, f64> {
        let mut out = snapshot(&self.float_counters, FloatCounter::get);
        out.extend(snapshot(&self.gauges, Gauge::get));
        out
    }

    /// Snapshot of every histogram, summarized.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, HistogramSummary> {
        snapshot(&self.histograms, Histogram::summary)
    }

    /// Snapshot of every log2-bucket histogram.
    pub fn log_histograms_snapshot(&self) -> BTreeMap<String, LogHistogramSnapshot> {
        snapshot(&self.log_histograms, LogHistogram::snapshot)
    }
}

fn get_or_insert<M: Clone>(
    store: &Mutex<BTreeMap<String, M>>,
    name: &str,
    make: impl FnOnce() -> M,
) -> M {
    let mut map = store.lock().expect("registry lock");
    match map.get(name) {
        Some(metric) => metric.clone(),
        None => {
            let metric = make();
            map.insert(name.to_owned(), metric.clone());
            metric
        }
    }
}

fn snapshot<M, V>(
    store: &Mutex<BTreeMap<String, M>>,
    read: impl Fn(&M) -> V,
) -> BTreeMap<String, V> {
    store
        .lock()
        .expect("registry lock")
        .iter()
        .map(|(name, metric)| (name.clone(), read(metric)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("pep.nodes");
        let b = reg.counter("pep.nodes");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("pep.nodes").get(), 4);
        assert_eq!(reg.counters_snapshot()["pep.nodes"], 4);
    }

    #[test]
    fn float_counter_accumulates() {
        let reg = MetricsRegistry::default();
        let m = reg.float_counter("pep.dropped_mass");
        for _ in 0..10 {
            m.add(0.125);
        }
        assert_eq!(m.get(), 1.25);
        assert_eq!(reg.gauges_snapshot()["pep.dropped_mass"], 1.25);
    }

    #[test]
    fn float_counter_is_thread_safe() {
        let reg = MetricsRegistry::default();
        let m = reg.float_counter("x");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.add(1.0);
                    }
                });
            }
        });
        assert_eq!(m.get(), 4000.0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let reg = MetricsRegistry::default();
        reg.gauge("mc.threads").set(8.0);
        reg.gauge("mc.threads").set(4.0);
        assert_eq!(reg.gauges_snapshot()["mc.threads"], 4.0);
    }

    #[test]
    fn log_bucket_boundaries_are_exact() {
        // Exact powers of two are lower-inclusive.
        assert_eq!(log_bucket_index(1.0), 32);
        assert_eq!(log_bucket_index(2.0), 33);
        assert_eq!(log_bucket_index(1.5), 32);
        assert_eq!(log_bucket_index(0.5), 31);
        // Underflow/overflow and junk.
        assert_eq!(log_bucket_index(0.0), 0);
        assert_eq!(log_bucket_index(-3.0), 0);
        assert_eq!(log_bucket_index(f64::NAN), 0);
        assert_eq!(log_bucket_index(f64::INFINITY), LOG_HISTOGRAM_BUCKETS - 1);
        assert_eq!(log_bucket_index(1e300), LOG_HISTOGRAM_BUCKETS - 1);
        assert_eq!(log_bucket_index(1e-300), 0);
        // A value just below a boundary stays in the lower bucket.
        let just_below = f64::from_bits(2.0f64.to_bits() - 1);
        assert_eq!(log_bucket_index(just_below), 32);
        // Upper bounds bracket their bucket.
        assert_eq!(log_bucket_upper_bound(32), 2.0);
        assert!(log_bucket_upper_bound(LOG_HISTOGRAM_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn log_histogram_records_and_merges() {
        let reg = MetricsRegistry::default();
        let h = reg.log_histogram("pep.kernel.convolve.seconds");
        h.record(1.0);
        h.record(3.0);
        h.record(0.25);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 4.25);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.buckets[log_bucket_index(3.0)], 1);

        let other = reg.log_histogram("other");
        other.record(1.0);
        h.merge_from(&other);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 5.25);
        assert_eq!(s.buckets[32], 2);

        let d = LogHistogram::detached();
        d.record(5.0);
        assert_eq!(d.count(), 0);
        assert_eq!(d.snapshot().count, 0);
        assert!(reg.log_histograms_snapshot().contains_key("other"));
    }

    #[test]
    fn log_histogram_concurrent_records_stay_consistent() {
        let reg = MetricsRegistry::default();
        let h = reg.log_histogram("x");
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 + 0.5);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4000);
        let expect: f64 = (0..4000).map(|i| i as f64 + 0.5).sum();
        assert_eq!(snap.sum, expect);
    }

    #[test]
    fn histogram_summarizes_and_detached_is_noop() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("pep.group_size");
        for x in 1..=100 {
            h.record(x as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);

        let d = Histogram::detached();
        d.record(5.0);
        assert_eq!(d.count(), 0);
        assert_eq!(d.summary().count, 0);
    }
}
