//! Structured span tracing: lock-free per-lane buffers, monotonic
//! timestamps, and kernel-call aggregation.
//!
//! The model has three pieces:
//!
//! * [`Trace`] — a cheaply clonable handle for one traced run (or one
//!   serve job). Holds the epoch [`Instant`] all span timestamps are
//!   relative to, the runtime-switchable [trace level](TraceLevel), and
//!   the collector every buffer flushes into. A disabled trace
//!   (`Trace::disabled()`) is a `None` inside — every operation
//!   early-outs.
//! * [`TraceBuffer`] — one per *lane* (lane 0 is the orchestration
//!   thread, lanes 1..N are workers). Recording a span is two
//!   `Instant::now()` calls and a `Vec` push into thread-local storage:
//!   no locks, no atomics on the hot path. A buffer created from a
//!   disabled trace (or at a level below the span's) makes
//!   [`begin`](TraceBuffer::begin) a single predictable branch on a
//!   cached byte — strictly cheaper than the one-relaxed-atomic-load
//!   contract the overhead guard enforces.
//! * [`SpanRecord`] — a closed span: name, category, start/duration in
//!   nanoseconds since the trace epoch, lane, and up to
//!   [`MAX_SPAN_ARGS`] attached counters (combinations, event-group
//!   sizes, arena checkouts, …).
//!
//! Kernel calls are special-cased: they are frequent enough that a span
//! per call is only recorded at [`TraceLevel::Kernels`] (and capped per
//! lane, see [`SPAN_CAP_PER_LANE`]), but *aggregates* — call count,
//! total nanoseconds, and a log2 latency histogram per
//! [`KernelKind`] — are collected from [`TraceLevel::Nodes`] up, so
//! kernel attribution does not require drowning in per-call spans.
//!
//! Spans within one lane are properly nested in time (each lane is one
//! thread), so exporters reconstruct parent links by interval
//! containment; no parent pointers are recorded on the hot path.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{LogHistogramSnapshot, LOG_HISTOGRAM_BUCKETS};

/// How much a trace records. Levels are cumulative: each one includes
/// everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// Nothing is recorded; every span site is a cached-byte compare.
    Off = 0,
    /// Analysis phases and scheduler waves (tens to hundreds of spans).
    Phases = 1,
    /// Plus per-node and per-supergate evaluation spans.
    Nodes = 2,
    /// Plus a span per dist-kernel call (profiling runs only; capped
    /// per lane). Kernel *aggregates* are collected at every level
    /// above [`Off`](TraceLevel::Off).
    Kernels = 3,
}

impl TraceLevel {
    fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Phases,
            2 => TraceLevel::Nodes,
            _ => TraceLevel::Kernels,
        }
    }
}

/// Maximum number of counters attached to one span.
pub const MAX_SPAN_ARGS: usize = 4;

/// Per-lane cap on recorded spans; further spans are counted as dropped
/// instead of growing the buffer without bound (a kernel-level trace of
/// a large circuit can see millions of calls).
pub const SPAN_CAP_PER_LANE: usize = 1 << 18;

/// Up to [`MAX_SPAN_ARGS`] named counters attached to a span,
/// allocation-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanArgs {
    len: u8,
    items: [(&'static str, u64); MAX_SPAN_ARGS],
}

impl SpanArgs {
    /// No arguments.
    pub const fn new() -> SpanArgs {
        SpanArgs {
            len: 0,
            items: [("", 0); MAX_SPAN_ARGS],
        }
    }

    /// Adds a counter; silently ignored beyond [`MAX_SPAN_ARGS`].
    pub fn push(&mut self, key: &'static str, value: u64) {
        if (self.len as usize) < MAX_SPAN_ARGS {
            self.items[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// Builder-style [`push`](SpanArgs::push).
    pub fn with(mut self, key: &'static str, value: u64) -> SpanArgs {
        self.push(key, value);
        self
    }

    /// The attached counters, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.items[..self.len as usize].iter().copied()
    }

    /// Whether no counters are attached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One closed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (phase name, `"wave"`, node name, kernel name, …).
    pub name: Cow<'static, str>,
    /// Category: `"phase"`, `"wave"`, `"node"`, `"supergate"`,
    /// `"kernel"`, ….
    pub cat: &'static str,
    /// Start, in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Lane (0 = orchestration thread, 1..N = workers).
    pub lane: u32,
    /// Attached counters.
    pub args: SpanArgs,
}

/// The dist kernels the engine attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum KernelKind {
    /// Event-group convolution (`convolve` / `convolve_into`).
    Convolve = 0,
    /// Statistical max of independent groups.
    Max = 1,
    /// Statistical min of independent groups.
    Min = 2,
    /// Probability-weighted accumulation of conditioned outputs.
    Accumulate = 3,
    /// Event-count reduction (`coarsen`).
    Coarsen = 4,
}

/// Number of [`KernelKind`] variants.
pub const KERNEL_KINDS: usize = 5;

impl KernelKind {
    /// All kinds, in discriminant order.
    pub const ALL: [KernelKind; KERNEL_KINDS] = [
        KernelKind::Convolve,
        KernelKind::Max,
        KernelKind::Min,
        KernelKind::Accumulate,
        KernelKind::Coarsen,
    ];

    /// Stable lowercase name (used in span names and metric names).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Convolve => "convolve",
            KernelKind::Max => "max",
            KernelKind::Min => "min",
            KernelKind::Accumulate => "accumulate",
            KernelKind::Coarsen => "coarsen",
        }
    }
}

/// Aggregated statistics for one kernel across one trace (or one lane
/// before flushing): call count, total wall nanoseconds, and a log2
/// latency histogram over nanoseconds.
#[derive(Debug, Clone)]
pub struct KernelAgg {
    /// Number of calls.
    pub calls: u64,
    /// Total nanoseconds across calls.
    pub total_ns: u64,
    /// log2 bucket counts over call nanoseconds (same bucket layout as
    /// [`crate::metrics::LogHistogram`]).
    pub buckets: [u64; LOG_HISTOGRAM_BUCKETS],
}

impl Default for KernelAgg {
    fn default() -> Self {
        KernelAgg {
            calls: 0,
            total_ns: 0,
            buckets: [0; LOG_HISTOGRAM_BUCKETS],
        }
    }
}

impl KernelAgg {
    fn merge_from(&mut self, other: &KernelAgg) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The aggregate as a histogram snapshot over *seconds* (the unit
    /// the metrics registry and Prometheus exposition use).
    ///
    /// Bucket counts are re-bucketed exactly: a nanosecond value in
    /// log2 bucket `i` lands in the seconds bucket of `2^(i-32)` ns.
    pub fn to_seconds_snapshot(&self) -> LogHistogramSnapshot {
        let mut out = LogHistogramSnapshot::default();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // Representative value for bucket i: its lower bound
            // 2^(i-32) nanoseconds, converted to seconds.
            let rep_ns = (i as f64 - 32.0).exp2();
            let rep_s = rep_ns * 1e-9;
            out.buckets[crate::metrics::log_bucket_index(rep_s)] += c;
        }
        out.count = self.calls;
        out.sum = self.total_ns as f64 * 1e-9;
        out
    }
}

#[derive(Debug, Default)]
struct TraceCollected {
    spans: Vec<SpanRecord>,
    kernels: [KernelAgg; KERNEL_KINDS],
}

#[derive(Debug)]
struct TraceInner {
    level: AtomicU8,
    epoch: Instant,
    collected: Mutex<TraceCollected>,
    dropped: AtomicU64,
}

/// A handle for one traced run. Clones share state; `Trace::disabled()`
/// (and `Trace::default()`) never record anything.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// An enabled trace recording at `level`, with its epoch at *now*.
    pub fn new(level: TraceLevel) -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                level: AtomicU8::new(level as u8),
                epoch: Instant::now(),
                collected: Mutex::default(),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// The inert trace: level is always [`TraceLevel::Off`], buffers
    /// are disabled, recording is free.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// Whether this handle can record anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The current level — one relaxed atomic load (the contract every
    /// span site outside a buffer relies on).
    pub fn level(&self) -> TraceLevel {
        match &self.inner {
            None => TraceLevel::Off,
            Some(inner) => TraceLevel::from_u8(inner.level.load(Ordering::Relaxed)),
        }
    }

    /// Runtime-switches the level. Buffers cache the level at creation,
    /// so a switch takes effect for buffers handed out afterwards.
    pub fn set_level(&self, level: TraceLevel) {
        if let Some(inner) = &self.inner {
            inner.level.store(level as u8, Ordering::Relaxed);
        }
    }

    /// A recording buffer for `lane`, capturing the current level.
    /// Disabled traces hand out inert buffers.
    pub fn buffer(&self, lane: u32) -> TraceBuffer {
        match &self.inner {
            None => TraceBuffer::default(),
            Some(inner) => TraceBuffer {
                level: inner.level.load(Ordering::Relaxed),
                lane,
                epoch: Some(inner.epoch),
                spans: Vec::new(),
                dropped: 0,
                kernels: Default::default(),
                shared: Some(Arc::clone(inner)),
            },
        }
    }

    /// Records one already-measured span (used by the phase machinery
    /// on the orchestration thread; takes the collector lock, so not
    /// for hot paths).
    pub fn record_span(&self, record: SpanRecord) {
        if let Some(inner) = &self.inner {
            let mut c = lock_recover(&inner.collected);
            if c.spans.len() < SPAN_CAP_PER_LANE * 4 {
                c.spans.push(record);
            } else {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Nanoseconds from the trace epoch to `t` (saturating at zero).
    pub fn elapsed_ns(&self, t: Instant) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => t.saturating_duration_since(inner.epoch).as_nanos() as u64,
        }
    }

    /// All collected spans, sorted by `(lane, start, -dur)` — the order
    /// the exporters want. Buffers must have been
    /// [flushed](TraceBuffer::flush) first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let mut spans = lock_recover(&inner.collected).spans.clone();
                sort_spans(&mut spans);
                spans
            }
        }
    }

    /// Aggregated kernel statistics, indexed by [`KernelKind`].
    pub fn kernel_aggregates(&self) -> [KernelAgg; KERNEL_KINDS] {
        match &self.inner {
            None => Default::default(),
            Some(inner) => lock_recover(&inner.collected).kernels.clone(),
        }
    }

    /// Spans dropped because a lane hit [`SPAN_CAP_PER_LANE`].
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Sorts spans into exporter order: by lane, then start time, then
/// longest-first so parents precede children at equal starts.
pub fn sort_spans(spans: &mut [SpanRecord]) {
    spans.sort_by(|a, b| {
        (a.lane, a.start_ns, std::cmp::Reverse(a.dur_ns)).cmp(&(
            b.lane,
            b.start_ns,
            std::cmp::Reverse(b.dur_ns),
        ))
    });
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An open span: returned by [`TraceBuffer::begin`], consumed by
/// [`TraceBuffer::end`]. A token from a disabled site is inert.
#[derive(Debug)]
#[must_use = "pass the token back to TraceBuffer::end to close the span"]
pub struct SpanToken {
    start: Option<Instant>,
}

impl SpanToken {
    /// The inert token (site was disabled).
    pub const fn off() -> SpanToken {
        SpanToken { start: None }
    }

    /// Whether the span is actually being timed.
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }
}

/// Per-lane span recorder. See the [module docs](self) for the model.
///
/// `TraceBuffer::default()` is the inert buffer: `begin` returns the
/// inert token after one byte compare, `end` is a no-op.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    level: u8,
    lane: u32,
    epoch: Option<Instant>,
    spans: Vec<SpanRecord>,
    dropped: u64,
    kernels: [KernelAgg; KERNEL_KINDS],
    shared: Option<Arc<TraceInner>>,
}

impl TraceBuffer {
    /// Whether spans at `level` are recorded by this buffer.
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        self.level >= level as u8
    }

    /// Whether the buffer records anything at all (kernel aggregates
    /// included).
    #[inline]
    pub fn is_on(&self) -> bool {
        self.level != 0
    }

    /// This buffer's lane.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Opens a span at `level`. The disabled path is one byte compare.
    #[inline]
    pub fn begin(&self, level: TraceLevel) -> SpanToken {
        if self.level < level as u8 {
            return SpanToken::off();
        }
        SpanToken {
            start: Some(Instant::now()),
        }
    }

    /// Closes `token`, recording a span with `name`/`cat`/`args`.
    pub fn end(
        &mut self,
        token: SpanToken,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        args: SpanArgs,
    ) {
        let Some(start) = token.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let Some(epoch) = self.epoch else { return };
        if self.spans.len() >= SPAN_CAP_PER_LANE {
            self.dropped += 1;
            return;
        }
        self.spans.push(SpanRecord {
            name: name.into(),
            cat,
            start_ns: start.saturating_duration_since(epoch).as_nanos() as u64,
            dur_ns,
            lane: self.lane,
            args,
        });
    }

    /// Opens a kernel-call measurement: timed from
    /// [`TraceLevel::Nodes`] up (aggregation only), with a per-call
    /// span recorded only at [`TraceLevel::Kernels`]. Below `Nodes` the
    /// call is one byte compare — kernel calls are the engine's
    /// innermost loop, so a cheap `Phases` trace must not pay two
    /// clock reads per call.
    #[inline]
    pub fn begin_kernel(&self) -> SpanToken {
        if self.level < TraceLevel::Nodes as u8 {
            return SpanToken::off();
        }
        SpanToken {
            start: Some(Instant::now()),
        }
    }

    /// Closes a kernel-call measurement: always aggregates; records a
    /// span (with the output event-group size attached) at
    /// [`TraceLevel::Kernels`].
    pub fn end_kernel(&mut self, token: SpanToken, kind: KernelKind, out_events: usize) {
        let Some(start) = token.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let agg = &mut self.kernels[kind as usize];
        agg.calls += 1;
        agg.total_ns += dur_ns;
        agg.buckets[crate::metrics::log_bucket_index(dur_ns as f64)] += 1;
        if self.level >= TraceLevel::Kernels as u8 {
            if self.spans.len() >= SPAN_CAP_PER_LANE {
                self.dropped += 1;
                return;
            }
            let Some(epoch) = self.epoch else { return };
            self.spans.push(SpanRecord {
                name: Cow::Borrowed(kind.name()),
                cat: "kernel",
                start_ns: start.saturating_duration_since(epoch).as_nanos() as u64,
                dur_ns,
                lane: self.lane,
                args: SpanArgs::new().with("events", out_events as u64),
            });
        }
    }

    /// Moves everything recorded so far into the shared trace
    /// collector. Called by the analyzer when a run finishes (and
    /// harmless to call repeatedly).
    pub fn flush(&mut self) {
        let Some(shared) = &self.shared else {
            self.spans.clear();
            return;
        };
        let mut c = lock_recover(&shared.collected);
        c.spans.append(&mut self.spans);
        for (total, mine) in c.kernels.iter_mut().zip(self.kernels.iter_mut()) {
            total.merge_from(mine);
            *mine = KernelAgg::default();
        }
        if self.dropped > 0 {
            shared.dropped.fetch_add(self.dropped, Ordering::Relaxed);
            self.dropped = 0;
        }
    }

    /// Number of spans currently buffered (pre-flush); test hook.
    pub fn buffered(&self) -> usize {
        self.spans.len()
    }
}

impl Drop for TraceBuffer {
    fn drop(&mut self) {
        if !self.spans.is_empty() || self.kernels.iter().any(|k| k.calls > 0) {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.level(), TraceLevel::Off);
        let mut b = t.buffer(1);
        assert!(!b.is_on());
        let tok = b.begin(TraceLevel::Phases);
        assert!(!tok.is_live());
        b.end(tok, "x", "phase", SpanArgs::new());
        let tok = b.begin_kernel();
        b.end_kernel(tok, KernelKind::Convolve, 10);
        b.flush();
        assert!(t.spans().is_empty());
        assert_eq!(t.kernel_aggregates()[0].calls, 0);
    }

    #[test]
    fn levels_gate_span_recording() {
        let t = Trace::new(TraceLevel::Phases);
        let mut b = t.buffer(0);
        assert!(b.enabled(TraceLevel::Phases));
        assert!(!b.enabled(TraceLevel::Nodes));
        let tok = b.begin(TraceLevel::Nodes);
        b.end(tok, "node", "node", SpanArgs::new());
        assert_eq!(b.buffered(), 0, "node span gated off at Phases level");
        let tok = b.begin(TraceLevel::Phases);
        b.end(tok, "wave", "wave", SpanArgs::new().with("width", 7));
        assert_eq!(b.buffered(), 1);
        b.flush();
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "wave");
        assert_eq!(spans[0].args.iter().next(), Some(("width", 7)));
    }

    #[test]
    fn kernel_measurement_is_off_below_nodes_level() {
        let t = Trace::new(TraceLevel::Phases);
        let mut b = t.buffer(2);
        let tok = b.begin_kernel();
        assert!(!tok.is_live());
        b.end_kernel(tok, KernelKind::Max, 20);
        b.flush();
        assert_eq!(t.kernel_aggregates()[KernelKind::Max as usize].calls, 0);
    }

    #[test]
    fn kernel_aggregates_survive_below_kernel_level() {
        let t = Trace::new(TraceLevel::Nodes);
        let mut b = t.buffer(2);
        for _ in 0..5 {
            let tok = b.begin_kernel();
            b.end_kernel(tok, KernelKind::Max, 20);
        }
        assert_eq!(b.buffered(), 0, "no per-call spans below Kernels level");
        b.flush();
        let aggs = t.kernel_aggregates();
        assert_eq!(aggs[KernelKind::Max as usize].calls, 5);
        assert!(aggs[KernelKind::Max as usize].total_ns > 0);
        let bucket_total: u64 = aggs[KernelKind::Max as usize].buckets.iter().sum();
        assert_eq!(bucket_total, 5);
    }

    #[test]
    fn kernel_level_records_spans_and_flush_merges() {
        let t = Trace::new(TraceLevel::Kernels);
        let mut b1 = t.buffer(1);
        let mut b2 = t.buffer(2);
        let tok = b1.begin_kernel();
        b1.end_kernel(tok, KernelKind::Convolve, 300);
        let tok = b2.begin_kernel();
        b2.end_kernel(tok, KernelKind::Convolve, 20);
        b1.flush();
        b2.flush();
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.cat == "kernel"));
        assert_eq!(spans[0].lane, 1);
        assert_eq!(spans[1].lane, 2);
        assert_eq!(
            t.kernel_aggregates()[KernelKind::Convolve as usize].calls,
            2
        );
    }

    #[test]
    fn buffer_drop_flushes() {
        let t = Trace::new(TraceLevel::Phases);
        {
            let mut b = t.buffer(0);
            let tok = b.begin(TraceLevel::Phases);
            b.end(tok, "wave", "wave", SpanArgs::new());
        }
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn set_level_switches_future_buffers() {
        let t = Trace::new(TraceLevel::Off);
        assert!(!t.buffer(0).is_on());
        t.set_level(TraceLevel::Nodes);
        assert_eq!(t.level(), TraceLevel::Nodes);
        assert!(t.buffer(0).enabled(TraceLevel::Nodes));
    }

    #[test]
    fn span_args_cap_silently() {
        let mut a = SpanArgs::new();
        for i in 0..10 {
            a.push("k", i);
        }
        assert_eq!(a.iter().count(), MAX_SPAN_ARGS);
    }

    #[test]
    fn record_span_and_sort_order() {
        let t = Trace::new(TraceLevel::Phases);
        t.record_span(SpanRecord {
            name: Cow::Borrowed("b"),
            cat: "phase",
            start_ns: 10,
            dur_ns: 5,
            lane: 0,
            args: SpanArgs::new(),
        });
        t.record_span(SpanRecord {
            name: Cow::Borrowed("a"),
            cat: "phase",
            start_ns: 10,
            dur_ns: 50,
            lane: 0,
            args: SpanArgs::new(),
        });
        let spans = t.spans();
        assert_eq!(spans[0].name, "a", "longer span first at equal start");
    }
}
