//! Golden-file tests pinning the exporter wire formats: the Chrome
//! trace-event JSON and the Prometheus text exposition are byte-compared
//! against checked-in fixtures so a format drift is a reviewed diff, not
//! a silent change. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p pep-obs --test golden`.

use pep_obs::{chrome_trace_json, MetricsRegistry, PromWriter, SpanArgs, SpanRecord};
use std::borrow::Cow;
use std::path::Path;

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("update golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "exporter output drifted from {}; rerun with UPDATE_GOLDEN=1 if intended",
        path.display()
    );
}

fn span(
    name: &'static str,
    cat: &'static str,
    lane: u32,
    start_ns: u64,
    dur_ns: u64,
    args: SpanArgs,
) -> SpanRecord {
    SpanRecord {
        name: Cow::Borrowed(name),
        cat,
        start_ns,
        dur_ns,
        lane,
        args,
    }
}

/// A small deterministic trace: an orchestrator phase containing a wave,
/// and a worker lane with a node span containing a kernel span. Already
/// in exporter order (lane, start, -dur).
fn fixture_spans() -> Vec<SpanRecord> {
    vec![
        span("analysis", "phase", 0, 0, 10_000, SpanArgs::new()),
        span(
            "wave",
            "wave",
            0,
            1_000,
            8_000,
            SpanArgs::new().with("wave", 3).with("width", 12),
        ),
        span(
            "n42",
            "node",
            1,
            1_500,
            6_000,
            SpanArgs::new().with("combinations", 4),
        ),
        span(
            "convolve",
            "kernel",
            1,
            2_000,
            1_500,
            SpanArgs::new().with("out_events", 320),
        ),
    ]
}

#[test]
fn chrome_trace_json_matches_golden() {
    let json = chrome_trace_json(&fixture_spans(), 2);
    check_golden("trace.json", &json);
    // Schema spot checks independent of the fixture bytes.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\","));
    assert!(json.contains("\"dropped_spans\":2"));
    assert!(json.contains("\"ph\":\"M\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.ends_with("]}"));
}

#[test]
fn prometheus_exposition_matches_golden() {
    let registry = MetricsRegistry::default();
    let h = registry.log_histogram("golden");
    // Deterministic samples: 0.75 → (0.5,1] bucket, 3.0 → (2,4],
    // 3_000_000.0 → (2^21, 2^22].
    h.record(0.75);
    h.record(3.0);
    h.record(3_000_000.0);

    let mut w = PromWriter::new();
    w.counter("pep_test_jobs_total", "Jobs ever submitted.", 17);
    w.gauge("pep_test_queue_depth", "Queued jobs right now.", 0.0);
    w.counter_family(
        "pep_test_phase_seconds",
        "Wall seconds per phase.",
        "phase",
        &[("analysis".to_owned(), 1.25), ("levelize".to_owned(), 2.0)],
    );
    w.histogram(
        "pep_test_job_seconds",
        "Job latency in seconds.",
        &h.snapshot(),
    );
    let text = w.finish();
    check_golden("metrics.prom", &text);

    // Exposition invariants independent of the fixture bytes.
    assert!(text.contains("# TYPE pep_test_jobs_total counter"));
    assert!(text.contains("# TYPE pep_test_queue_depth gauge"));
    assert!(text.contains("# TYPE pep_test_job_seconds histogram"));
    assert!(text.contains("pep_test_job_seconds_bucket{le=\"+Inf\"} 3\n"));
    assert!(text.contains("pep_test_job_seconds_count 3\n"));
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "malformed exposition line: {line}"
        );
    }
}
