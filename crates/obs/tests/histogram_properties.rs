//! Property-based tests of the log2-bucket histogram: bucket boundaries
//! are exact (every finite value lands in exactly one bucket, inside its
//! bounds), merge is equivalent to recording the union, and `_sum` /
//! `_count` stay consistent under concurrent recording.

use pep_obs::{log_bucket_index, log_bucket_upper_bound, MetricsRegistry, LOG_HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Values spanning subnormals to overflow, plus the exact powers of two
/// that sit on bucket boundaries. (The vendored proptest has no
/// `prop_oneof`, so the branch is itself a generated index.)
fn arb_value() -> impl Strategy<Value = f64> {
    (0u8..8, -40f64..40f64, -35i64..35i64, 0u8..3u8).prop_map(|(branch, mag, k, off)| {
        match branch {
            // Ordinary positive magnitudes across the bucket range.
            0..=2 => mag.exp2(),
            // Exact bucket boundaries (2^k) and their neighbours.
            3..=5 => {
                let b = (k as f64).exp2();
                match off {
                    0 => b,
                    1 => b * (1.0 + f64::EPSILON),
                    _ => b * (1.0 - f64::EPSILON),
                }
            }
            // Underflow/overflow extremes.
            _ => [
                0.0,
                f64::MIN_POSITIVE / 2.0,
                -1.0,
                f64::MAX,
                f64::INFINITY,
                1.0,
            ][(k.rem_euclid(6)) as usize],
        }
    })
}

proptest! {
    /// The bucket index is within range, and the value sits strictly
    /// below its bucket's upper bound and at-or-above the previous
    /// bucket's bound (except in the underflow bucket).
    #[test]
    fn value_lands_inside_its_bucket_bounds(v in arb_value()) {
        let i = log_bucket_index(v);
        prop_assert!(i < LOG_HISTOGRAM_BUCKETS);
        if v.is_finite() {
            prop_assert!(v < log_bucket_upper_bound(i));
        }
        if i > 0 {
            prop_assert!(v >= log_bucket_upper_bound(i - 1));
        }
    }

    /// Recording puts each value in exactly one bucket: after recording
    /// n values the per-bucket counts total n, and each value
    /// incremented precisely the bucket `log_bucket_index` names.
    #[test]
    fn each_record_increments_exactly_one_bucket(
        values in prop::collection::vec(arb_value(), 1..64)
    ) {
        let registry = MetricsRegistry::default();
        let h = registry.log_histogram("test.h");
        let mut expected = [0u64; LOG_HISTOGRAM_BUCKETS];
        for &v in &values {
            h.record(v);
            expected[log_bucket_index(v)] += 1;
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets, expected);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    /// Merging histogram B into A is the same as recording A's and B's
    /// values into one histogram: identical buckets and count, sum equal
    /// up to f64 re-association.
    #[test]
    fn merge_equals_recording_the_union(
        a in prop::collection::vec(0.001f64..1e6, 0..32),
        b in prop::collection::vec(0.001f64..1e6, 0..32),
    ) {
        let registry = MetricsRegistry::default();
        let ha = registry.log_histogram("a");
        let hb = registry.log_histogram("b");
        let hu = registry.log_histogram("union");
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge_from(&hb);
        let merged = ha.snapshot();
        let union = hu.snapshot();
        prop_assert_eq!(merged.buckets, union.buckets);
        prop_assert_eq!(merged.count, union.count);
        let scale = union.sum.abs().max(1.0);
        prop_assert!((merged.sum - union.sum).abs() / scale < 1e-9);
    }
}

/// Four threads hammering one histogram: once they join, `count` equals
/// the number of records, the buckets total `count`, and `sum` matches
/// the recorded total (CAS-loop sum loses nothing).
#[test]
fn concurrent_recording_keeps_sum_and_count_consistent() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5_000;
    let registry = MetricsRegistry::default();
    let h = registry.log_histogram("concurrent");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct per-thread values so the expected sum is
                    // exact in f64 (small integers).
                    h.record((t * PER_THREAD + i) as f64 % 97.0);
                }
            });
        }
    });
    let snap = h.snapshot();
    let n = (THREADS * PER_THREAD) as u64;
    let expected_sum: f64 = (0..THREADS * PER_THREAD).map(|i| (i as f64) % 97.0).sum();
    assert_eq!(snap.count, n);
    assert_eq!(snap.buckets.iter().sum::<u64>(), n);
    assert!(
        (snap.sum - expected_sum).abs() < 1e-6,
        "sum {} != expected {}",
        snap.sum,
        expected_sum
    );
}
