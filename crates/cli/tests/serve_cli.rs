//! CLI ↔ daemon integration: `psta client` against an in-process
//! server, and the Ctrl-C degrade path of `psta analyze`.
//!
//! Serialized on one mutex — the signal latch is process-global.

use psta_cli::{run, ErrorKind};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn run_to_string(argv: &[&str]) -> Result<String, psta_cli::CliError> {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let result = run(&argv, &mut out);
    let text = String::from_utf8(out).expect("UTF-8 output");
    result.map(|()| text)
}

#[test]
fn client_drives_a_daemon_end_to_end() {
    let _serial = serial();
    let handle = pep_serve::serve(pep_serve::ServeConfig::default()).expect("bind");
    let addr = handle.local_addr().to_string();

    let health = run_to_string(&["client", "health", "--addr", &addr]).unwrap();
    assert_eq!(health.trim(), "ok");
    let ready = run_to_string(&["client", "ready", "--addr", &addr]).unwrap();
    assert_eq!(ready.trim(), "ready");

    let done = run_to_string(&["client", "analyze", "sample:c17", "--addr", &addr]).unwrap();
    assert!(done.contains("\"state\":\"done\""), "{done}");
    assert!(done.contains("groups_digest"), "{done}");

    // A detached job can be polled and (once terminal) re-fetched.
    let queued = run_to_string(&[
        "client",
        "analyze",
        "sample:mux2",
        "--detach",
        "--addr",
        &addr,
    ])
    .unwrap();
    let id_at = queued.find("\"id\":").expect("job id") + "\"id\":".len();
    let id: String = queued[id_at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let polled = run_to_string(&["client", "job", &id, "--addr", &addr]).unwrap();
        if polled.contains("\"state\":\"done\"") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never finished: {polled}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Cancelling a finished job is a conflict, surfaced as exit 6.
    let err = run_to_string(&["client", "cancel", &id, "--addr", &addr]).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Analysis);
    assert!(err.to_string().contains("409"), "{err}");

    // A local .bench file is shipped inline; the daemon never sees the
    // path.
    let bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
    let path = std::env::temp_dir().join("psta-client-inline.bench");
    std::fs::write(&path, bench).unwrap();
    let inline =
        run_to_string(&["client", "analyze", path.to_str().unwrap(), "--addr", &addr]).unwrap();
    assert!(inline.contains("psta-client-inline"), "{inline}");
    assert!(inline.contains("\"state\":\"done\""), "{inline}");
    std::fs::remove_file(&path).ok();

    // Transport failures are I/O-class (exit 3), not usage errors.
    drop(handle.shutdown_and_join());
    let err = run_to_string(&["client", "health", "--addr", &addr]).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Io);
}

#[test]
fn interrupted_analyze_prints_partial_report_and_exits_7() {
    let _serial = serial();
    use pep_sta::cancel::{note_signal, reset_signal_state};
    use pep_sta::CancelState;

    reset_signal_state();
    // What the handler does on Ctrl-C. Latching *before* the run makes
    // the degrade land at the first poll point — deterministic, where a
    // mid-run signal would race the (fast) analysis.
    note_signal(CancelState::Degrade);
    let argv: Vec<String> = ["analyze", "profile:s5378", "--deadline-ms", "60000"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let err = run(&argv, &mut out).unwrap_err();
    reset_signal_state();

    assert_eq!(err.kind(), ErrorKind::Budget);
    assert_eq!(err.exit_code(), 7);
    assert!(err.to_string().contains("partial"), "{err}");
    let text = String::from_utf8(out).unwrap();
    // The partial report still came out, and says why it is partial.
    assert!(text.contains("mean"), "table printed: {text}");
    assert!(text.contains("warning:"), "{text}");
    assert!(text.contains("cancel."), "coded cancel warning: {text}");
}

#[test]
fn usage_mentions_serve_and_client() {
    let text = run_to_string(&[]).unwrap();
    for needle in ["serve", "client", "--grace-ms", "--verbose-warnings"] {
        assert!(text.contains(needle), "usage lists {needle}");
    }
}
