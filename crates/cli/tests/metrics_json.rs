//! End-to-end checks of the global observability flags: the
//! `--metrics-json` report must agree with what an independent in-process
//! analysis of the same circuit reports through `AnalysisStats`.

use pep_celllib::{DelayModel, Timing};
use pep_core::AnalysisConfig;
use pep_obs::{RunReport, Session};

/// The ISCAS-85 c17 benchmark in `.bench` form.
const C17_BENCH: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

fn run_cli(argv: &[&str]) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    psta_cli::run(&argv, &mut out).expect("cli run succeeds");
    String::from_utf8(out).expect("reports are UTF-8")
}

#[test]
fn analyze_metrics_json_matches_analysis_stats() {
    let dir = std::env::temp_dir().join("psta_metrics_json_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench_path = dir.join("c17.bench");
    std::fs::write(&bench_path, C17_BENCH).unwrap();
    let json_path = dir.join("report.json");

    run_cli(&[
        "analyze",
        bench_path.to_str().unwrap(),
        "--metrics-json",
        json_path.to_str().unwrap(),
    ]);
    let report = RunReport::from_json(&std::fs::read_to_string(&json_path).unwrap())
        .expect("well-formed report JSON");

    // Reference run: same circuit, same defaults (seed 1 is the CLI
    // default), observed into a fresh session.
    let netlist = pep_netlist::parse_bench("c17", C17_BENCH).unwrap();
    let timing = Timing::annotate(&netlist, &DelayModel::dac2001(1));
    let obs = Session::new();
    let analysis = pep_core::analyze_observed(&netlist, &timing, &AnalysisConfig::default(), &obs);
    let stats = *analysis.stats();

    // The CLI report's counters are the same single source of truth the
    // reference's AnalysisStats were derived from.
    assert_eq!(report.counters["pep.supergates"], stats.supergates as u64);
    assert_eq!(
        report.counters["pep.stems_conditioned"],
        stats.stems_conditioned as u64
    );
    assert_eq!(
        report.counters["pep.stems_filtered"],
        stats.stems_filtered as u64
    );
    assert_eq!(
        report.counters["pep.hybrid_evaluations"],
        stats.hybrid_evaluations as u64
    );
    let dropped = report.gauges["pep.dropped_mass"];
    assert!(
        (dropped - stats.dropped_mass).abs() < 1e-12,
        "dropped mass {dropped} vs stats {}",
        stats.dropped_mass
    );
    // And both agree with the reference session's registry.
    let reference = obs.report("reference");
    assert_eq!(report.counters, reference.counters);

    // Acceptance: a report carries a real phase taxonomy and metric set.
    assert!(
        report.phase_count() >= 5,
        "expected >= 5 distinct phases, got {}: {:?}",
        report.phase_count(),
        report.phases
    );
    assert!(
        report.metric_count() >= 8,
        "expected >= 8 distinct metrics, got {}",
        report.metric_count()
    );
    assert_eq!(report.tool, "psta");
    assert_eq!(report.counters["pep.nodes_evaluated"], 6, "c17 has 6 gates");
}

#[test]
fn timing_and_verbose_flags_render_reports() {
    let text = run_cli(&["analyze", "sample:c17", "--timing"]);
    assert!(text.contains("phases:"));
    assert!(text.contains("propagate"));
    assert!(!text.contains("counters:"), "--timing is phases only");

    let text = run_cli(&["-v", "analyze", "sample:c17"]);
    assert!(text.contains("run report: psta"));
    assert!(text.contains("pep.nodes_evaluated"));
    assert!(!text.contains("histograms:"), "-v omits histograms");

    let text = run_cli(&["-vv", "analyze", "sample:c17"]);
    assert!(text.contains("histograms:"));
    assert!(text.contains("pep.group_size"));
}

#[test]
fn mc_metrics_json_reports_progress() {
    let dir = std::env::temp_dir().join("psta_metrics_json_test");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("mc.json");
    run_cli(&[
        "mc",
        "sample:c17",
        "--runs",
        "250",
        "--metrics-json",
        json_path.to_str().unwrap(),
    ]);
    let report = RunReport::from_json(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    assert_eq!(report.counters["mc.runs_completed"], 250);
    assert_eq!(report.gauges["mc.runs_requested"], 250.0);
    assert!(report.gauges["mc.threads"] >= 1.0);
    assert!(report.histograms["mc.chunk_seconds"].count >= 1);
    let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert!(
        names.contains(&"parse") && names.contains(&"mc-baseline"),
        "{names:?}"
    );
}
