//! Circuit and library loading, including the `sample:`/`profile:`
//! pseudo-paths that make the CLI usable without any files.

use crate::args::{Args, CliError};
use pep_celllib::{DelayModel, Library, Timing};
use pep_netlist::generate::IscasProfile;
use pep_netlist::{generate, parse_bench, samples, Netlist};
use pep_obs::Session;

/// Resolves a circuit argument: a `.bench` path, `sample:<name>` or
/// `profile:<name>`.
pub fn load_circuit(spec: &str) -> Result<Netlist, CliError> {
    if let Some(name) = spec.strip_prefix("sample:") {
        return match name {
            "c17" => Ok(samples::c17()),
            "mux2" => Ok(samples::mux2()),
            "fig6" => Ok(samples::fig6()),
            other => Err(CliError::usage(format!(
                "unknown sample `{other}` (try c17, mux2, fig6)"
            ))),
        };
    }
    if let Some(name) = spec.strip_prefix("profile:") {
        let profile = profile_by_name(name)?;
        return Ok(generate::iscas_profile(profile));
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| CliError::usage(format!("cannot read `{spec}`: {e}")))?;
    let name = std::path::Path::new(spec)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit")
        .to_owned();
    Ok(parse_bench(&name, &text)?)
}

/// Looks an ISCAS89 profile up by name.
pub fn profile_by_name(name: &str) -> Result<IscasProfile, CliError> {
    IscasProfile::all()
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| {
            CliError::usage(format!(
                "unknown profile `{name}` (try s5378, s9234, s13207, s15850, s35932, s38584)"
            ))
        })
}

/// The circuit positional plus the shared `--seed`/`--library`
/// annotation options. Loading (file read/generation + parsing) is
/// recorded as the `parse` phase of `obs`.
pub fn load_annotated(args: &mut Args, obs: &Session) -> Result<(Netlist, Timing), CliError> {
    let spec = args
        .next_positional()
        .ok_or_else(|| CliError::usage("missing circuit argument"))?;
    let netlist = {
        let _phase = obs.phase("parse");
        load_circuit(&spec)?
    };
    let seed: u64 = args.parsed("--seed", 1)?;
    let timing = match args.option("--library")? {
        None => Timing::annotate(&netlist, &DelayModel::dac2001(seed)),
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::usage(format!("cannot read `{path}`: {e}")))?;
            let library =
                Library::parse(&text).map_err(|e| CliError::usage(format!("{path}: {e}")))?;
            library.annotate(&netlist, seed)
        }
    };
    Ok((netlist, timing))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_resolve() {
        assert_eq!(load_circuit("sample:c17").unwrap().gate_count(), 6);
        assert_eq!(load_circuit("sample:mux2").unwrap().gate_count(), 4);
        assert!(load_circuit("sample:bogus").is_err());
    }

    #[test]
    fn profiles_resolve() {
        assert_eq!(load_circuit("profile:s5378").unwrap().gate_count(), 2_779);
        assert!(load_circuit("profile:s999").is_err());
    }

    #[test]
    fn files_resolve() {
        let dir = std::env::temp_dir().join("psta_cli_input_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let nl = load_circuit(path.to_str().unwrap()).unwrap();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.name(), "tiny");
        assert!(load_circuit("/definitely/not/here.bench").is_err());
    }
}
