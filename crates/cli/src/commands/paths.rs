//! `psta paths` — K longest paths and the slack summary.

use crate::args::{Args, CliError};
use crate::input::load_annotated;
use pep_obs::Session;
use pep_sta::slack::{k_longest_paths, SlackReport};
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args, obs)?;
    let k: usize = args.parsed("-k", 5)?;
    if k == 0 {
        return Err(CliError::usage("`-k` must be positive"));
    }
    let period: Option<f64> = args.parsed_opt("--period")?;
    args.finish()?;

    let report = SlackReport::analyze(&netlist, &timing, period);
    writeln!(
        out,
        "clock period {:.3}, worst slack {:.3}",
        report.clock_period(),
        report.worst_slack()
    )
    .map_err(CliError::io)?;
    writeln!(out).map_err(CliError::io)?;

    for (i, p) in k_longest_paths(&netlist, &timing, k).iter().enumerate() {
        let names: Vec<&str> = p.nodes.iter().map(|&n| netlist.node_name(n)).collect();
        writeln!(
            out,
            "#{:<2} delay {:8.3}  {}",
            i + 1,
            p.delay,
            names.join(" -> ")
        )
        .map_err(CliError::io)?;
    }
    Ok(())
}
