//! `psta serve` — run the analysis daemon until SIGINT/SIGTERM.

use crate::args::{Args, CliError};
use pep_serve::{serve, ServeConfig};
use std::io::Write;
use std::time::Duration;

pub fn run<W: Write>(args: &mut Args, out: &mut W) -> Result<(), CliError> {
    let mut config = ServeConfig {
        follow_signals: true,
        ..ServeConfig::default()
    };
    if let Some(addr) = args.option("--addr")? {
        config.addr = addr;
    }
    config.workers = args.parsed("--workers", config.workers)?;
    if config.workers == 0 {
        return Err(CliError::usage("`--workers` must be positive"));
    }
    config.queue_capacity = args.parsed("--queue", config.queue_capacity)?;
    config.grace = Duration::from_millis(args.parsed("--grace-ms", 5000u64)?);
    config.cache_entries = args.parsed("--cache", config.cache_entries)?;
    args.finish()?;

    // `main` already installed the latching handler; the accept loop
    // polls the latch (follow_signals) and starts the drain script on
    // the first signal. A second signal hard-exits with status 130.
    let handle = serve(config).map_err(CliError::io)?;
    writeln!(out, "pep-serve listening on http://{}", handle.local_addr()).map_err(CliError::io)?;
    out.flush().map_err(CliError::io)?;

    let summary = handle.join();
    writeln!(out, "\n{}", summary.report.render_text(false).trim_end()).map_err(CliError::io)?;
    if summary.clean {
        Ok(())
    } else {
        Err(CliError::analysis(
            "drain left unterminated work (see report above)",
        ))
    }
}
