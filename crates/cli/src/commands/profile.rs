//! `psta profile` — run one analysis with span tracing on and export
//! the profile: Chrome trace-event JSON (Perfetto / `chrome://tracing`),
//! folded flamegraph stacks, and a top-N self-time table on stdout.

use crate::args::{Args, CliError};
use crate::commands::analysis_config;
use crate::input::load_annotated;
use pep_obs::{
    chrome_trace_json, folded_stacks, render_self_time_table, self_time_table, KernelKind, Session,
    Trace, TraceLevel,
};
use std::io::Write;

/// Parses a `--trace-level` value.
pub fn trace_level(s: &str) -> Result<TraceLevel, CliError> {
    match s {
        "phases" => Ok(TraceLevel::Phases),
        "nodes" => Ok(TraceLevel::Nodes),
        "kernels" => Ok(TraceLevel::Kernels),
        other => Err(CliError::usage(format!(
            "`--trace-level`: expected phases|nodes|kernels, got `{other}`"
        ))),
    }
}

/// Writes `text` to `path`, mapping failures to a usage-style error.
pub fn write_artifact(path: &str, text: &str) -> Result<(), CliError> {
    std::fs::write(path, text).map_err(|e| CliError::usage(format!("cannot write `{path}`: {e}")))
}

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args, obs)?;
    let config = analysis_config(args)?;
    let trace_out = args
        .option("--trace-out")?
        .unwrap_or_else(|| "psta-trace.json".to_owned());
    let folded_out = args
        .option("--folded-out")?
        .unwrap_or_else(|| "psta-trace.folded".to_owned());
    let level = match args.option("--trace-level")? {
        Some(s) => trace_level(&s)?,
        None => TraceLevel::Kernels,
    };
    let top: usize = args.parsed("--top", 15)?;
    args.finish()?;

    let trace = Trace::new(level);
    obs.set_trace(trace.clone());
    {
        let _phase = obs.phase("analyze");
        pep_core::try_analyze_observed(&netlist, &timing, &config, obs)?;
    }

    let spans = trace.spans();
    write_artifact(&trace_out, &chrome_trace_json(&spans, trace.dropped()))?;
    write_artifact(&folded_out, &folded_stacks(&spans))?;

    writeln!(
        out,
        "profiled {} ({} gates) at trace level {level:?}: {} spans{}",
        netlist.name(),
        netlist.gate_count(),
        spans.len(),
        if trace.dropped() > 0 {
            format!(" ({} dropped at the per-lane cap)", trace.dropped())
        } else {
            String::new()
        },
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "  trace  -> {trace_out}  (load at https://ui.perfetto.dev)\n  folded -> {folded_out}  (flamegraph.pl / inferno / speedscope)\n",
    )
    .map_err(CliError::io)?;

    writeln!(out, "top {top} spans by self time:").map_err(CliError::io)?;
    out.write_all(render_self_time_table(&self_time_table(&spans, top)).as_bytes())
        .map_err(CliError::io)?;

    // Kernel attribution survives even when per-call spans are gated
    // off (aggregation runs from `nodes` level up).
    let aggs = trace.kernel_aggregates();
    if aggs.iter().any(|a| a.calls > 0) {
        writeln!(out, "\nkernel aggregates:").map_err(CliError::io)?;
        for kind in KernelKind::ALL {
            let a = &aggs[kind as usize];
            if a.calls == 0 {
                continue;
            }
            writeln!(
                out,
                "  {:<12} {:>10} calls  {:>10.3}ms total  {:>8.0}ns/call",
                kind.name(),
                a.calls,
                a.total_ns as f64 / 1e6,
                a.total_ns as f64 / a.calls as f64,
            )
            .map_err(CliError::io)?;
        }
    }
    Ok(())
}
