//! `psta mc` — the Monte Carlo baseline.

use crate::args::{Args, CliError};
use crate::input::load_annotated;
use crate::report::{num, Table};
use pep_obs::Session;
use pep_sta::monte_carlo::{run_monte_carlo_observed, McConfig};
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args, obs)?;
    let runs: usize = args.parsed("--runs", 5_000)?;
    if runs == 0 {
        return Err(CliError::usage("`--runs` must be positive"));
    }
    let threads: usize = args.parsed("--threads", 0)?;
    let csv = args.flag("--csv");
    args.finish()?;

    let mc = run_monte_carlo_observed(
        &netlist,
        &timing,
        &McConfig {
            runs,
            threads,
            ..McConfig::default()
        },
        obs,
    );
    let elapsed = obs.total_of("mc-baseline").unwrap_or_default();

    let mut table = Table::new(vec!["node", "mean", "sigma", "bound%"], csv);
    for &po in netlist.primary_outputs() {
        table.row(vec![
            netlist.node_name(po).to_owned(),
            num(mc.mean(po)),
            num(mc.std(po)),
            if mc.error_bound(po).is_finite() {
                num(mc.error_bound(po) * 100.0)
            } else {
                "-".to_owned()
            },
        ]);
    }
    out.write_all(table.render().as_bytes())
        .map_err(CliError::io)?;
    if !csv {
        writeln!(out, "\n{runs} runs in {elapsed:.0?}").map_err(CliError::io)?;
    }
    Ok(())
}
