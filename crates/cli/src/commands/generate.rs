//! `psta generate` — emit a synthetic `.bench` circuit.

use crate::args::{Args, CliError};
use crate::input::profile_by_name;
use pep_netlist::generate::{iscas_profile, random_circuit, RandomCircuitSpec};
use pep_netlist::to_bench;
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W) -> Result<(), CliError> {
    let netlist = if let Some(profile) = args.option("--profile")? {
        let profile = profile_by_name(&profile)?;
        args.finish()?;
        iscas_profile(profile)
    } else {
        let mut spec = RandomCircuitSpec {
            name: "generated".into(),
            ..RandomCircuitSpec::default()
        };
        spec.gates = args.parsed("--gates", spec.gates)?;
        spec.inputs = args.parsed("--inputs", spec.inputs)?;
        spec.depth = args.parsed("--depth", spec.depth)?;
        spec.max_fanin = args.parsed("--max-fanin", spec.max_fanin)?;
        spec.seed = args.parsed("--seed", spec.seed)?;
        args.finish()?;
        if spec.gates == 0 || spec.inputs == 0 || spec.depth == 0 || spec.depth > spec.gates {
            return Err(CliError::usage(
                "need gates > 0, inputs > 0 and 0 < depth <= gates",
            ));
        }
        if spec.max_fanin < 2 {
            return Err(CliError::usage("`--max-fanin` must be at least 2"));
        }
        random_circuit(&spec)
    };
    out.write_all(to_bench(&netlist).as_bytes())
        .map_err(CliError::io)
}
