//! `psta supergates` — reconvergence structure statistics (the paper's
//! Table 1 for one circuit).

use crate::args::{Args, CliError};
use crate::input::load_circuit;
use pep_netlist::cone::SupportSets;
use pep_netlist::supergate;
use pep_obs::Session;
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let spec = args
        .next_positional()
        .ok_or_else(|| CliError::usage("missing circuit argument"))?;
    let netlist = {
        let _phase = obs.phase("parse");
        load_circuit(&spec)?
    };
    let depth: u32 = args.parsed("--depth", 8)?;
    args.finish()?;

    let supports = {
        let _phase = obs.phase("levelize");
        SupportSets::compute(&netlist)
    };
    let stats = supergate::stats(
        &netlist,
        &supports,
        if depth == 0 { None } else { Some(depth) },
    );
    writeln!(
        out,
        "{}: {} gates, {} fanout stems",
        netlist.name(),
        netlist.gate_count(),
        supports.stems().len()
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "reconvergent gates (supergates): {} ({:.1}% of gates)",
        stats.count,
        100.0 * stats.count as f64 / netlist.gate_count().max(1) as f64
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "avg gates/supergate {:.1} (max {}), avg stems/supergate {:.2} (max {})",
        stats.avg_gates, stats.max_gates, stats.avg_stems, stats.max_stems
    )
    .map_err(CliError::io)?;
    Ok(())
}
