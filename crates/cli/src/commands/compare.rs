//! `psta compare` — PEP vs Monte Carlo accuracy and speed, the paper's
//! Fig. 10 for one circuit.

use crate::args::{Args, CliError};
use crate::commands::analysis_config;
use crate::input::load_annotated;
use pep_sta::monte_carlo::{run_monte_carlo, McConfig};
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args)?;
    let config = analysis_config(args)?;
    let runs: usize = args.parsed("--runs", 5_000)?;
    if runs == 0 {
        return Err(CliError::usage("`--runs` must be positive"));
    }
    args.finish()?;

    let t0 = std::time::Instant::now();
    let pep = pep_core::analyze(&netlist, &timing, &config);
    let pep_time = t0.elapsed();

    let t0 = std::time::Instant::now();
    let mc = run_monte_carlo(
        &netlist,
        &timing,
        &McConfig {
            runs,
            threads: 1,
            ..McConfig::default()
        },
    );
    let mc_time = t0.elapsed();

    let cmp = pep_core::compare::against_monte_carlo(&netlist, &pep, &mc);
    let (mean_err, std_err) = cmp.report();
    writeln!(out, "circuit: {} ({} gates)", netlist.name(), netlist.gate_count())
        .map_err(CliError::io)?;
    writeln!(out, "PEP:         {pep_time:.0?}").map_err(CliError::io)?;
    writeln!(out, "Monte Carlo: {mc_time:.0?} ({runs} runs, 1 thread)")
        .map_err(CliError::io)?;
    writeln!(
        out,
        "speedup:     {:.1}x",
        mc_time.as_secs_f64() / pep_time.as_secs_f64()
    )
    .map_err(CliError::io)?;
    writeln!(out, "mean error:  {mean_err:.3}%  (M_e + 3 sigma_e over all nodes)")
        .map_err(CliError::io)?;
    writeln!(out, "sigma error: {std_err:.3}%").map_err(CliError::io)?;
    Ok(())
}
