//! `psta compare` — PEP vs Monte Carlo accuracy and speed, the paper's
//! Fig. 10 for one circuit.

use crate::args::{Args, CliError};
use crate::commands::analysis_config;
use crate::input::load_annotated;
use pep_obs::Session;
use pep_sta::monte_carlo::{run_monte_carlo_observed, McConfig};
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args, obs)?;
    let config = analysis_config(args)?;
    let runs: usize = args.parsed("--runs", 5_000)?;
    if runs == 0 {
        return Err(CliError::usage("`--runs` must be positive"));
    }
    args.finish()?;

    let pep = {
        let _phase = obs.phase("analyze");
        pep_core::try_analyze_observed(&netlist, &timing, &config, obs)?
    };
    let pep_time = obs.total_of("analyze").unwrap_or_default();

    let mc = run_monte_carlo_observed(
        &netlist,
        &timing,
        &McConfig {
            runs,
            threads: 1,
            ..McConfig::default()
        },
        obs,
    );
    let mc_time = obs.total_of("mc-baseline").unwrap_or_default();

    let cmp = pep_core::compare::against_monte_carlo(&netlist, &pep, &mc);
    let (mean_err, std_err) = cmp.report();
    writeln!(
        out,
        "circuit: {} ({} gates)",
        netlist.name(),
        netlist.gate_count()
    )
    .map_err(CliError::io)?;
    writeln!(out, "PEP:         {pep_time:.0?}").map_err(CliError::io)?;
    writeln!(out, "Monte Carlo: {mc_time:.0?} ({runs} runs, 1 thread)").map_err(CliError::io)?;
    writeln!(
        out,
        "speedup:     {:.1}x",
        mc_time.as_secs_f64() / pep_time.as_secs_f64()
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "mean error:  {mean_err:.3}%  (M_e + 3 sigma_e over all nodes)"
    )
    .map_err(CliError::io)?;
    writeln!(out, "sigma error: {std_err:.3}%").map_err(CliError::io)?;
    Ok(())
}
