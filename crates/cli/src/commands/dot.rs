//! `psta dot` — Graphviz export, optionally highlighting the critical
//! path.

use crate::args::{Args, CliError};
use crate::input::load_annotated;
use pep_netlist::dot::{to_dot, DotOptions};
use pep_obs::Session;
use pep_sta::slack::k_longest_paths;
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args, obs)?;
    let critical = args.flag("--critical");
    let rank = args.flag("--rank");
    args.finish()?;

    let highlight = if critical {
        k_longest_paths(&netlist, &timing, 1)
            .into_iter()
            .next()
            .map(|p| p.nodes)
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    let text = to_dot(
        &netlist,
        &DotOptions {
            highlight,
            rank_by_level: rank,
        },
    );
    out.write_all(text.as_bytes()).map_err(CliError::io)
}
