//! `psta client` — a tiny scripting client for a running `psta serve`.
//!
//! ```text
//! psta client health|ready|metrics          [--addr HOST:PORT]
//! psta client analyze <circuit> [options]   submit an analysis
//! psta client job <id>                      poll a detached job
//! psta client trace <id>                    fetch a job's Chrome trace JSON
//! psta client events <id>                   stream a job's phase progress
//! psta client cancel <id>                   cancel a queued/running job
//! ```

use crate::args::{Args, CliError};
use pep_serve::client;
use std::io::Write;

const DEFAULT_ADDR: &str = "127.0.0.1:8521";

pub fn run<W: Write>(args: &mut Args, out: &mut W) -> Result<(), CliError> {
    let action = args
        .next_positional()
        .ok_or_else(|| CliError::usage("`client` needs an action: health | ready | metrics | analyze <circuit> | job <id> | trace <id> | events <id> | cancel <id>"))?;
    let addr = args
        .option("--addr")?
        .unwrap_or_else(|| DEFAULT_ADDR.to_owned());

    let (method, path, body): (&str, String, Option<String>) = match action.as_str() {
        "health" => ("GET", "/healthz".into(), None),
        "ready" => ("GET", "/readyz".into(), None),
        "metrics" => ("GET", "/metrics".into(), None),
        "analyze" => {
            let circuit = args
                .next_positional()
                .ok_or_else(|| CliError::usage("`client analyze` needs a circuit"))?;
            let seed = args.parsed("--seed", 1u64)?;
            let detach = args.flag("--detach");
            let trace = args.option("--trace")?;
            let mut fields = vec![circuit_field(&circuit)?, format!("\"seed\": {seed}")];
            if detach {
                fields.push("\"detach\": true".into());
            }
            if let Some(level) = trace {
                if !matches!(level.as_str(), "phases" | "nodes" | "kernels") {
                    return Err(CliError::usage(format!(
                        "`--trace`: expected phases|nodes|kernels, got `{level}`"
                    )));
                }
                fields.push(format!("\"trace\": \"{level}\""));
            }
            let mut knobs = Vec::new();
            if let Some(samples) = args.parsed_opt::<usize>("--samples")? {
                knobs.push(format!("\"samples\": {samples}"));
            }
            if let Some(threads) = args.parsed_opt::<usize>("--threads")? {
                knobs.push(format!("\"threads\": {threads}"));
            }
            if !knobs.is_empty() {
                fields.push(format!("\"config\": {{{}}}", knobs.join(", ")));
            }
            (
                "POST",
                "/analyze".into(),
                Some(format!("{{{}}}", fields.join(", "))),
            )
        }
        "job" => ("GET", format!("/jobs/{}", job_id(args)?), None),
        "trace" => ("GET", format!("/jobs/{}/trace", job_id(args)?), None),
        "events" => ("GET", format!("/jobs/{}/events", job_id(args)?), None),
        "cancel" => ("DELETE", format!("/jobs/{}", job_id(args)?), None),
        other => return Err(CliError::usage(format!("unknown client action `{other}`"))),
    };
    args.finish()?;

    let response = client::request(&addr, method, &path, body.as_deref())
        .map_err(|e| CliError::io(std::io::Error::other(format!("pep-serve at {addr}: {e}"))))?;
    writeln!(out, "{}", response.body.trim_end()).map_err(CliError::io)?;
    if response.is_success() {
        Ok(())
    } else {
        Err(CliError::analysis(format!("HTTP {}", response.status)))
    }
}

/// Renders the request's circuit field: `sample:`/`profile:` specs pass
/// through; anything else is read as a local `.bench` file and shipped
/// inline (the daemon never touches the filesystem).
fn circuit_field(circuit: &str) -> Result<String, CliError> {
    if circuit.starts_with("sample:") || circuit.starts_with("profile:") {
        return Ok(format!("\"circuit\": {}", serde::json::to_string(circuit)));
    }
    let text = std::fs::read_to_string(circuit)
        .map_err(|e| CliError::usage(format!("cannot read `{circuit}`: {e}")))?;
    let name = std::path::Path::new(circuit)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    Ok(format!(
        "\"bench\": {}, \"name\": {}",
        serde::json::to_string(&text),
        serde::json::to_string(name)
    ))
}

fn job_id(args: &mut Args) -> Result<u64, CliError> {
    args.next_positional()
        .and_then(|id| id.parse().ok())
        .ok_or_else(|| CliError::usage("expected a numeric job id"))
}
