//! `psta analyze` — arrival-time distributions via probabilistic event
//! propagation.

use crate::args::{Args, CliError};
use crate::commands::analysis_config;
use crate::input::load_annotated;
use crate::report::{num, Table};
use pep_netlist::GateKind;
use pep_obs::Session;
use pep_sta::{CancelState, CancelToken};
use std::io::Write;

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args, obs)?;
    let config = analysis_config(args)?;
    let all = args.flag("--all");
    let csv = args.flag("--csv");
    let plots = args.options("--plot")?;
    let trace_out = args.option("--trace-out")?;
    let trace_level = match args.option("--trace-level")? {
        Some(s) => Some(super::profile::trace_level(&s)?),
        None => None,
    };
    let quantiles: Vec<f64> = args
        .options("--quantile")?
        .into_iter()
        .map(|q| {
            q.parse::<f64>()
                .ok()
                .filter(|q| (0.0..=1.0).contains(q))
                .ok_or_else(|| CliError::usage(format!("`--quantile`: bad value `{q}`")))
        })
        .collect::<Result<_, _>>()?;
    args.finish()?;

    // Signal-aware: the first Ctrl-C/SIGTERM (latched by the handler
    // `main` installs) degrades the run at the next engine poll point —
    // remaining supergates fall back to topological propagation and the
    // partial report is still printed, with exit code 7.
    let cancel = CancelToken::signal_aware();
    // `--trace-out` turns span tracing on for the run (at `nodes`
    // detail unless `--trace-level` says otherwise) and exports Chrome
    // trace-event JSON for Perfetto.
    let trace = trace_out.as_ref().map(|_| {
        let t = pep_obs::Trace::new(trace_level.unwrap_or(pep_obs::TraceLevel::Nodes));
        obs.set_trace(t.clone());
        t
    });
    let analysis = {
        let _phase = obs.phase("analyze");
        pep_core::try_analyze_cancellable(&netlist, &timing, &config, obs, &cancel)?
    };
    if let (Some(path), Some(trace)) = (&trace_out, &trace) {
        let spans = trace.spans();
        super::profile::write_artifact(path, &pep_obs::chrome_trace_json(&spans, trace.dropped()))?;
    }
    let elapsed = obs.total_of("analyze").unwrap_or_default();

    let mut headers = vec![
        "node".to_owned(),
        "level".to_owned(),
        "mean".to_owned(),
        "sigma".to_owned(),
    ];
    for q in &quantiles {
        headers.push(format!("q{q}"));
    }
    let mut table = Table::new(headers, csv);
    let nodes: Vec<_> = if all {
        netlist
            .node_ids()
            .filter(|&n| netlist.kind(n) != GateKind::Input)
            .collect()
    } else {
        netlist.primary_outputs().to_vec()
    };
    for n in nodes {
        let mut cells = vec![
            netlist.node_name(n).to_owned(),
            netlist.level(n).to_string(),
            num(analysis.mean_time(n)),
            num(analysis.std_time(n)),
        ];
        for &q in &quantiles {
            cells.push(analysis.quantile_time(n, q).map(num).unwrap_or_default());
        }
        table.row(cells);
    }
    out.write_all(table.render().as_bytes())
        .map_err(CliError::io)?;
    for name in &plots {
        let node = netlist
            .node_id(name)
            .ok_or_else(|| CliError::usage(format!("`--plot`: no node named `{name}`")))?;
        writeln!(out, "\narrival-time distribution of {name}:").map_err(CliError::io)?;
        out.write_all(
            crate::report::ascii_histogram(analysis.group(node), analysis.step()).as_bytes(),
        )
        .map_err(CliError::io)?;
    }
    if !csv {
        let stats = analysis.stats();
        writeln!(
            out,
            "\n{} gates analyzed in {:.0?}; {} supergates ({} stems conditioned, {} filtered)",
            netlist.gate_count(),
            elapsed,
            stats.supergates,
            stats.stems_conditioned,
            stats.stems_filtered,
        )
        .map_err(CliError::io)?;
        for w in analysis.warnings() {
            writeln!(out, "warning: {w}").map_err(CliError::io)?;
        }
    }
    if cancel.state() != CancelState::Live {
        return Err(CliError::budget(
            "interrupted — the report above reflects a degraded (partial) analysis",
        ));
    }
    Ok(())
}
