//! Subcommand implementations.

pub mod analyze;
pub mod client;
pub mod compare;
pub mod dot;
pub mod dynamic;
pub mod generate;
pub mod mc;
pub mod paths;
pub mod profile;
pub mod serve;
pub mod supergates;

use crate::args::{Args, CliError};
use pep_core::{AnalysisConfig, Budget, CombineMode};

/// Parses the analysis knobs shared by `analyze`, `compare` and
/// `dynamic`.
pub fn analysis_config(args: &mut Args) -> Result<AnalysisConfig, CliError> {
    let mut config = if args.flag("--exact") {
        AnalysisConfig::exact()
    } else {
        AnalysisConfig::default()
    };
    config.samples = args.parsed("--samples", config.samples)?;
    if let Some(pm) = args.parsed_opt::<f64>("--pm")? {
        if !(0.0..1.0).contains(&pm) {
            return Err(CliError::usage("`--pm` must be in [0, 1)"));
        }
        config.min_event_prob = pm;
    }
    if let Some(depth) = args.parsed_opt::<u32>("--depth")? {
        config.supergate_depth = if depth == 0 { None } else { Some(depth) };
    }
    if let Some(stems) = args.parsed_opt::<usize>("--stems")? {
        // `--stems 0` lifts the effective-stem limit entirely: condition
        // on every stem (the exact algorithm's behaviour for this knob).
        config.max_effective_stems = if stems == 0 { None } else { Some(stems) };
    }
    if args.flag("--earliest") {
        config.mode = CombineMode::Earliest;
    }
    config.threads = args.parsed("--threads", config.threads)?;
    config.budget = budget(args)?;
    Ok(config)
}

/// Parses the resource-budget flags. Returns `None` (fully inert
/// machinery) when no budget flag is present.
fn budget(args: &mut Args) -> Result<Option<Budget>, CliError> {
    let deadline_ms = args.parsed_opt::<u64>("--deadline-ms")?;
    let max_combinations = args.parsed_opt::<u64>("--max-combinations")?;
    let max_event_bytes = args.parsed_opt::<usize>("--memory-budget")?;
    let max_stems = args.parsed_opt::<usize>("--budget-stems")?;
    let fail_fast = args.flag("--fail-fast");
    if deadline_ms.is_none()
        && max_combinations.is_none()
        && max_event_bytes.is_none()
        && max_stems.is_none()
    {
        if fail_fast {
            return Err(CliError::usage(
                "`--fail-fast` needs a budget flag (--deadline-ms, \
                 --max-combinations, --memory-budget or --budget-stems)",
            ));
        }
        return Ok(None);
    }
    if max_stems == Some(0) {
        return Err(CliError::usage("`--budget-stems` must be positive"));
    }
    Ok(Some(Budget {
        deadline_ms,
        max_combinations,
        max_event_bytes,
        max_stems_per_supergate: max_stems,
        fail_fast,
    }))
}
