//! Subcommand implementations.

pub mod analyze;
pub mod compare;
pub mod dot;
pub mod dynamic;
pub mod generate;
pub mod mc;
pub mod paths;
pub mod supergates;

use crate::args::{Args, CliError};
use pep_core::{AnalysisConfig, CombineMode};

/// Parses the analysis knobs shared by `analyze`, `compare` and
/// `dynamic`.
pub fn analysis_config(args: &mut Args) -> Result<AnalysisConfig, CliError> {
    let mut config = if args.flag("--exact") {
        AnalysisConfig::exact()
    } else {
        AnalysisConfig::default()
    };
    config.samples = args.parsed("--samples", config.samples)?;
    if let Some(pm) = args.parsed_opt::<f64>("--pm")? {
        if !(0.0..1.0).contains(&pm) {
            return Err(CliError::usage("`--pm` must be in [0, 1)"));
        }
        config.min_event_prob = pm;
    }
    if let Some(depth) = args.parsed_opt::<u32>("--depth")? {
        config.supergate_depth = if depth == 0 { None } else { Some(depth) };
    }
    if let Some(stems) = args.parsed_opt::<usize>("--stems")? {
        config.max_effective_stems = Some(stems);
    }
    if args.flag("--earliest") {
        config.mode = CombineMode::Earliest;
    }
    config.threads = args.parsed("--threads", config.threads)?;
    Ok(config)
}
