//! `psta dynamic` — two-vector transition analysis.

use crate::args::{Args, CliError};
use crate::commands::analysis_config;
use crate::input::load_annotated;
use crate::report::{num, Table};
use pep_obs::Session;
use std::io::Write;

fn parse_vector(name: &str, bits: &str, want: usize) -> Result<Vec<bool>, CliError> {
    let v: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(CliError::usage(format!(
                "`{name}`: expected 0/1 bits, found `{other}`"
            ))),
        })
        .collect::<Result<_, _>>()?;
    if v.len() != want {
        return Err(CliError::usage(format!(
            "`{name}`: circuit has {want} inputs, vector has {} bits",
            v.len()
        )));
    }
    Ok(v)
}

pub fn run<W: Write>(args: &mut Args, out: &mut W, obs: &Session) -> Result<(), CliError> {
    let (netlist, timing) = load_annotated(args, obs)?;
    let config = analysis_config(args)?;
    let n_in = netlist.primary_inputs().len();
    let v1 = parse_vector(
        "--v1",
        &args
            .option("--v1")?
            .ok_or_else(|| CliError::usage("`--v1` is required"))?,
        n_in,
    )?;
    let v2 = parse_vector(
        "--v2",
        &args
            .option("--v2")?
            .ok_or_else(|| CliError::usage("`--v2` is required"))?,
        n_in,
    )?;
    let csv = args.flag("--csv");
    args.finish()?;

    let d = {
        let _phase = obs.phase("analyze");
        pep_core::dynamic::try_analyze_transition_observed(
            &netlist, &timing, &v1, &v2, &config, obs,
        )?
    };
    let switching = netlist.node_ids().filter(|&n| d.transitions(n)).count();
    if !csv {
        writeln!(
            out,
            "{} of {} nodes switch between the vectors\n",
            switching,
            netlist.node_count()
        )
        .map_err(CliError::io)?;
    }
    let mut table = Table::new(vec!["output", "edge", "mean", "sigma"], csv);
    for &po in netlist.primary_outputs() {
        if !d.transitions(po) {
            table.row(vec![netlist.node_name(po).to_owned(), "-".to_owned()]);
            continue;
        }
        table.row(vec![
            netlist.node_name(po).to_owned(),
            if d.is_rising(po) { "rise" } else { "fall" }.to_owned(),
            num(d.mean_time(po).expect("switches")),
            num(d.std_time(po).expect("switches")),
        ]);
    }
    out.write_all(table.render().as_bytes())
        .map_err(CliError::io)?;
    if !csv {
        for w in d.warnings() {
            writeln!(out, "warning: {w}").map_err(CliError::io)?;
        }
    }
    Ok(())
}
