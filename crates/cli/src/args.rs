//! Minimal argv parsing: positionals, `--flag` switches and
//! `--option value` pairs, with typed accessors and precise errors.

use std::fmt;

/// CLI failure: bad usage, unreadable input, or a malformed circuit.
#[derive(Debug)]
pub struct CliError {
    message: String,
}

impl CliError {
    /// A usage error with the given message.
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }

    /// Wraps an I/O error.
    pub fn io(e: std::io::Error) -> Self {
        CliError {
            message: format!("i/o error: {e}"),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<pep_netlist::NetlistError> for CliError {
    fn from(e: pep_netlist::NetlistError) -> Self {
        CliError {
            message: e.to_string(),
        }
    }
}

/// A consumable view over argv.
pub struct Args {
    items: Vec<String>,
    used: Vec<bool>,
}

impl Args {
    /// Wraps the (command-stripped or full) argument list.
    pub fn new(argv: &[String]) -> Self {
        Args {
            items: argv.to_vec(),
            used: vec![false; argv.len()],
        }
    }

    /// Consumes and returns the next unused positional (non-`--`)
    /// argument.
    pub fn next_positional(&mut self) -> Option<String> {
        for i in 0..self.items.len() {
            if self.used[i] {
                continue;
            }
            if self.items[i].starts_with("--") {
                // Skip the option and, if present, its value.
                continue;
            }
            // A bare value directly after an option string belongs to the
            // option; positional scanning must not steal it. Check the
            // previous unused token.
            if i > 0 && !self.used[i - 1] && self.items[i - 1].starts_with("--") {
                continue;
            }
            self.used[i] = true;
            return Some(self.items[i].clone());
        }
        None
    }

    /// Whether the boolean switch is present (consumes it).
    pub fn flag(&mut self, name: &str) -> bool {
        for i in 0..self.items.len() {
            if !self.used[i] && self.items[i] == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Consumes `name value`, returning the raw value if present.
    ///
    /// # Errors
    ///
    /// Fails when the option is present but its value is missing or looks
    /// like another option.
    pub fn option(&mut self, name: &str) -> Result<Option<String>, CliError> {
        for i in 0..self.items.len() {
            if self.used[i] || self.items[i] != name {
                continue;
            }
            self.used[i] = true;
            let value = self
                .items
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| CliError::usage(format!("`{name}` needs a value")))?;
            self.used[i + 1] = true;
            return Ok(Some(value));
        }
        Ok(None)
    }

    /// Consumes every occurrence of `name value`, in order.
    ///
    /// # Errors
    ///
    /// Fails when any occurrence is missing its value.
    pub fn options(&mut self, name: &str) -> Result<Vec<String>, CliError> {
        let mut values = Vec::new();
        while let Some(v) = self.option(name)? {
            values.push(v);
        }
        Ok(values)
    }

    /// Consumes `name value` parsed as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Fails on a missing or unparseable value.
    pub fn parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, CliError> {
        match self.option(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("`{name}`: cannot parse `{v}`"))),
        }
    }

    /// Consumes `name value` parsed as `T`, returning `None` if absent.
    ///
    /// # Errors
    ///
    /// Fails on a missing or unparseable value.
    pub fn parsed_opt<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, CliError> {
        match self.option(name)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("`{name}`: cannot parse `{v}`"))),
        }
    }

    /// Errors if any argument was never consumed (typo protection).
    ///
    /// # Errors
    ///
    /// Reports the first leftover token.
    pub fn finish(&self) -> Result<(), CliError> {
        for (i, u) in self.used.iter().enumerate() {
            if !u {
                return Err(CliError::usage(format!(
                    "unexpected argument `{}`",
                    self.items[i]
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::new(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positionals_skip_option_values() {
        let mut a = args(&["--seed", "7", "circuit.bench", "--csv"]);
        assert_eq!(a.next_positional().as_deref(), Some("circuit.bench"));
        assert_eq!(a.parsed::<u64>("--seed", 0).unwrap(), 7);
        assert!(a.flag("--csv"));
        a.finish().unwrap();
    }

    #[test]
    fn missing_value_reported() {
        let mut a = args(&["--seed"]);
        let err = a.option("--seed").unwrap_err();
        assert!(err.to_string().contains("--seed"));
        // A following option is not a value either.
        let mut a = args(&["--seed", "--csv"]);
        assert!(a.option("--seed").is_err());
    }

    #[test]
    fn repeated_options_collect() {
        let mut a = args(&["--quantile", "0.5", "--quantile", "0.99"]);
        assert_eq!(a.options("--quantile").unwrap(), vec!["0.5", "0.99"]);
    }

    #[test]
    fn leftover_arguments_detected() {
        let a = args(&["surprise"]);
        assert!(a.finish().is_err());
    }

    #[test]
    fn parse_failures_name_the_option() {
        let mut a = args(&["--runs", "many"]);
        let err = a.parsed::<usize>("--runs", 1).unwrap_err();
        assert!(err.to_string().contains("--runs"));
        assert!(err.to_string().contains("many"));
    }
}
