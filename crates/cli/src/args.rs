//! Minimal argv parsing: positionals, `--flag` switches and
//! `--option value` pairs, with typed accessors and precise errors.

use std::fmt;

/// Which layer a [`CliError`] came from; determines the process exit
/// code so scripts can distinguish failure classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Bad command-line usage (unknown flag, unparseable value). Exit 2.
    Usage,
    /// I/O failure reading inputs or writing reports. Exit 3.
    Io,
    /// Malformed or inconsistent circuit source. Exit 4.
    Netlist,
    /// Invalid distribution data or tick-arithmetic overflow. Exit 5.
    Dist,
    /// Engine failure (worker panic, degenerate supergate). Exit 6.
    Analysis,
    /// A fail-fast resource budget was exceeded. Exit 7.
    Budget,
}

impl ErrorKind {
    /// The process exit code for this failure class.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Io => 3,
            ErrorKind::Netlist => 4,
            ErrorKind::Dist => 5,
            ErrorKind::Analysis => 6,
            ErrorKind::Budget => 7,
        }
    }
}

/// CLI failure: bad usage, unreadable input, a malformed circuit, or an
/// engine error surfaced through [`pep_core::PepError`].
#[derive(Debug)]
pub struct CliError {
    kind: ErrorKind,
    message: String,
}

impl CliError {
    /// A usage error with the given message.
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            kind: ErrorKind::Usage,
            message: message.into(),
        }
    }

    /// Wraps an I/O error.
    pub fn io(e: std::io::Error) -> Self {
        CliError {
            kind: ErrorKind::Io,
            message: format!("i/o error: {e}"),
        }
    }

    /// An interrupted/budget-class error (exit 7).
    pub fn budget(message: impl Into<String>) -> Self {
        CliError {
            kind: ErrorKind::Budget,
            message: message.into(),
        }
    }

    /// An analysis-class error (exit 6).
    pub fn analysis(message: impl Into<String>) -> Self {
        CliError {
            kind: ErrorKind::Analysis,
            message: message.into(),
        }
    }

    /// The failure class.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The process exit code for this error (see [`ErrorKind`]).
    pub fn exit_code(&self) -> u8 {
        self.kind.exit_code()
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<pep_netlist::NetlistError> for CliError {
    fn from(e: pep_netlist::NetlistError) -> Self {
        CliError {
            kind: ErrorKind::Netlist,
            message: e.to_string(),
        }
    }
}

impl From<pep_core::PepError> for CliError {
    fn from(e: pep_core::PepError) -> Self {
        use pep_core::PepError;
        let kind = match &e {
            PepError::Netlist(_) => ErrorKind::Netlist,
            PepError::Dist(_) => ErrorKind::Dist,
            PepError::Analysis(_) => ErrorKind::Analysis,
            PepError::Budget(_) => ErrorKind::Budget,
            // An interrupted run is a deliberately-stopped run, not an
            // engine failure: reuse the budget exit code (7) so scripts
            // see "resource limit honored" for Ctrl-C too.
            PepError::Cancelled(_) => ErrorKind::Budget,
            _ => ErrorKind::Analysis,
        };
        CliError {
            kind,
            message: e.to_string(),
        }
    }
}

/// A consumable view over argv.
pub struct Args {
    items: Vec<String>,
    used: Vec<bool>,
}

impl Args {
    /// Wraps the (command-stripped or full) argument list.
    pub fn new(argv: &[String]) -> Self {
        Args {
            items: argv.to_vec(),
            used: vec![false; argv.len()],
        }
    }

    /// Consumes and returns the next unused positional (non-`--`)
    /// argument.
    pub fn next_positional(&mut self) -> Option<String> {
        for i in 0..self.items.len() {
            if self.used[i] {
                continue;
            }
            if self.items[i].starts_with("--") {
                // Skip the option and, if present, its value.
                continue;
            }
            // A bare value directly after an option string belongs to the
            // option; positional scanning must not steal it. Check the
            // previous unused token.
            if i > 0 && !self.used[i - 1] && self.items[i - 1].starts_with("--") {
                continue;
            }
            self.used[i] = true;
            return Some(self.items[i].clone());
        }
        None
    }

    /// Whether the boolean switch is present (consumes it).
    pub fn flag(&mut self, name: &str) -> bool {
        for i in 0..self.items.len() {
            if !self.used[i] && self.items[i] == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Consumes `name value`, returning the raw value if present.
    ///
    /// # Errors
    ///
    /// Fails when the option is present but its value is missing or looks
    /// like another option.
    pub fn option(&mut self, name: &str) -> Result<Option<String>, CliError> {
        for i in 0..self.items.len() {
            if self.used[i] || self.items[i] != name {
                continue;
            }
            self.used[i] = true;
            let value = self
                .items
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| CliError::usage(format!("`{name}` needs a value")))?;
            self.used[i + 1] = true;
            return Ok(Some(value));
        }
        Ok(None)
    }

    /// Consumes every occurrence of `name value`, in order.
    ///
    /// # Errors
    ///
    /// Fails when any occurrence is missing its value.
    pub fn options(&mut self, name: &str) -> Result<Vec<String>, CliError> {
        let mut values = Vec::new();
        while let Some(v) = self.option(name)? {
            values.push(v);
        }
        Ok(values)
    }

    /// Consumes `name value` parsed as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Fails on a missing or unparseable value.
    pub fn parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, CliError> {
        match self.option(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("`{name}`: cannot parse `{v}`"))),
        }
    }

    /// Consumes `name value` parsed as `T`, returning `None` if absent.
    ///
    /// # Errors
    ///
    /// Fails on a missing or unparseable value.
    pub fn parsed_opt<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, CliError> {
        match self.option(name)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("`{name}`: cannot parse `{v}`"))),
        }
    }

    /// Errors if any argument was never consumed (typo protection).
    ///
    /// # Errors
    ///
    /// Reports the first leftover token.
    pub fn finish(&self) -> Result<(), CliError> {
        for (i, u) in self.used.iter().enumerate() {
            if !u {
                return Err(CliError::usage(format!(
                    "unexpected argument `{}`",
                    self.items[i]
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::new(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positionals_skip_option_values() {
        let mut a = args(&["--seed", "7", "circuit.bench", "--csv"]);
        assert_eq!(a.next_positional().as_deref(), Some("circuit.bench"));
        assert_eq!(a.parsed::<u64>("--seed", 0).unwrap(), 7);
        assert!(a.flag("--csv"));
        a.finish().unwrap();
    }

    #[test]
    fn missing_value_reported() {
        let mut a = args(&["--seed"]);
        let err = a.option("--seed").unwrap_err();
        assert!(err.to_string().contains("--seed"));
        // A following option is not a value either.
        let mut a = args(&["--seed", "--csv"]);
        assert!(a.option("--seed").is_err());
    }

    #[test]
    fn repeated_options_collect() {
        let mut a = args(&["--quantile", "0.5", "--quantile", "0.99"]);
        assert_eq!(a.options("--quantile").unwrap(), vec!["0.5", "0.99"]);
    }

    #[test]
    fn leftover_arguments_detected() {
        let a = args(&["surprise"]);
        assert!(a.finish().is_err());
    }

    #[test]
    fn parse_failures_name_the_option() {
        let mut a = args(&["--runs", "many"]);
        let err = a.parsed::<usize>("--runs", 1).unwrap_err();
        assert!(err.to_string().contains("--runs"));
        assert!(err.to_string().contains("many"));
    }
}
