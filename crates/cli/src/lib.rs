//! Implementation of the `psta` command-line tool.
//!
//! All functionality lives behind [`run`] (argv in, report out), so the
//! whole CLI is unit-testable without spawning processes.
//!
//! ```text
//! psta analyze  <circuit> [options]   statistical arrival-time analysis
//! psta mc       <circuit> [options]   Monte Carlo baseline
//! psta compare  <circuit> [options]   PEP vs Monte Carlo error report
//! psta paths    <circuit> [options]   K longest paths and slack
//! psta profile  <circuit> [options]   traced analysis + profile export
//! psta supergates <circuit> [opts]    reconvergence / supergate statistics
//! psta generate [options]             emit a synthetic .bench circuit
//! psta dynamic  <circuit> --v1 .. --v2 ..   two-vector transition analysis
//! psta serve    [options]             run the HTTP analysis daemon
//! psta client   <action> [options]    script against a running daemon
//! ```
//!
//! `<circuit>` is a `.bench` file path, or one of the built-in pseudo
//! paths `sample:c17`, `sample:mux2`, `sample:fig6`,
//! `profile:<s5378|s9234|s13207|s15850|s35932|s38584>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod input;
mod report;

pub use args::{CliError, ErrorKind};
/// Installs the latching Ctrl-C/SIGTERM handler (re-exported from
/// [`pep_serve::signals`]). The binary calls this once at startup; the
/// library never installs handlers itself, so embedding `run` (tests,
/// other tools) leaves process signal disposition alone.
pub use pep_serve::signals::install as install_signal_handlers;

use pep_obs::Session;
use std::io::Write;

/// Entry point: executes `argv` and writes the report to `out`.
///
/// Global observability flags (accepted before or after the command):
/// `--metrics-json <path>` writes the machine-readable [`pep_obs::RunReport`],
/// `--timing` appends the phase-timing tree, `-v`/`-vv` append the full
/// text report (with/without histogram summaries).
///
/// # Errors
///
/// Returns a [`CliError`] describing bad usage, unreadable inputs or
/// malformed circuits; I/O failures while writing the report are wrapped
/// the same way.
pub fn run<W: Write>(argv: &[String], out: &mut W) -> Result<(), CliError> {
    let mut args = args::Args::new(argv);
    // Global flags come off first: `-v`/`-vv` would otherwise be taken
    // for the command positional.
    let metrics_json = args.option("--metrics-json")?;
    let show_timing = args.flag("--timing");
    let verbose_warnings = args.flag("--verbose-warnings");
    let verbosity = if args.flag("-vv") {
        2
    } else if args.flag("-v") {
        1
    } else {
        0
    };
    let Some(command) = args.next_positional() else {
        out.write_all(USAGE.as_bytes()).map_err(CliError::io)?;
        return Ok(());
    };
    let obs = Session::new();
    match command.as_str() {
        "analyze" => commands::analyze::run(&mut args, out, &obs),
        "mc" => commands::mc::run(&mut args, out, &obs),
        "compare" => commands::compare::run(&mut args, out, &obs),
        "paths" => commands::paths::run(&mut args, out, &obs),
        "profile" => commands::profile::run(&mut args, out, &obs),
        "supergates" => commands::supergates::run(&mut args, out, &obs),
        "generate" => commands::generate::run(&mut args, out),
        "dynamic" => commands::dynamic::run(&mut args, out, &obs),
        "dot" => commands::dot::run(&mut args, out, &obs),
        "serve" => commands::serve::run(&mut args, out),
        "client" => commands::client::run(&mut args, out),
        "help" | "--help" | "-h" => {
            out.write_all(USAGE.as_bytes()).map_err(CliError::io)?;
            return Ok(());
        }
        other => return Err(CliError::usage(format!("unknown command `{other}`"))),
    }?;

    if metrics_json.is_some() || show_timing || verbosity > 0 || verbose_warnings {
        let report = obs.report(&argv.join(" "));
        if let Some(path) = metrics_json {
            std::fs::write(&path, report.to_json_pretty())
                .map_err(|e| CliError::usage(format!("cannot write `{path}`: {e}")))?;
        }
        let text = if verbosity > 0 || verbose_warnings {
            // `--verbose-warnings` expands aggregated warning groups to
            // every individual occurrence (alone, it implies `-v`).
            report.render_text_opts(verbosity > 1, verbose_warnings || verbosity > 1)
        } else if show_timing {
            report.render_phases()
        } else {
            String::new()
        };
        if !text.is_empty() {
            writeln!(out, "\n{}", text.trim_end()).map_err(CliError::io)?;
        }
    }
    Ok(())
}

const USAGE: &str = "\
psta — statistical timing analysis by probabilistic event propagation

USAGE:
  psta <command> [arguments]

GLOBAL OPTIONS (any command):
  --metrics-json FILE   write a machine-readable run report (phases,
                        counters, gauges, histogram summaries) as JSON
  --timing              print the phase-timing tree after the report
  -v / -vv              print the full observability report
                        (-vv adds histogram summaries)
  --verbose-warnings    expand aggregated warning groups to every
                        individual occurrence (implies -v)

COMMANDS:
  analyze <circuit>     arrival-time distributions (PEP analysis)
      --seed N          delay-annotation seed            [1]
      --library FILE    cell library file (see pep-celllib::library)
      --samples N       N_s, samples per delay pdf       [20]
      --pm P            P_m, event-dropping floor        [1e-5]
      --depth D         supergate depth limit            [5]
      --stems K         effective stems per supergate    [1]
      --exact           exact mode (small circuits only)
      --earliest        earliest-arrival analysis
      --threads N       worker threads for the wave scheduler
                        (0 = auto: PEP_THREADS, then all cores;
                        output is identical for any count)  [0]
      --deadline-ms T   wall-clock budget; late supergates degrade to
                        topological propagation (with a warning)
      --max-combinations N  cap on conditioning combinations per
                        supergate; coarsens events, then drops stems
      --memory-budget B cap on resident event-mass bytes; tightens P_m
      --budget-stems K  hard stem cap per supergate under the budget
      --fail-fast       error (exit 7) on the first budget trip
                        instead of degrading
      --trace-out FILE  export a Chrome/Perfetto trace of the run
      --trace-level L   phases | nodes | kernels [nodes]
      --all             report every node, not just outputs
      --quantile Q      extra quantile column (repeatable)
      --plot NODE       ASCII waveform of a node's distribution
      --csv             machine-readable CSV output

  mc <circuit>          Monte Carlo baseline
      --seed N, --library FILE as above
      --runs N          simulation runs                  [5000]
      --threads N       worker threads (0 = auto)        [0]

  compare <circuit>     PEP vs Monte Carlo error report
      (analyze + mc options)

  paths <circuit>       K longest paths and slack report
      -k N              number of paths                  [5]
      --period T        clock period (default: worst arrival)

  profile <circuit>     traced analysis + profile export
      (analyze options apply)
      --trace-out FILE  Chrome trace-event JSON, loadable at
                        https://ui.perfetto.dev  [psta-trace.json]
      --folded-out FILE folded flamegraph stacks [psta-trace.folded]
      --trace-level L   phases | nodes | kernels [kernels]
      --top N           rows in the self-time table [15]

  supergates <circuit>  reconvergence and supergate statistics
      --depth D         extraction depth limit           [8]

  generate              emit a .bench netlist on stdout
      --profile NAME    ISCAS89 profile (s5378 .. s38584)
      --gates N --inputs N --depth N --seed N   custom random circuit

  dynamic <circuit>     two-vector transition analysis
      --v1 BITS --v2 BITS   input vectors, e.g. 01011
      (analyze options apply)

  dot <circuit>         Graphviz export
      --critical        highlight the longest mean-delay path
      --rank            align nodes by logic level

  serve                 HTTP analysis daemon (see DESIGN.md §10)
      --addr A          bind address                 [127.0.0.1:0]
      --workers N       job worker threads           [2]
      --queue N         bounded queue capacity       [16]
      --grace-ms T      drain grace window           [5000]
      --cache N         parsed-circuit cache entries [16]
      SIGINT/SIGTERM drains gracefully (second signal: exit 130)

  client <action>       talk to a running daemon [--addr 127.0.0.1:8521]
      health | ready | metrics
      analyze <circuit> [--seed N] [--detach] [--samples N] [--threads N]
                        [--trace phases|nodes|kernels]
                        (a .bench file path is shipped inline)
      job <id> | cancel <id>
      trace <id>        the job's Chrome trace-event JSON (--trace jobs)
      events <id>       stream the job's phase progress (chunked NDJSON)

CIRCUITS:
  a .bench file path, sample:c17 | sample:mux2 | sample:fig6,
  or profile:<s5378|s9234|s13207|s15850|s35932|s38584>

EXIT CODES:
  0 success   2 usage   3 i/o   4 netlist   5 distribution
  6 analysis engine   7 budget exceeded (--fail-fast) or interrupted
                        (Ctrl-C degrades `analyze` to a partial report)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("reports are UTF-8"))
    }

    #[test]
    fn no_args_prints_usage() {
        let text = run_to_string(&[]).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("analyze"));
    }

    #[test]
    fn unknown_command_rejected() {
        let err = run_to_string(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn analyze_sample_outputs() {
        let text = run_to_string(&["analyze", "sample:c17"]).unwrap();
        assert!(text.contains("22"), "c17 output 22 reported: {text}");
        assert!(text.contains("mean"));
    }

    #[test]
    fn analyze_csv_mode() {
        let text =
            run_to_string(&["analyze", "sample:c17", "--csv", "--quantile", "0.99"]).unwrap();
        let mut lines = text.lines();
        let header = lines.next().expect("has header");
        assert!(header.starts_with("node,level,mean,sigma"));
        assert!(header.contains("q0.99"));
        assert_eq!(lines.count(), 2, "two outputs");
    }

    #[test]
    fn analyze_all_nodes() {
        let text = run_to_string(&["analyze", "sample:c17", "--all", "--csv"]).unwrap();
        assert_eq!(text.lines().count(), 1 + 6, "header + six gates");
    }

    #[test]
    fn analyze_threads_flag_does_not_change_output() {
        let one = run_to_string(&["analyze", "sample:c17", "--csv", "--threads", "1"]).unwrap();
        let four = run_to_string(&["analyze", "sample:c17", "--csv", "--threads", "4"]).unwrap();
        assert_eq!(one, four, "scheduler output is thread-count invariant");
    }

    #[test]
    fn mc_runs() {
        let text = run_to_string(&["mc", "sample:c17", "--runs", "200"]).unwrap();
        assert!(text.contains("200 runs"));
        assert!(text.contains("22"));
    }

    #[test]
    fn compare_reports_errors() {
        let text = run_to_string(&["compare", "sample:mux2", "--runs", "500"]).unwrap();
        assert!(text.contains("mean error"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn paths_lists_k() {
        let text = run_to_string(&["paths", "sample:c17", "-k", "3"]).unwrap();
        assert_eq!(text.matches("delay").count(), 3, "{text}");
        assert!(text.contains("worst slack"));
    }

    #[test]
    fn supergates_stats() {
        let text = run_to_string(&["supergates", "sample:fig6"]).unwrap();
        assert!(text.contains("reconvergent"));
        assert!(text.contains("stems"));
    }

    #[test]
    fn generate_emits_bench() {
        let text =
            run_to_string(&["generate", "--gates", "50", "--inputs", "8", "--depth", "5"]).unwrap();
        assert!(text.contains("INPUT(pi0)"));
        // And it parses back.
        pep_netlist::parse_bench("gen", &text).unwrap();
    }

    #[test]
    fn dynamic_runs_vectors() {
        let text =
            run_to_string(&["dynamic", "sample:mux2", "--v1", "100", "--v2", "101"]).unwrap();
        assert!(text.contains("y"), "output reported: {text}");
        assert!(text.contains("rise") || text.contains("fall"));
    }

    #[test]
    fn analyze_plot_renders_waveform() {
        let text = run_to_string(&["analyze", "sample:c17", "--plot", "22"]).unwrap();
        assert!(text.contains("distribution of 22"));
        assert!(text.contains('#'));
        let err = run_to_string(&["analyze", "sample:c17", "--plot", "ghost"]).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn dot_command_emits_graph() {
        let text = run_to_string(&["dot", "sample:mux2", "--critical", "--rank"]).unwrap();
        assert!(text.starts_with("digraph"));
        assert!(text.contains("fillcolor"), "critical path highlighted");
    }

    #[test]
    fn dynamic_rejects_bad_vectors() {
        let err =
            run_to_string(&["dynamic", "sample:mux2", "--v1", "10", "--v2", "101"]).unwrap_err();
        assert!(err.to_string().contains("3 inputs"), "{err}");
    }

    #[test]
    fn missing_value_rejected() {
        let err = run_to_string(&["analyze", "sample:c17", "--samples"]).unwrap_err();
        assert!(err.to_string().contains("--samples"));
    }

    #[test]
    fn bad_circuit_rejected() {
        let err = run_to_string(&["analyze", "sample:nope"]).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn usage_errors_exit_2() {
        let err = run_to_string(&["frobnicate"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn budget_flags_accepted_and_inert_on_small_circuit() {
        // A roomy budget on c17 must not change the output at all.
        let plain = run_to_string(&["analyze", "sample:c17", "--csv"]).unwrap();
        let budgeted = run_to_string(&[
            "analyze",
            "sample:c17",
            "--csv",
            "--deadline-ms",
            "60000",
            "--max-combinations",
            "1000000",
            "--memory-budget",
            "100000000",
            "--budget-stems",
            "64",
        ])
        .unwrap();
        assert_eq!(plain, budgeted, "roomy budget is bit-identical");
    }

    #[test]
    fn fail_fast_requires_a_budget() {
        let err = run_to_string(&["analyze", "sample:c17", "--fail-fast"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert!(err.to_string().contains("--fail-fast"));
    }

    #[test]
    fn fail_fast_budget_trip_exits_budget_code() {
        // fig6 has a reconvergent supergate; a 1-combination cap with
        // --fail-fast must surface as a budget error (exit 7), not a
        // degradation.
        let err = run_to_string(&[
            "analyze",
            "sample:fig6",
            "--stems",
            "0",
            "--max-combinations",
            "1",
            "--fail-fast",
        ])
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Budget, "{err}");
        assert_eq!(err.exit_code(), 7);
    }

    #[test]
    fn tight_budget_degrades_with_warning() {
        let text = run_to_string(&[
            "analyze",
            "sample:fig6",
            "--stems",
            "0",
            "--max-combinations",
            "1",
        ])
        .unwrap();
        assert!(text.contains("warning:"), "degradation surfaced: {text}");
        assert!(text.contains("budget."), "coded warning: {text}");
        assert!(text.contains("sg:"), "names the supergate: {text}");
    }

    #[test]
    fn profile_writes_trace_and_folded_outputs() {
        let dir = std::env::temp_dir().join("psta-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        let folded = dir.join("t.folded");
        let text = run_to_string(&[
            "profile",
            "sample:fig6",
            "--trace-out",
            trace.to_str().unwrap(),
            "--folded-out",
            folded.to_str().unwrap(),
            "--top",
            "5",
        ])
        .unwrap();
        assert!(text.contains("top 5 spans by self time"), "{text}");
        assert!(text.contains("kernel aggregates"), "{text}");
        assert!(text.contains("convolve"), "{text}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"cat\":\"kernel\""));
        let folded = std::fs::read_to_string(&folded).unwrap();
        assert!(folded.lines().all(|l| l
            .rsplit_once(' ')
            .is_some_and(|(_, n)| n.parse::<u64>().is_ok())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_rejects_bad_trace_level() {
        let err =
            run_to_string(&["profile", "sample:fig6", "--trace-level", "verbose"]).unwrap_err();
        assert!(err.to_string().contains("phases|nodes|kernels"));
    }

    #[test]
    fn analyze_trace_out_writes_chrome_json() {
        let dir = std::env::temp_dir().join("psta-analyze-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        run_to_string(&[
            "analyze",
            "sample:c17",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\":\"wave\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stems_zero_lifts_the_limit() {
        // `--stems 0` = condition on every stem; on c17 this matches the
        // exact algorithm's stem handling and still completes.
        let text = run_to_string(&["analyze", "sample:c17", "--stems", "0", "--csv"]).unwrap();
        assert!(text.lines().count() >= 2);
    }
}
