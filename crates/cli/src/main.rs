//! `psta` — command-line statistical timing analysis.

use std::process::ExitCode;

fn main() -> ExitCode {
    // First Ctrl-C/SIGTERM latches a graceful degrade (partial report,
    // exit 7) or, under `psta serve`, the drain script; a second signal
    // exits immediately with 130.
    psta_cli::install_signal_handlers();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match psta_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
