//! Plain-text table and CSV rendering helpers.

/// A simple column-aligned text table (or CSV) builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: bool,
}

impl Table {
    /// Starts a table with the given headers; `csv` selects the output
    /// format.
    pub fn new<S: Into<String>>(headers: Vec<S>, csv: bool) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Appends one row (cells are padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        if self.csv {
            let mut out = self.headers.join(",");
            out.push('\n');
            for r in &self.rows {
                out.push_str(&r.join(","));
                out.push('\n');
            }
            return out;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = *w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }
}

/// Renders a distribution as an ASCII histogram (the "waveform of the
/// arrival time distribution" the paper highlights as PEP's advantage).
pub fn ascii_histogram(group: &pep_dist::DiscreteDist, step: pep_dist::TimeStep) -> String {
    const WIDTH: usize = 50;
    const ROWS: usize = 24;
    if group.is_empty() {
        return "(no events)
"
        .to_owned();
    }
    let lo = group.min_tick().expect("non-empty");
    let hi = group.max_tick().expect("non-empty");
    let span = (hi - lo + 1) as usize;
    let bucket = span.div_ceil(ROWS).max(1);
    let mut out = String::new();
    let mut t = lo;
    let mut peak = 0.0f64;
    let mut rows = Vec::new();
    while t <= hi {
        let end = (t + bucket as i64 - 1).min(hi);
        let mass: f64 = (t..=end).map(|tick| group.prob_at(tick)).sum();
        rows.push((t, end, mass));
        peak = peak.max(mass);
        t = end + 1;
    }
    for (start, _end, mass) in rows {
        let bar = if peak > 0.0 {
            (mass / peak * WIDTH as f64).round() as usize
        } else {
            0
        };
        let label = format!("{:>10.3}", step.time_of(start));
        out.push_str(&format!(
            "{label} |{:<WIDTH$}| {mass:.4}\n",
            "#".repeat(bar)
        ));
    }
    out
}

/// Formats a float with sensible precision for reports.
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns() {
        let mut t = Table::new(vec!["node", "mean"], false);
        t.row(vec!["a", "1.5"]);
        t.row(vec!["longer", "10.25"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].len(), lines[2].len(), "aligned columns");
    }

    #[test]
    fn csv_table_is_raw() {
        let mut t = Table::new(vec!["a", "b"], true);
        t.row(vec!["1", "2"]);
        assert_eq!(t.render(), "a,b\n1,2\n");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"], true);
        t.row(vec!["1"]);
        assert_eq!(t.render(), "a,b,c\n1,,\n");
    }

    #[test]
    fn histogram_scales_to_peak() {
        use pep_dist::{DiscreteDist, TimeStep};
        let g = DiscreteDist::from_ratios([(0, 1), (1, 4), (2, 1)]);
        let h = ascii_histogram(&g, TimeStep::default());
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].matches('#').count() > lines[0].matches('#').count());
        assert_eq!(
            ascii_histogram(&DiscreteDist::empty(), TimeStep::default()),
            "(no events)\n"
        );
    }

    #[test]
    fn num_precision() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(1.23456), "1.235");
        assert_eq!(num(123.456), "123.5");
    }
}
