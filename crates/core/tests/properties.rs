//! Property-based tests of the analyzer: randomized exactness against the
//! brute-force enumeration oracle, and structural sanity of the
//! approximate algorithm.

use pep_celllib::{DelayModel, DelayShape, Timing};
use pep_core::{analyze, validate, AnalysisConfig, ArcPmfs, CombineMode};
use pep_dist::TimeStep;
use pep_netlist::generate::{random_circuit, RandomCircuitSpec};
use pep_netlist::Netlist;
use proptest::prelude::*;

/// Small circuits the enumeration oracle can exhaust: at most 8 gates
/// with coarse (≤ 4-point) delay distributions.
fn tiny_spec() -> impl Strategy<Value = RandomCircuitSpec> {
    (2usize..5, 3usize..=8, 2usize..5, 0.0f64..0.5, any::<u64>()).prop_map(
        |(inputs, gates, depth, inv, seed)| RandomCircuitSpec {
            name: "tiny".into(),
            inputs,
            gates,
            depth: depth.min(gates),
            max_fanin: 3,
            level_reach: 2,
            window: 1.0,
            inverter_fraction: inv,
            seed,
        },
    )
}

/// A coarse grid giving each cell-delay pdf roughly 2–4 points.
fn coarse_step(netlist: &Netlist, timing: &Timing) -> TimeStep {
    let fine = timing.step_for_samples(3);
    let _ = netlist;
    fine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The central correctness property of the whole reproduction: on any
    /// circuit the enumeration oracle can exhaust, the exact
    /// sampling-evaluation reproduces the true joint distribution at
    /// every node, in both combine modes.
    #[test]
    fn exact_equals_enumeration(spec in tiny_spec(), seed in any::<u64>()) {
        let nl = random_circuit(&spec);
        let model = DelayModel::dac2001(seed)
            .with_shape(DelayShape::Uniform)
            .with_sigma_range(0.05, 0.09);
        let timing = Timing::annotate(&nl, &model);
        let step = coarse_step(&nl, &timing);
        let arcs = ArcPmfs::discretize_all(&nl, &timing, step);
        let combos: f64 = nl
            .node_ids()
            .filter(|&n| nl.kind(n) != pep_netlist::GateKind::Input)
            .map(|n| arcs.cell(n).support_len() as f64)
            .product();
        prop_assume!(combos <= 1e5);
        for mode in [CombineMode::Latest, CombineMode::Earliest] {
            let truth = validate::enumerate_exact(&nl, &arcs, mode);
            let cfg = AnalysisConfig {
                mode,
                ..AnalysisConfig::exact_with_step(step)
            };
            let analysis = analyze(&nl, &timing, &cfg);
            for id in nl.node_ids() {
                prop_assert!(
                    analysis.group(id).l1_distance(&truth[id.index()]) < 1e-9,
                    "{mode:?} node {} differs",
                    nl.node_name(id)
                );
            }
        }
    }

    /// The approximate algorithm's means stay close to exact on circuits
    /// where exact is feasible — the heuristics trade tails, not bulk.
    #[test]
    fn approximate_tracks_exact_means(spec in tiny_spec(), seed in any::<u64>()) {
        let nl = random_circuit(&spec);
        let model = DelayModel::dac2001(seed).with_shape(DelayShape::Uniform);
        let timing = Timing::annotate(&nl, &model);
        let step = timing.step_for_samples(6);
        let exact = analyze(&nl, &timing, &AnalysisConfig::exact_with_step(step));
        let approx = analyze(
            &nl,
            &timing,
            &AnalysisConfig {
                step_override: Some(step),
                ..AnalysisConfig::default()
            },
        );
        for id in nl.node_ids() {
            let e = exact.mean_time(id);
            if e == 0.0 {
                continue;
            }
            let a = approx.mean_time(id);
            prop_assert!(
                ((a - e) / e).abs() < 0.05,
                "node {}: approx {a} vs exact {e}",
                nl.node_name(id)
            );
        }
    }

    /// Invariants of any analysis result: unit mass (up to dropping with
    /// renormalization), arrivals bounded by the structural min/max path
    /// delays, and monotonicity along edges.
    #[test]
    fn analysis_invariants(spec in tiny_spec(), seed in any::<u64>()) {
        let nl = random_circuit(&spec);
        let timing = Timing::annotate(&nl, &DelayModel::dac2001(seed));
        let a = analyze(&nl, &timing, &AnalysisConfig::default());
        for id in nl.node_ids() {
            let g = a.group(id);
            prop_assert!((g.total_mass() - 1.0).abs() < 1e-6, "node {}", nl.node_name(id));
            // A gate's arrival mean exceeds each fanin's by at least
            // (close to) the arc's minimum delay.
            for (pin, &f) in nl.fanins(id).iter().enumerate() {
                let (lo, _) = timing.cell_arc(id, pin).discretization_range();
                prop_assert!(
                    a.mean_time(id) >= a.mean_time(f) + lo - a.step().size(),
                    "edge {} -> {}",
                    nl.node_name(f),
                    nl.node_name(id)
                );
            }
        }
    }

    /// Determinism across repeated runs, for arbitrary configurations.
    #[test]
    fn deterministic_for_any_config(
        spec in tiny_spec(),
        pm in prop::sample::select(vec![0.0, 1e-6, 1e-3]),
        stems in 0usize..3,
        depth in prop::option::of(1u32..6),
    ) {
        let nl = random_circuit(&spec);
        let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));
        let cfg = AnalysisConfig {
            min_event_prob: pm,
            max_effective_stems: Some(stems),
            supergate_depth: depth,
            ..AnalysisConfig::default()
        };
        let a = analyze(&nl, &timing, &cfg);
        let b = analyze(&nl, &timing, &cfg);
        for id in nl.node_ids() {
            prop_assert_eq!(a.group(id), b.group(id));
        }
    }
}
