//! Fault-injection suite: every injected failure must surface as a
//! typed [`PepError`] or a structured warning — never an abort.
//!
//! Run with `cargo test -p pep-core --features fault-injection`.

#![cfg(feature = "fault-injection")]

use pep_celllib::{DelayModel, Timing};
use pep_core::{faults, try_analyze, AnalysisConfig, AnalysisError, PepError};
use pep_netlist::{samples, Netlist};
use std::sync::{Mutex, MutexGuard};

/// The fault registry is process-global one-shot state; serialize the
/// tests so one test's armed fault cannot fire inside another.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    faults::disarm_all();
    guard
}

fn fixture() -> (Netlist, Timing) {
    let nl = samples::fig6();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(9));
    (nl, timing)
}

fn config(threads: usize) -> AnalysisConfig {
    AnalysisConfig {
        threads,
        ..AnalysisConfig::default()
    }
}

#[test]
fn worker_panic_becomes_typed_error_inline() {
    let _g = lock();
    let (nl, timing) = fixture();
    faults::arm(faults::WAVE_WORKER_PANIC, 0);
    let err = try_analyze(&nl, &timing, &config(1)).unwrap_err();
    faults::disarm_all();
    match err {
        PepError::Analysis(AnalysisError::WorkerPanic { node, detail }) => {
            assert!(!node.is_empty());
            assert!(detail.contains("injected"), "payload preserved: {detail}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn worker_panic_becomes_typed_error_multithreaded() {
    let _g = lock();
    let (nl, timing) = fixture();
    // Skip a few evaluations so the panic lands mid-wave on a worker.
    faults::arm(faults::WAVE_WORKER_PANIC, 3);
    let err = try_analyze(&nl, &timing, &config(4)).unwrap_err();
    faults::disarm_all();
    assert!(
        matches!(err, PepError::Analysis(AnalysisError::WorkerPanic { .. })),
        "got {err}"
    );
}

#[test]
fn supergate_alloc_failure_is_caught() {
    let _g = lock();
    let (nl, timing) = fixture();
    faults::arm(faults::SUPERGATE_ALLOC, 0);
    let err = try_analyze(&nl, &timing, &config(2)).unwrap_err();
    faults::disarm_all();
    match err {
        PepError::Analysis(AnalysisError::WorkerPanic { detail, .. }) => {
            assert!(detail.contains("alloc"), "site named: {detail}");
        }
        other => panic!("expected caught allocation panic, got {other}"),
    }
}

#[test]
fn degenerate_pdf_recovers_with_warning() {
    let _g = lock();
    let (nl, timing) = fixture();
    faults::arm(faults::DEGENERATE_PDF, 0);
    let a = try_analyze(&nl, &timing, &config(1)).expect("recovers by plain re-evaluation");
    faults::disarm_all();
    let w = a
        .warnings()
        .iter()
        .find(|w| w.code == "degenerate.group")
        .expect("recovery recorded");
    assert!(w.subject.starts_with("sg:"), "names the supergate: {w}");
    for po in nl.primary_outputs() {
        assert!(!a.group(*po).is_empty(), "usable result after recovery");
    }
}

#[test]
fn injected_deadline_expiry_degrades_not_dies() {
    let _g = lock();
    let (nl, timing) = fixture();
    faults::arm(faults::DEADLINE, 0);
    let a = try_analyze(&nl, &timing, &config(1)).expect("deadline degrades");
    faults::disarm_all();
    assert!(
        a.warnings()
            .iter()
            .any(|w| w.code == "budget.deadline" && w.knob == "conditioning"),
        "supergates fell back topologically: {:?}",
        a.warnings()
    );
    for po in nl.primary_outputs() {
        assert!(!a.group(*po).is_empty());
    }
}

#[test]
fn no_armed_fault_is_bit_identical_and_warning_free() {
    let _g = lock();
    let (nl, timing) = fixture();
    let a = try_analyze(&nl, &timing, &config(1)).expect("clean run");
    let b = try_analyze(&nl, &timing, &config(4)).expect("clean run");
    assert!(a.warnings().is_empty() && b.warnings().is_empty());
    for id in nl.node_ids() {
        assert_eq!(a.group(id), b.group(id));
    }
}

#[test]
fn every_site_survives_without_aborting() {
    let _g = lock();
    let (nl, timing) = fixture();
    for site in [
        faults::WAVE_WORKER_PANIC,
        faults::SUPERGATE_ALLOC,
        faults::DEGENERATE_PDF,
        faults::DEADLINE,
    ] {
        for threads in [1usize, 2] {
            faults::disarm_all();
            faults::arm(site, 0);
            // Ok (degraded, with warnings) or a typed error — both are
            // survival; reaching the next iteration proves no abort.
            let _ = try_analyze(&nl, &timing, &config(threads));
        }
    }
    faults::disarm_all();
}
