//! Budgeted runs: graceful degradation, determinism, and inertness.
//!
//! Count-based budget trips (combinations, stems, memory) degrade
//! *deterministically*: the same groups and the same ordered warning
//! list for every thread count, because degradations are decided from
//! thread-invariant quantities and committed on the orchestration
//! thread in wave order. Deadline trips are inherently wall-clock
//! dependent and only promise completion-with-warnings.

use pep_celllib::{DelayModel, Timing};
use pep_core::{analyze, try_analyze, AnalysisConfig, Budget, PepError};
use pep_netlist::generate::{iscas_profile, random_circuit, IscasProfile, RandomCircuitSpec};
use pep_netlist::Netlist;

/// Same reduced ISCAS-like generator as the determinism suite: hundreds
/// of supergates across many waves, test-suite fast.
fn iscas_like() -> Netlist {
    random_circuit(&RandomCircuitSpec {
        name: "iscas-like".to_owned(),
        inputs: 40,
        gates: 420,
        depth: 12,
        max_fanin: 3,
        level_reach: 2,
        window: 0.15,
        inverter_fraction: 0.55,
        seed: 0xD0C5,
    })
}

/// Conditioning-heavy configuration: no effective-stem limit, so the
/// combination estimates are large enough for a tight cap to trip.
fn heavy_config() -> AnalysisConfig {
    AnalysisConfig {
        max_effective_stems: None,
        ..AnalysisConfig::default()
    }
}

#[test]
fn combination_cap_degrades_identically_across_threads() {
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));
    let budget = Budget {
        max_combinations: Some(64),
        ..Budget::default()
    };
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            analyze(
                &nl,
                &timing,
                &AnalysisConfig {
                    threads,
                    budget: Some(budget.clone()),
                    ..heavy_config()
                },
            )
        })
        .collect();
    assert!(
        !runs[0].warnings().is_empty(),
        "a 64-combination cap must trip on this circuit"
    );
    let base = &runs[0];
    for (i, run) in runs.iter().enumerate().skip(1) {
        for id in nl.node_ids() {
            assert_eq!(
                base.group(id),
                run.group(id),
                "budgeted group mismatch at {id:?} (run {i})"
            );
        }
        assert_eq!(
            base.warnings(),
            run.warnings(),
            "warning list differs between threads=1 and run {i}"
        );
        assert_eq!(base.stats(), run.stats(), "stats differ (run {i})");
    }
    // Every degradation names the supergate and the knob it changed.
    for w in base.warnings() {
        assert!(w.code.starts_with("budget."), "budget code: {w}");
        assert!(w.subject.starts_with("sg:"), "names the supergate: {w}");
        assert!(!w.knob.is_empty(), "names the knob: {w}");
        assert!(!w.impact.is_empty(), "states the accuracy impact: {w}");
    }
}

#[test]
fn stem_budget_caps_conditioning_with_warning() {
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));
    let a = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            budget: Some(Budget {
                max_stems_per_supergate: Some(1),
                ..Budget::default()
            }),
            ..heavy_config()
        },
    );
    assert!(
        a.warnings().iter().any(|w| w.code == "budget.stems"),
        "stem cap must trip with no effective-stem limit: {:?}",
        a.warnings()
    );
}

#[test]
fn memory_budget_tightens_pm_and_completes() {
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));
    let a = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            budget: Some(Budget {
                max_event_bytes: Some(16 << 10),
                ..Budget::default()
            }),
            ..AnalysisConfig::default()
        },
    );
    assert!(
        a.warnings()
            .iter()
            .any(|w| w.code == "budget.memory" && w.knob == "min_event_prob"),
        "a 16 KiB event budget must trip: {:?}",
        a.warnings()
    );
    // The degraded groups are still normalized event groups.
    for po in nl.primary_outputs() {
        let g = a.group(*po);
        assert!(!g.is_empty());
        assert!((g.total_mass() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn memory_budget_is_thread_invariant() {
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(7));
    let budget = Budget {
        max_event_bytes: Some(16 << 10),
        ..Budget::default()
    };
    let one = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            threads: 1,
            budget: Some(budget.clone()),
            ..AnalysisConfig::default()
        },
    );
    let four = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            threads: 4,
            budget: Some(budget),
            ..AnalysisConfig::default()
        },
    );
    for id in nl.node_ids() {
        assert_eq!(one.group(id), four.group(id));
    }
    assert_eq!(one.warnings(), four.warnings());
}

#[test]
fn roomy_budget_is_bit_identical_to_no_budget() {
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(5));
    let plain = analyze(&nl, &timing, &AnalysisConfig::default());
    let budgeted = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            budget: Some(Budget {
                deadline_ms: Some(600_000),
                max_combinations: Some(u64::MAX / 2),
                max_event_bytes: Some(usize::MAX / 2),
                max_stems_per_supergate: Some(200),
                fail_fast: false,
            }),
            ..AnalysisConfig::default()
        },
    );
    assert!(budgeted.warnings().is_empty(), "{:?}", budgeted.warnings());
    for id in nl.node_ids() {
        assert_eq!(plain.group(id), budgeted.group(id));
    }
    assert_eq!(plain.stats(), budgeted.stats());
}

#[test]
fn fail_fast_surfaces_a_typed_budget_error() {
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));
    let err = try_analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            budget: Some(Budget {
                max_combinations: Some(1),
                fail_fast: true,
                ..Budget::default()
            }),
            ..heavy_config()
        },
    )
    .unwrap_err();
    match err {
        PepError::Budget(b) => {
            assert_eq!(b.resource, "max_combinations");
            assert_eq!(b.limit, 1);
            assert!(b.observed > 1);
        }
        other => panic!("expected PepError::Budget, got {other}"),
    }
}

/// The full s5378 profile under a tight combination cap: the budgeted
/// groups AND the ordered warning list must be identical at 1, 2 and 4
/// threads.
#[test]
fn s5378_combination_cap_is_thread_invariant() {
    let nl = iscas_profile(IscasProfile::S5378);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let budget = Budget {
        max_combinations: Some(64),
        ..Budget::default()
    };
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            analyze(
                &nl,
                &timing,
                &AnalysisConfig {
                    threads,
                    budget: Some(budget.clone()),
                    ..heavy_config()
                },
            )
        })
        .collect();
    assert!(!runs[0].warnings().is_empty(), "cap must trip on s5378");
    for run in &runs[1..] {
        for id in nl.node_ids() {
            assert_eq!(runs[0].group(id), run.group(id));
        }
        assert_eq!(runs[0].warnings(), run.warnings());
        assert_eq!(runs[0].stats(), run.stats());
    }
}

/// The issue's hostile run: the full s5378 profile with *no*
/// effective-stem limit (exponential conditioning if left alone) under
/// a 2-second wall-clock deadline. The run must complete — degraded,
/// not dead — with warnings naming the supergates that fell back.
#[test]
fn hostile_s5378_deadline_run_completes_with_warnings() {
    let nl = iscas_profile(IscasProfile::S5378);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let a = try_analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            budget: Some(Budget {
                deadline_ms: Some(2_000),
                ..Budget::default()
            }),
            ..heavy_config()
        },
    )
    .expect("a deadline run degrades instead of failing");
    assert!(
        !a.warnings().is_empty(),
        "2s is not enough for exact conditioning of s5378"
    );
    assert!(a
        .warnings()
        .iter()
        .any(|w| w.code == "budget.deadline" && w.subject.starts_with("sg:")));
    // Every output still carries a usable arrival-time group.
    for po in nl.primary_outputs() {
        assert!(!a.group(*po).is_empty());
    }
}
