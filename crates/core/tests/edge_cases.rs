//! Edge-case tests of the analyzer's public surface: degenerate
//! circuits, configuration extremes and the dynamic mode's corner cases.

use pep_celllib::{DelayModel, Timing};
use pep_core::{
    analyze, analyze_with_inputs, criticality, dynamic, AnalysisConfig, CombineMode, HybridMcConfig,
};
use pep_dist::{DiscreteDist, TimeStep};
use pep_netlist::{samples, GateKind, NetlistBuilder};

fn inverter_chain(n: usize) -> pep_netlist::Netlist {
    let mut b = NetlistBuilder::new("chain");
    b.input("a").unwrap();
    let mut prev = "a".to_owned();
    for i in 0..n {
        let name = format!("n{i}");
        b.gate(&name, GateKind::Not, &[&prev]).unwrap();
        prev = name;
    }
    b.output(&prev).unwrap();
    b.build().unwrap()
}

#[test]
fn chain_arrival_is_sum_of_delays() {
    // No reconvergence: the output group is the exact convolution of all
    // cell delays; its mean is the sum of means.
    let nl = inverter_chain(10);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(5));
    let pep = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            min_event_prob: 0.0,
            ..AnalysisConfig::default()
        },
    );
    assert_eq!(pep.stats().supergates, 0);
    let po = nl.primary_outputs()[0];
    let expected: f64 = nl
        .node_ids()
        .filter(|&n| nl.kind(n) != GateKind::Input)
        .map(|n| timing.cell_arc(n, 0).mean())
        .sum();
    let step = pep.step().size();
    assert!(
        (pep.mean_time(po) - expected).abs() < step,
        "chain mean {} vs sum {expected}",
        pep.mean_time(po)
    );
    // Variances add too.
    let expected_var: f64 = nl
        .node_ids()
        .filter(|&n| nl.kind(n) != GateKind::Input)
        .map(|n| timing.cell_arc(n, 0).variance())
        .sum();
    let got_var = pep.std_time(po) * pep.std_time(po);
    assert!((got_var - expected_var).abs() / expected_var < 0.05);
}

#[test]
fn single_gate_circuit() {
    let mut b = NetlistBuilder::new("one");
    b.input("a").unwrap();
    b.gate("y", GateKind::Buf, &["a"]).unwrap();
    b.output("y").unwrap();
    let nl = b.build().unwrap();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(2));
    let pep = analyze(&nl, &timing, &AnalysisConfig::default());
    let y = nl.node_id("y").unwrap();
    let arc = timing.cell_arc(y, 0);
    assert!((pep.mean_time(y) - arc.mean()).abs() < pep.step().size());
    assert!((pep.std_time(y) - arc.std_dev()).abs() < pep.step().size());
}

#[test]
fn zero_stems_config_equals_naive_propagation() {
    // max_effective_stems = 0 must reproduce plain (tree-style)
    // propagation even on reconvergent circuits.
    let nl = samples::c17();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));
    let cfg0 = AnalysisConfig {
        max_effective_stems: Some(0),
        filter_stems: false,
        ..AnalysisConfig::default()
    };
    let a = analyze(&nl, &timing, &cfg0);
    assert_eq!(a.stats().stems_conditioned, 0);
    // Independent re-derivation with DiscreteDist ops.
    let step = a.step();
    let arcs = pep_core::ArcPmfs::discretize_all(&nl, &timing, step);
    let mut groups = vec![DiscreteDist::empty(); nl.node_count()];
    for &id in nl.topo_order() {
        if nl.kind(id) == GateKind::Input {
            groups[id.index()] = DiscreteDist::point(0);
            continue;
        }
        let combined = nl
            .fanins(id)
            .iter()
            .map(|f| groups[f.index()].clone())
            .reduce(|x, y| x.max(&y))
            .expect("gates have fanins");
        let mut g = combined.convolve(arcs.cell(id));
        g.truncate_below(1e-5);
        g.normalize();
        groups[id.index()] = g;
    }
    for id in nl.node_ids() {
        assert!(
            a.group(id).l1_distance(&groups[id.index()]) < 1e-9,
            "node {}",
            nl.node_name(id)
        );
    }
}

#[test]
fn staggered_inputs_shift_results() {
    let nl = samples::mux2();
    let timing = Timing::uniform(&nl, 1.0);
    let cfg = AnalysisConfig::exact_with_step(TimeStep::new(1.0).expect("valid"));
    // Input `s` arrives late and uncertain.
    let s_id = nl.node_id("s").unwrap();
    let a = analyze_with_inputs(&nl, &timing, &cfg, |pi| {
        if pi == s_id {
            DiscreteDist::from_ratios([(5, 1), (8, 1)])
        } else {
            DiscreteDist::point(0)
        }
    });
    let y = nl.node_id("y").unwrap();
    // y = OR(t0, t1); the path through ns/t1 sees s + 3 gates.
    assert_eq!(a.group(y).max_tick(), Some(8 + 3));
    assert!(a.group(y).min_tick() >= Some(2));
}

#[test]
fn hybrid_threshold_gates_usage() {
    let nl = samples::fig6();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(7));
    // Threshold higher than any stem count: hybrid never fires.
    let cfg = AnalysisConfig {
        hybrid_mc: Some(HybridMcConfig {
            stem_threshold: 100,
            runs: 100,
            seed: 1,
        }),
        ..AnalysisConfig::default()
    };
    let a = analyze(&nl, &timing, &cfg);
    assert_eq!(a.stats().hybrid_evaluations, 0);
    // Threshold zero: every conditioned supergate goes hybrid.
    let cfg = AnalysisConfig {
        hybrid_mc: Some(HybridMcConfig {
            stem_threshold: 0,
            runs: 500,
            seed: 1,
        }),
        ..AnalysisConfig::default()
    };
    let a = analyze(&nl, &timing, &cfg);
    assert!(a.stats().hybrid_evaluations > 0);
}

#[test]
fn earliest_mode_on_chain_equals_latest() {
    // A pure chain has one path: min and max analyses coincide.
    let nl = inverter_chain(5);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let step = TimeStep::new(0.05).expect("valid");
    let late = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            step_override: Some(step),
            ..AnalysisConfig::default()
        },
    );
    let early = analyze(
        &nl,
        &timing,
        &AnalysisConfig {
            step_override: Some(step),
            mode: CombineMode::Earliest,
            ..AnalysisConfig::default()
        },
    );
    let po = nl.primary_outputs()[0];
    assert!(late.group(po).l1_distance(early.group(po)) < 1e-9);
}

#[test]
fn dynamic_xor_chain_parity() {
    // An XOR chain where one input toggles: every stage toggles.
    let mut b = NetlistBuilder::new("xorchain");
    b.input("a").unwrap();
    b.input("b").unwrap();
    b.gate("x0", GateKind::Xor, &["a", "b"]).unwrap();
    b.gate("x1", GateKind::Xor, &["x0", "b"]).unwrap();
    b.output("x1").unwrap();
    let nl = b.build().unwrap();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(2));
    let d = dynamic::analyze_transition(
        &nl,
        &timing,
        &[false, false],
        &[true, false],
        &AnalysisConfig::default(),
    );
    assert!(d.transitions(nl.node_id("x0").unwrap()));
    assert!(d.transitions(nl.node_id("x1").unwrap()));
    let m0 = d.mean_time(nl.node_id("x0").unwrap()).expect("switches");
    let m1 = d.mean_time(nl.node_id("x1").unwrap()).expect("switches");
    assert!(m1 > m0, "second stage switches later");
}

#[test]
fn criticality_on_single_output_is_one() {
    let nl = inverter_chain(3);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let a = analyze(&nl, &timing, &AnalysisConfig::default());
    let crit = criticality::output_criticality(&nl, &a);
    assert_eq!(crit.len(), 1);
    assert!((crit[0].1 - 1.0).abs() < 1e-9);
}

#[test]
fn violation_probability_zero_for_generous_deadline() {
    let nl = samples::c17();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let a = analyze(&nl, &timing, &AnalysisConfig::default());
    let scored = criticality::violation_probabilities(&nl, &timing, &a, 1e6, 0.0);
    for (n, p) in scored {
        assert_eq!(p, 0.0, "node {} violates a huge deadline", nl.node_name(n));
    }
}
