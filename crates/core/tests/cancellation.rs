//! Cooperative cancellation semantics of the analysis entry points.
//!
//! Degrade-strength cancellation must finish the run fast with
//! topological fallbacks and `cancel.requested` warnings; abort-strength
//! must return a typed [`PepError::Cancelled`]; and a live token must
//! leave results bit-identical to the non-cancellable entry points.

use pep_celllib::{DelayModel, Timing};
use pep_core::{
    try_analyze_cancellable, try_analyze_observed, AnalysisConfig, CancelToken, PepError,
};
use pep_netlist::samples;
use pep_obs::Session;

#[test]
fn live_token_is_bit_identical_to_plain_run() {
    let nl = samples::fig6();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(3));
    let cfg = AnalysisConfig::default();
    let plain = try_analyze_observed(&nl, &t, &cfg, &Session::disabled()).expect("plain run");
    let token = CancelToken::new();
    let cancellable =
        try_analyze_cancellable(&nl, &t, &cfg, &Session::disabled(), &token).expect("live token");
    for id in nl.node_ids() {
        assert_eq!(plain.group(id), cancellable.group(id));
    }
    assert_eq!(plain.warnings(), cancellable.warnings());
}

#[test]
fn degrade_cancellation_finishes_with_fallback_warnings() {
    let nl = samples::c17();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let cfg = AnalysisConfig::default();
    let token = CancelToken::new();
    // Cancel before the run starts: every supergate must fall back to
    // plain topological propagation, and the run still completes.
    token.cancel_degrade();
    let obs = Session::new();
    let a = try_analyze_cancellable(&nl, &t, &cfg, &obs, &token).expect("degrade completes");
    assert!(
        a.warnings().iter().any(|w| w.code == "cancel.requested"),
        "supergate fallbacks must be attributed to the cancellation: {:?}",
        a.warnings()
    );
    assert!(
        !a.warnings().iter().any(|w| w.code == "budget.deadline"),
        "cancellation must not masquerade as a deadline trip"
    );
    // Every node still has a (coarse) group.
    for &po in nl.primary_outputs() {
        assert!(a.mean_time(po) > 0.0);
    }
    // No conditioning happened.
    assert_eq!(a.stats().stems_conditioned, 0);
}

#[test]
fn degrade_cancellation_is_deterministic_across_threads() {
    let nl = samples::fig6();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(7));
    let run = |threads: usize| {
        let token = CancelToken::new();
        token.cancel_degrade();
        let cfg = AnalysisConfig {
            threads,
            ..AnalysisConfig::default()
        };
        try_analyze_cancellable(&nl, &t, &cfg, &Session::disabled(), &token)
            .expect("degrade completes")
    };
    let one = run(1);
    let four = run(4);
    for id in nl.node_ids() {
        assert_eq!(one.group(id), four.group(id));
    }
    assert_eq!(one.warnings(), four.warnings());
}

#[test]
fn abort_cancellation_is_a_typed_error() {
    let nl = samples::c17();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let token = CancelToken::new();
    token.cancel_abort();
    let err = try_analyze_cancellable(
        &nl,
        &t,
        &AnalysisConfig::default(),
        &Session::disabled(),
        &token,
    )
    .expect_err("abort stops the run");
    match err {
        PepError::Cancelled(c) => assert_eq!(c.phase, "propagate"),
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn degrade_with_fail_fast_budget_still_completes() {
    // Cancellation is exempt from fail-fast: the caller asked the run
    // to wrap up, which is not a budget trip.
    let nl = samples::c17();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let cfg = AnalysisConfig {
        budget: Some(pep_core::Budget {
            fail_fast: true,
            max_combinations: Some(u64::MAX),
            ..pep_core::Budget::default()
        }),
        ..AnalysisConfig::default()
    };
    let token = CancelToken::new();
    token.cancel_degrade();
    let a = try_analyze_cancellable(&nl, &t, &cfg, &Session::disabled(), &token)
        .expect("cancel fallbacks are not budget errors");
    assert!(a.warnings().iter().any(|w| w.code == "cancel.requested"));
}

#[test]
fn transition_analysis_honors_abort() {
    let nl = samples::mux2();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let token = CancelToken::new();
    token.cancel_abort();
    let err = pep_core::dynamic::try_analyze_transition_cancellable(
        &nl,
        &t,
        &[true, false, false],
        &[true, false, true],
        &AnalysisConfig::default(),
        &Session::disabled(),
        &token,
    )
    .expect_err("abort stops the dynamic run");
    assert!(matches!(err, PepError::Cancelled(_)));
}

#[test]
fn monte_carlo_degrade_keeps_completed_runs() {
    use pep_sta::monte_carlo::{try_run_monte_carlo_cancellable, McConfig};
    let nl = samples::c17();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let token = CancelToken::new();
    let obs = Session::new();
    // Cancel from another thread shortly after the loop starts; the
    // huge run count guarantees the loop is still going.
    let cfg = McConfig {
        runs: 500_000_000,
        threads: 2,
        ..McConfig::default()
    };
    let result = std::thread::scope(|scope| {
        let canceller = token.clone();
        scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            canceller.cancel_degrade();
        });
        try_run_monte_carlo_cancellable(&nl, &t, &cfg, &obs, &token)
    })
    .expect("degrade keeps completed runs");
    assert!(result.runs() > 0);
    assert!(result.runs() < 500_000_000);
    assert!(obs.warnings().iter().any(|w| w.code == "mc.cancelled"));
}

#[test]
fn monte_carlo_abort_is_a_typed_error() {
    use pep_sta::monte_carlo::{try_run_monte_carlo_cancellable, McConfig};
    let nl = samples::c17();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let token = CancelToken::new();
    token.cancel_abort();
    let err = try_run_monte_carlo_cancellable(
        &nl,
        &t,
        &McConfig {
            runs: 1_000,
            ..McConfig::default()
        },
        &Session::disabled(),
        &token,
    )
    .expect_err("abort discards partial state");
    match err {
        PepError::Cancelled(c) => assert_eq!(c.phase, "mc-baseline"),
        other => panic!("expected Cancelled, got {other:?}"),
    }
}
