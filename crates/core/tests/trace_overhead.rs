//! The tracing overhead contract (DESIGN.md §11): with no trace
//! attached, every span site the analyzer gained must be free — a
//! disabled `TraceBuffer` is one byte compare, resolving the trace is
//! one mutex lock per run — so an s5378 analysis with a trace-less
//! session times within noise of one without any of the machinery
//! exercised. A cheap `Phases`-level trace (tens of wave spans) must
//! stay close too.
//!
//! Wall-clock assertions are inherently noisy on shared CI runners, so
//! the guard compares best-of-N over interleaved repetitions (best-of
//! discards scheduler hiccups; interleaving cancels thermal drift) and
//! the thresholds are deliberately generous: a real regression at
//! these call sites — an `Instant::now()` per kernel call when off,
//! say — shows up as 2×, not 1.05×.

use pep_celllib::{DelayModel, Timing};
use pep_core::{analyze_observed, AnalysisConfig};
use pep_netlist::generate::{iscas_profile, IscasProfile};
use pep_obs::{Session, Trace, TraceLevel};
use std::time::{Duration, Instant};

const REPS: usize = 3;

fn run_once(
    nl: &pep_netlist::Netlist,
    t: &Timing,
    cfg: &AnalysisConfig,
    obs: &Session,
) -> Duration {
    let start = Instant::now();
    let a = analyze_observed(nl, t, cfg, obs);
    let elapsed = start.elapsed();
    assert!(a.stats().supergates > 0);
    elapsed
}

#[test]
fn s5378_tracing_off_is_free_and_phases_is_cheap() {
    let nl = iscas_profile(IscasProfile::S5378);
    let t = Timing::annotate(&nl, &DelayModel::dac2001(7));
    let cfg = AnalysisConfig::default();

    // Variant sessions: no trace attached (the pre-tracing baseline),
    // a trace attached but switched off (every new branch site taken),
    // and a live Phases-level trace (wave + phase spans recorded).
    let baseline = Session::new();
    let off = Session::new();
    off.set_trace(Trace::new(TraceLevel::Off));
    let phases = Session::new();
    phases.set_trace(Trace::new(TraceLevel::Phases));

    let mut best = [Duration::MAX; 3];
    for _ in 0..REPS {
        for (i, obs) in [&baseline, &off, &phases].into_iter().enumerate() {
            best[i] = best[i].min(run_once(&nl, &t, &cfg, obs));
        }
    }
    let [base, off_t, phases_t] = best;
    let ratio_off = off_t.as_secs_f64() / base.as_secs_f64();
    let ratio_phases = phases_t.as_secs_f64() / base.as_secs_f64();
    println!(
        "s5378 best-of-{REPS}: baseline {base:?}, trace-off {off_t:?} ({ratio_off:.3}x), \
         phases {phases_t:?} ({ratio_phases:.3}x)"
    );
    assert!(
        ratio_off < 1.25,
        "tracing-off must be within noise of no tracing at all \
         (got {ratio_off:.3}x: {off_t:?} vs {base:?})"
    );
    assert!(
        ratio_phases < 1.35,
        "a Phases-level trace records tens of spans per run and must \
         stay within noise (got {ratio_phases:.3}x: {phases_t:?} vs {base:?})"
    );
}
