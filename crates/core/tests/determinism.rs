//! Thread-count invariance of the wave-parallel scheduler.
//!
//! The scheduler's contract is *bit-identical* output — not statistical
//! closeness — for every thread count: per-node results are computed on
//! workers but committed on the orchestration thread in wave order, so
//! even the order-sensitive float accumulations (`dropped_mass`) agree
//! exactly.

use pep_celllib::{DelayModel, Timing};
use pep_core::{analyze, AnalysisConfig, StemRanking};
use pep_netlist::generate::{random_circuit, RandomCircuitSpec};
use pep_netlist::{samples, Netlist};

/// A reduced ISCAS-like circuit: same generator as the s-profiles, sized
/// so three analyses stay test-suite fast while still exercising
/// hundreds of supergates across many waves.
fn iscas_like() -> Netlist {
    random_circuit(&RandomCircuitSpec {
        name: "iscas-like".to_owned(),
        inputs: 40,
        gates: 420,
        depth: 12,
        max_fanin: 3,
        level_reach: 2,
        window: 0.15,
        inverter_fraction: 0.55,
        seed: 0xD0C5,
    })
}

fn assert_thread_invariant(nl: &Netlist, timing: &Timing, config: &AnalysisConfig) {
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            analyze(
                nl,
                timing,
                &AnalysisConfig {
                    threads,
                    ..config.clone()
                },
            )
        })
        .collect();
    let base = &runs[0];
    for (i, run) in runs.iter().enumerate().skip(1) {
        for id in nl.node_ids() {
            assert_eq!(
                base.group(id),
                run.group(id),
                "group mismatch at node {id:?} between threads=1 and run {i}"
            );
        }
        assert_eq!(
            base.stats(),
            run.stats(),
            "stats mismatch between threads=1 and run {i}"
        );
    }
}

#[test]
fn fig6_identical_across_thread_counts() {
    let nl = samples::fig6();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(9));
    assert_thread_invariant(&nl, &timing, &AnalysisConfig::default());
}

#[test]
fn iscas_like_identical_across_thread_counts() {
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));
    assert_thread_invariant(&nl, &timing, &AnalysisConfig::default());
}

#[test]
fn iscas_like_identical_with_sensitivity_and_hybrid() {
    // Exercises the second fan-out level (parallel sensitivity ranking)
    // and the seeded hybrid MC path under every thread count.
    let nl = iscas_like();
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(5));
    assert_thread_invariant(
        &nl,
        &timing,
        &AnalysisConfig {
            stem_ranking: StemRanking::Sensitivity,
            max_effective_stems: Some(2),
            hybrid_mc: Some(pep_core::HybridMcConfig {
                runs: 300,
                ..Default::default()
            }),
            ..AnalysisConfig::default()
        },
    );
}
