//! End-to-end span-tracing coverage: a traced analysis records phase,
//! wave, node/supergate and kernel spans; kernel aggregates feed the
//! session's log histograms; and tracing never changes the result.

use pep_celllib::{DelayModel, Timing};
use pep_core::{analyze, analyze_observed, AnalysisConfig};
use pep_netlist::{generate, samples, GateKind};
use pep_obs::{KernelKind, Session, Trace, TraceLevel};

fn traced_run(level: TraceLevel, threads: usize) -> (Trace, Session) {
    let nl = samples::fig6();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(9));
    let obs = Session::new();
    let trace = Trace::new(level);
    obs.set_trace(trace.clone());
    let cfg = AnalysisConfig {
        threads,
        ..AnalysisConfig::default()
    };
    analyze_observed(&nl, &t, &cfg, &obs);
    (trace, obs)
}

#[test]
fn phases_level_records_phase_and_wave_spans_only() {
    let (trace, _obs) = traced_run(TraceLevel::Phases, 1);
    let spans = trace.spans();
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "phase" && s.name == "propagate"),
        "the propagate phase span is recorded"
    );
    assert!(
        spans.iter().any(|s| s.cat == "wave"),
        "wave spans are recorded at Phases level"
    );
    assert!(
        spans.iter().all(|s| s.cat != "node" && s.cat != "kernel"),
        "node and kernel spans are gated off at Phases level"
    );
    // Kernel aggregation is gated off below Nodes too (hot-path cost).
    assert!(trace.kernel_aggregates().iter().all(|a| a.calls == 0));
}

#[test]
fn nodes_level_records_node_spans_and_kernel_aggregates() {
    let (trace, obs) = traced_run(TraceLevel::Nodes, 1);
    let spans = trace.spans();
    let node_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.cat == "node" || s.cat == "supergate")
        .collect();
    assert!(!node_spans.is_empty(), "node spans recorded at Nodes level");
    assert!(
        node_spans.iter().all(|s| !s.args.is_empty()),
        "node spans carry counter args"
    );
    let sg = spans
        .iter()
        .find(|s| s.cat == "supergate")
        .expect("fig6 reconverges, so a supergate span exists");
    let keys: Vec<&str> = sg.args.iter().map(|(k, _)| k).collect();
    assert_eq!(keys, ["node", "events", "stems", "combinations"]);
    let combos = sg
        .args
        .iter()
        .find(|(k, _)| *k == "combinations")
        .map(|(_, v)| v)
        .expect("combinations attached");
    assert!(combos > 0, "conditioning visited at least one leaf");
    assert!(
        spans.iter().all(|s| s.cat != "kernel"),
        "per-call kernel spans need Kernels level"
    );
    // Aggregates flow from Nodes level up…
    let aggs = trace.kernel_aggregates();
    assert!(aggs[KernelKind::Convolve as usize].calls > 0);
    // …and land in the session's log histograms, re-bucketed to seconds.
    let log = obs.log_histograms_snapshot();
    let conv = &log["pep.kernel.convolve.seconds"];
    assert_eq!(conv.count, aggs[KernelKind::Convolve as usize].calls);
    assert!(conv.sum > 0.0);
    assert!(log.contains_key("pep.wave.seconds"));
    assert!(log.contains_key("pep.wave.width"));
}

#[test]
fn kernels_level_records_per_call_spans() {
    let (trace, _obs) = traced_run(TraceLevel::Kernels, 1);
    let spans = trace.spans();
    let kernel_spans: Vec<_> = spans.iter().filter(|s| s.cat == "kernel").collect();
    assert!(!kernel_spans.is_empty());
    let names: std::collections::BTreeSet<&str> =
        kernel_spans.iter().map(|s| s.name.as_ref()).collect();
    assert!(
        names.contains("convolve"),
        "convolve spans present: {names:?}"
    );
    assert!(
        kernel_spans
            .iter()
            .all(|s| s.args.iter().any(|(k, _)| k == "events")),
        "kernel spans carry the output event-group size"
    );
}

#[test]
fn parallel_run_uses_worker_lanes() {
    // A wide tree gives every worker something to do.
    let nl = generate::comb_tree(GateKind::And, 256);
    let t = Timing::annotate(&nl, &DelayModel::dac2001(3));
    let obs = Session::new();
    let trace = Trace::new(TraceLevel::Nodes);
    obs.set_trace(trace.clone());
    let cfg = AnalysisConfig {
        threads: 4,
        ..AnalysisConfig::default()
    };
    analyze_observed(&nl, &t, &cfg, &obs);
    let spans = trace.spans();
    let lanes: std::collections::BTreeSet<u32> = spans
        .iter()
        .filter(|s| s.cat == "node")
        .map(|s| s.lane)
        .collect();
    assert!(
        lanes.iter().any(|&l| l >= 1),
        "node spans land on worker lanes: {lanes:?}"
    );
    assert!(
        spans
            .iter()
            .filter(|s| s.cat == "wave")
            .all(|s| s.lane == 0),
        "wave spans stay on the orchestration lane"
    );
}

#[test]
fn tracing_does_not_change_results() {
    let nl = samples::c17();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(5));
    let cfg = AnalysisConfig::default();
    let plain = analyze(&nl, &t, &cfg);
    let obs = Session::new();
    obs.set_trace(Trace::new(TraceLevel::Kernels));
    let traced = analyze_observed(&nl, &t, &cfg, &obs);
    for id in nl.node_ids() {
        assert_eq!(plain.group(id), traced.group(id));
    }
}

#[test]
fn untraced_session_records_no_spans() {
    let nl = samples::c17();
    let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
    let obs = Session::new();
    analyze_observed(&nl, &t, &AnalysisConfig::default(), &obs);
    assert!(!obs.trace().is_enabled());
    assert!(obs.trace().spans().is_empty());
}
