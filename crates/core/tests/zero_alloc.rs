//! The tentpole guarantee of the kernel layer: once the per-worker
//! scratch arena is warm, the conditioning enumeration performs **zero**
//! heap allocations, and a full `evaluate()` allocates only the returned
//! output group.
//!
//! A counting global allocator makes the claim checkable from outside
//! `pep-core`: the `#[doc(hidden)]` probes in `pep_core::probe` run the
//! recursion over persistent buffers and report per-rep allocation
//! deltas against the counter we hand them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// A single test function: the counter is process-global, so concurrent
// test threads would pollute each other's deltas.
#[test]
fn steady_state_conditioning_does_not_allocate() {
    // Rep 0 warms the arena (slabs are created on first checkout); every
    // later enumeration must run entirely out of recycled buffers.
    let deltas = pep_core::probe::cond_enumeration_alloc_deltas(6, &allocations);
    assert!(deltas[0] > 0, "cold run populates the arena");
    for (i, &d) in deltas.iter().enumerate().skip(1) {
        assert_eq!(d, 0, "warm conditioning rep {i} performed {d} allocations");
    }

    // `evaluate()` returns an owned group, so its steady-state budget is
    // the output buffer only. The bound is deliberately tight: the old
    // code cloned `sg.stems` (and built scored vectors) per call even
    // when no filtering applied, which busts it.
    let deltas = pep_core::probe::evaluate_alloc_deltas(6, &allocations);
    for (i, &d) in deltas.iter().enumerate().skip(1) {
        assert!(
            d <= 2,
            "warm evaluate rep {i} performed {d} allocations (output buffer budget is 2)"
        );
    }
}
