use pep_celllib::Timing;
use pep_dist::{discretize, DiscreteDist, TimeStep};
use pep_netlist::{GateKind, Netlist, NodeId};

/// Discretized delay distributions for every timing arc (paper §2.2).
///
/// One *cell* distribution per gate (shared by its pins, since a cell's
/// delay is a single random variable) and, when the annotation carries
/// wire delays, one *wire* distribution per pin.
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, Timing};
/// use pep_core::ArcPmfs;
/// use pep_netlist::samples;
///
/// let nl = samples::c17();
/// let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
/// let step = timing.step_for_samples(20);
/// let arcs = ArcPmfs::discretize_all(&nl, &timing, step);
/// let g = nl.node_id("22").expect("c17 gate");
/// assert!((arcs.cell(g).total_mass() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ArcPmfs {
    step: TimeStep,
    cell: Vec<DiscreteDist>,
    /// `wire[n][pin]`; empty inner vectors when wire delays are disabled.
    wire: Vec<Vec<DiscreteDist>>,
    has_wires: bool,
}

impl ArcPmfs {
    /// Discretizes every delay of `timing` on the grid `step`.
    pub fn discretize_all(netlist: &Netlist, timing: &Timing, step: TimeStep) -> Self {
        let n = netlist.node_count();
        let mut cell = Vec::with_capacity(n);
        let mut wire = Vec::with_capacity(n);
        for id in netlist.node_ids() {
            if netlist.kind(id) == GateKind::Input {
                cell.push(DiscreteDist::point(0));
                wire.push(Vec::new());
                continue;
            }
            cell.push(discretize(timing.cell_arc(id, 0), step));
            if timing.has_wire_delays() {
                wire.push(
                    (0..netlist.fanins(id).len())
                        .map(|pin| discretize(timing.wire_arc(id, pin), step))
                        .collect(),
                );
            } else {
                wire.push(Vec::new());
            }
        }
        ArcPmfs {
            step,
            cell,
            wire,
            has_wires: timing.has_wire_delays(),
        }
    }

    /// The sampling step all distributions live on.
    pub fn step(&self) -> TimeStep {
        self.step
    }

    /// The discretized cell delay of a gate.
    #[inline]
    pub fn cell(&self, gate: NodeId) -> &DiscreteDist {
        &self.cell[gate.index()]
    }

    /// The discretized wire delay into a gate pin, if wire delays exist.
    #[inline]
    pub fn wire(&self, gate: NodeId, pin: usize) -> Option<&DiscreteDist> {
        if self.has_wires {
            Some(&self.wire[gate.index()][pin])
        } else {
            None
        }
    }

    /// Whether wire arcs carry delay.
    pub fn has_wires(&self) -> bool {
        self.has_wires
    }

    /// The earliest (min) and latest (max) possible delay, in ticks, along
    /// the arc into `gate`'s `pin` — wire plus cell.
    pub fn arc_bounds(&self, gate: NodeId, pin: usize) -> (i64, i64) {
        let c = &self.cell[gate.index()];
        let (mut lo, mut hi) = (c.min_tick().unwrap_or(0), c.max_tick().unwrap_or(0));
        if let Some(w) = self.wire(gate, pin) {
            lo += w.min_tick().unwrap_or(0);
            hi += w.max_tick().unwrap_or(0);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_celllib::DelayModel;
    use pep_netlist::samples;

    #[test]
    fn cell_pmfs_are_normalized_and_sized() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let step = t.step_for_samples(20);
        let arcs = ArcPmfs::discretize_all(&nl, &t, step);
        let mut total_span = 0usize;
        let mut gates = 0usize;
        for id in nl.node_ids() {
            if nl.kind(id) == GateKind::Input {
                continue;
            }
            let c = arcs.cell(id);
            assert!((c.total_mass() - 1.0).abs() < 1e-9);
            total_span += c.support_span();
            gates += 1;
        }
        let avg = total_span as f64 / gates as f64;
        assert!(
            (avg - 20.0).abs() < 4.0,
            "average span {avg} should track N_s = 20"
        );
    }

    #[test]
    fn inputs_have_zero_delay_pmf() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let arcs = ArcPmfs::discretize_all(&nl, &t, t.step_for_samples(10));
        for &pi in nl.primary_inputs() {
            assert_eq!(arcs.cell(pi), &DiscreteDist::point(0));
        }
    }

    #[test]
    fn wire_arcs_present_when_enabled() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1).with_wire_fraction(0.2));
        let arcs = ArcPmfs::discretize_all(&nl, &t, t.step_for_samples(10));
        assert!(arcs.has_wires());
        let g = nl.node_id("22").expect("c17 gate");
        let w = arcs.wire(g, 0).expect("wire arcs enabled");
        assert!((w.total_mass() - 1.0).abs() < 1e-9);
        let (lo, hi) = arcs.arc_bounds(g, 0);
        assert!(hi > lo);
    }

    #[test]
    fn arc_bounds_cover_cell_support() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let arcs = ArcPmfs::discretize_all(&nl, &t, t.step_for_samples(15));
        let g = nl.node_id("10").expect("c17 gate");
        let (lo, hi) = arcs.arc_bounds(g, 0);
        assert_eq!(lo, arcs.cell(g).min_tick().expect("non-empty"));
        assert_eq!(hi, arcs.cell(g).max_tick().expect("non-empty"));
    }
}
