use crate::budget::Budget;
use pep_dist::TimeStep;
use serde::{Deserialize, Serialize};

/// Whether the analysis tracks latest (setup-style) or earliest
/// (hold-style) arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombineMode {
    /// Latest arrival: groups combine with the statistical maximum.
    Latest,
    /// Earliest arrival: groups combine with the statistical minimum.
    Earliest,
}

/// How candidate stems are ranked when selecting the most *effective*
/// stems of a supergate (§3.3, "choosing effective stems").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StemRanking {
    /// The paper's method: run a (coarsened) single-stem
    /// sampling-evaluation per candidate and rank by how much the result
    /// differs from the no-conditioning propagation.
    Sensitivity,
    /// A cheap structural proxy: rank by the overlap of the stem's
    /// influence window with the output window, scaled by its interior
    /// branch count. An order of magnitude faster on stem-dense circuits
    /// and only slightly less accurate.
    Window,
}

/// Monte Carlo evaluation *inside* a supergate (the paper's §4 hybrid).
///
/// Supergates whose conditioning stem count exceeds `stem_threshold` are
/// evaluated by direct sampling from the probabilistic events at their
/// inputs instead of by exhaustive sampling-evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridMcConfig {
    /// Use MC when more than this many stems would need conditioning.
    pub stem_threshold: usize,
    /// Samples per supergate evaluation.
    pub runs: usize,
    /// RNG seed (the hybrid is the only non-deterministic-by-nature part;
    /// seeding keeps the whole analysis reproducible).
    pub seed: u64,
}

impl Default for HybridMcConfig {
    fn default() -> Self {
        HybridMcConfig {
            stem_threshold: 4,
            runs: 2_000,
            seed: 0x5EED,
        }
    }
}

/// Configuration of the probabilistic-event-propagation analysis.
///
/// The defaults reproduce the paper's tuned operating point (§4):
/// `N_s = 20` samples per delay distribution, `P_m = 10⁻⁵`, stem
/// filtering on, single-stem estimation, supergate depth `D = 5`.
///
/// # Example
///
/// ```
/// use pep_core::AnalysisConfig;
///
/// // The paper's exact (no-heuristics) algorithm — exponential in the
/// // number of stems per supergate; use on small circuits only.
/// let exact = AnalysisConfig::exact();
/// assert_eq!(exact.min_event_prob, 0.0);
/// assert_eq!(exact.supergate_depth, None);
/// assert_eq!(exact.max_effective_stems, None);
///
/// // The fast approximate algorithm with a custom probability floor.
/// let fast = AnalysisConfig { min_event_prob: 1e-6, ..AnalysisConfig::default() };
/// assert!(fast.filter_stems);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// `N_s`: target number of data samples when discretizing each delay
    /// random variable (sets the sampling step; Fig. 8's knob).
    pub samples: usize,
    /// Overrides the derived sampling step when set (then `samples` is
    /// ignored).
    pub step_override: Option<TimeStep>,
    /// `P_m`: events below this probability are dropped at every cell
    /// output (0 disables; Fig. 7's knob).
    pub min_event_prob: f64,
    /// `D`: supergate depth limit in logic levels (`None` = unlimited;
    /// Fig. 9's knob).
    pub supergate_depth: Option<u32>,
    /// Keep only the most effective stems per supergate for
    /// sampling-evaluation (`None` = condition on every stem — the exact
    /// algorithm; `Some(1)` is the paper's single-stem estimation).
    pub max_effective_stems: Option<usize>,
    /// How candidates are ranked when `max_effective_stems` is set.
    pub stem_ranking: StemRanking,
    /// When ranking by [`StemRanking::Sensitivity`], stem groups are
    /// coarsened to at most this many events for the ranking pass only.
    pub ranking_events: usize,
    /// Filter out stems whose events can never affect the supergate
    /// output's arrival window (§3.3, "filtering out unnecessary stems").
    pub filter_stems: bool,
    /// Caps the number of events enumerated per conditioned stem by
    /// quantile coarsening (`None` = enumerate every event, as the paper
    /// describes). Bounds the `O(N_e^N_s)` enumeration at a tiny accuracy
    /// cost; coarsening preserves each bucket's mass and mean.
    pub max_conditioning_events: Option<usize>,
    /// Event-count resolution of the *intermediate* groups recomputed
    /// during conditioned propagation (`None` = full resolution). The
    /// final accumulated output still carries up to
    /// `max_conditioning_events × conditioning_resolution` events.
    pub conditioning_resolution: Option<usize>,
    /// Evaluate stem-dense supergates with seeded Monte Carlo sampling of
    /// the probabilistic events instead (the paper's §4 hybrid).
    pub hybrid_mc: Option<HybridMcConfig>,
    /// Latest- or earliest-arrival analysis.
    pub mode: CombineMode,
    /// Worker threads for the wave-parallel scheduler; resolved by
    /// [`pep_sta::threads::resolve_threads`] (0 = auto: `PEP_THREADS`,
    /// then all available parallelism). The analysis result is
    /// bit-identical for every thread count — this knob only trades
    /// wall-clock time.
    pub threads: usize,
    /// Resource budget with graceful degradation (`None` = unlimited;
    /// the budget machinery is then fully inert). See [`Budget`].
    pub budget: Option<Budget>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            samples: 20,
            step_override: None,
            min_event_prob: 1e-5,
            supergate_depth: Some(5),
            max_effective_stems: Some(1),
            stem_ranking: StemRanking::Window,
            ranking_events: 8,
            filter_stems: true,
            max_conditioning_events: Some(32),
            conditioning_resolution: None,
            hybrid_mc: None,
            mode: CombineMode::Latest,
            threads: 0,
            budget: None,
        }
    }
}

impl AnalysisConfig {
    /// The exact algorithm (§3.2): no event dropping, no depth limit,
    /// condition on every stem. Exponential — small circuits only.
    pub fn exact() -> Self {
        AnalysisConfig {
            min_event_prob: 0.0,
            supergate_depth: None,
            max_effective_stems: None,
            filter_stems: false,
            max_conditioning_events: None,
            conditioning_resolution: None,
            ..AnalysisConfig::default()
        }
    }

    /// Like [`exact`](AnalysisConfig::exact) but with an explicit
    /// sampling step, for tests that need exactly reproducible grids.
    pub fn exact_with_step(step: TimeStep) -> Self {
        AnalysisConfig {
            step_override: Some(step),
            ..AnalysisConfig::exact()
        }
    }

    /// Two-stem estimation (the paper's higher-accuracy variant).
    pub fn two_stem() -> Self {
        AnalysisConfig {
            max_effective_stems: Some(2),
            ..AnalysisConfig::default()
        }
    }

    /// Returns the configuration with out-of-domain knob values clamped
    /// into their valid range. Every analysis entry point applies this,
    /// so e.g. `conditioning_resolution: Some(0)` — a resolution of
    /// *zero events*, which has no meaning — behaves like the coarsest
    /// valid setting instead of panicking deep inside the conditioning
    /// recursion.
    ///
    /// Clamps applied:
    ///
    /// * `samples` — at least 1 (a sampling step needs one sample).
    /// * `ranking_events` — at least 1.
    /// * `max_conditioning_events: Some(0)` → `Some(1)`.
    /// * `conditioning_resolution: Some(0)` → `Some(1)`.
    pub fn validated(&self) -> Self {
        AnalysisConfig {
            samples: self.samples.max(1),
            ranking_events: self.ranking_events.max(1),
            max_conditioning_events: self.max_conditioning_events.map(|k| k.max(1)),
            conditioning_resolution: self.conditioning_resolution.map(|r| r.max(1)),
            ..self.clone()
        }
    }

    /// The concrete worker count the scheduler will use: [`threads`]
    /// resolved through [`pep_sta::threads::resolve_threads`].
    ///
    /// [`threads`]: AnalysisConfig::threads
    pub fn effective_threads(&self) -> usize {
        pep_sta::threads::resolve_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let d = AnalysisConfig::default();
        assert_eq!(d.samples, 20);
        assert_eq!(d.min_event_prob, 1e-5);
        assert_eq!(d.supergate_depth, Some(5));
        assert_eq!(d.max_effective_stems, Some(1));
        assert_eq!(d.mode, CombineMode::Latest);

        let e = AnalysisConfig::exact();
        assert_eq!(e.min_event_prob, 0.0);
        assert!(!e.filter_stems);

        let t = AnalysisConfig::two_stem();
        assert_eq!(t.max_effective_stems, Some(2));
    }

    #[test]
    fn validated_clamps_zero_knobs() {
        let raw = AnalysisConfig {
            samples: 0,
            ranking_events: 0,
            max_conditioning_events: Some(0),
            conditioning_resolution: Some(0),
            ..AnalysisConfig::default()
        };
        let v = raw.validated();
        assert_eq!(v.samples, 1);
        assert_eq!(v.ranking_events, 1);
        assert_eq!(v.max_conditioning_events, Some(1));
        assert_eq!(v.conditioning_resolution, Some(1));
        // In-range values pass through untouched.
        let d = AnalysisConfig::default();
        assert_eq!(d.validated(), d);
        let exact = AnalysisConfig::exact();
        assert_eq!(exact.validated(), exact);
    }

    #[test]
    fn effective_threads_positive() {
        assert_eq!(
            AnalysisConfig {
                threads: 3,
                ..AnalysisConfig::default()
            }
            .effective_threads(),
            3
        );
        assert!(AnalysisConfig::default().effective_threads() >= 1);
    }
}
