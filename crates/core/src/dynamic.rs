//! Dynamic (two-vector) probabilistic event propagation.
//!
//! The paper's algorithm "can be applied for vectorless static analysis
//! as well as for dynamic simulation with given input vectors" (§1). This
//! module is the dynamic mode: given a vector pair `v1 → v2`, every
//! switching node receives a full transition-time *distribution*, with
//! min/max selection per gate following the controlling-value rules of
//! §2.3 (a falling AND output is decided by the earliest falling input —
//! Fig. 5) and reconvergent fanout handled by the same supergate
//! sampling-evaluation as the static mode.

use crate::analyzer::{run, AnalysisStats};
use crate::arcs::ArcPmfs;
use crate::node_eval::DynamicEval;
use crate::AnalysisConfig;
use pep_celllib::Timing;
use pep_dist::{DiscreteDist, TimeStep};
use pep_netlist::cone::SupportSets;
use pep_netlist::{Netlist, NodeId};
use pep_obs::{Session, Warning};
use pep_sta::transition::{simulate_transition, TransitionSim};
use pep_sta::{CancelToken, PepError};

/// Result of a dynamic probabilistic analysis.
#[derive(Debug, Clone)]
pub struct DynamicAnalysis {
    step: TimeStep,
    groups: Vec<DiscreteDist>,
    sim: TransitionSim,
    stats: AnalysisStats,
    warnings: Vec<Warning>,
}

impl DynamicAnalysis {
    /// The sampling step all groups live on.
    pub fn step(&self) -> TimeStep {
        self.step
    }

    /// Whether the node switches between the two vectors.
    pub fn transitions(&self, node: NodeId) -> bool {
        self.sim.transitions(node)
    }

    /// Whether the node's transition (if any) is rising.
    pub fn is_rising(&self, node: NodeId) -> bool {
        self.sim.is_rising(node)
    }

    /// The transition-time event group at a node (empty when the node
    /// does not switch).
    pub fn group(&self, node: NodeId) -> &DiscreteDist {
        &self.groups[node.index()]
    }

    /// Mean transition time in physical units, if the node switches.
    pub fn mean_time(&self, node: NodeId) -> Option<f64> {
        let g = &self.groups[node.index()];
        if g.is_empty() {
            None
        } else {
            Some(g.mean_time(self.step))
        }
    }

    /// Transition-time standard deviation, if the node switches.
    pub fn std_time(&self, node: NodeId) -> Option<f64> {
        let g = &self.groups[node.index()];
        if g.is_empty() {
            None
        } else {
            Some(g.std_time(self.step))
        }
    }

    /// The zero-variance transition pattern (which nodes switch, and
    /// which way).
    pub fn pattern(&self) -> &TransitionSim {
        &self.sim
    }

    /// Run counters.
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Structured warnings recorded during the run (budget
    /// degradations, degenerate-group recoveries), in deterministic
    /// wave order.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }
}

/// Analyzes the transition caused by applying `v1`, letting the circuit
/// settle, then applying `v2`.
///
/// # Panics
///
/// Panics if the vectors' lengths differ from the primary input count.
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, Timing};
/// use pep_core::{dynamic, AnalysisConfig};
/// use pep_netlist::samples;
///
/// let nl = samples::mux2();
/// let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
/// // Inputs ordered a, b, s: flip the select with a=1, b=0.
/// let d = dynamic::analyze_transition(
///     &nl,
///     &timing,
///     &[true, false, false],
///     &[true, false, true],
///     &AnalysisConfig::default(),
/// );
/// let y = nl.node_id("y").expect("present");
/// assert!(d.transitions(y));
/// assert!(d.is_rising(y));
/// assert!(d.mean_time(y).expect("switches") > 0.0);
/// ```
pub fn analyze_transition(
    netlist: &Netlist,
    timing: &Timing,
    v1: &[bool],
    v2: &[bool],
    config: &AnalysisConfig,
) -> DynamicAnalysis {
    analyze_transition_observed(netlist, timing, v1, v2, config, &Session::disabled())
}

/// [`analyze_transition`], returning a typed [`PepError`] instead of
/// panicking on engine failures (worker panics are caught; `fail_fast`
/// budgets surface as [`PepError::Budget`]).
///
/// # Panics
///
/// Panics if the vectors' lengths differ from the primary input count
/// (a caller contract, not a runtime failure).
pub fn try_analyze_transition(
    netlist: &Netlist,
    timing: &Timing,
    v1: &[bool],
    v2: &[bool],
    config: &AnalysisConfig,
) -> Result<DynamicAnalysis, PepError> {
    try_analyze_transition_observed(netlist, timing, v1, v2, config, &Session::disabled())
}

/// [`analyze_transition`], recording phases and metrics into `obs`.
///
/// # Panics
///
/// Panics if the vectors' lengths differ from the primary input count.
pub fn analyze_transition_observed(
    netlist: &Netlist,
    timing: &Timing,
    v1: &[bool],
    v2: &[bool],
    config: &AnalysisConfig,
    obs: &Session,
) -> DynamicAnalysis {
    // invariant: without a fail-fast budget or injected fault the
    // engine degrades instead of erroring; any Err here is a real bug.
    try_analyze_transition_observed(netlist, timing, v1, v2, config, obs)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_analyze_transition`], recording phases and metrics into `obs`.
///
/// # Panics
///
/// Panics if the vectors' lengths differ from the primary input count.
pub fn try_analyze_transition_observed(
    netlist: &Netlist,
    timing: &Timing,
    v1: &[bool],
    v2: &[bool],
    config: &AnalysisConfig,
    obs: &Session,
) -> Result<DynamicAnalysis, PepError> {
    try_analyze_transition_cancellable(netlist, timing, v1, v2, config, obs, &CancelToken::new())
}

/// [`try_analyze_transition_observed`] honoring a cooperative
/// [`CancelToken`] (see
/// [`try_analyze_cancellable`](crate::try_analyze_cancellable) for the
/// degrade / abort semantics).
///
/// # Panics
///
/// Panics if the vectors' lengths differ from the primary input count.
#[allow(clippy::too_many_arguments)]
pub fn try_analyze_transition_cancellable(
    netlist: &Netlist,
    timing: &Timing,
    v1: &[bool],
    v2: &[bool],
    config: &AnalysisConfig,
    obs: &Session,
    cancel: &CancelToken,
) -> Result<DynamicAnalysis, PepError> {
    let config = &config.validated();
    let step = config
        .step_override
        .unwrap_or_else(|| timing.step_for_samples(config.samples));
    obs.gauge("pep.time_step").set(step.size());
    let arcs = {
        let _phase = obs.phase("arc-pmf-build");
        ArcPmfs::discretize_all(netlist, timing, step)
    };
    let supports = {
        let _phase = obs.phase("levelize");
        SupportSets::compute(netlist)
    };
    // The transition pattern (who switches, which way) is delay-free;
    // nominal delays are only used to satisfy the simulator's interface.
    let sim = {
        let _phase = obs.phase("transition-sim");
        simulate_transition(netlist, v1, v2, |g, p| timing.arc_mean(g, p))
    };
    let eval = DynamicEval {
        netlist,
        arcs: &arcs,
        sim: &sim,
    };
    let (groups, stats, warnings) = run(
        netlist,
        &arcs,
        &supports,
        &eval,
        config,
        |pi| {
            if sim.transitions(pi) {
                DiscreteDist::point(0)
            } else {
                DiscreteDist::empty()
            }
        },
        |node| sim.transitions(node),
        obs,
        cancel,
    )?;
    Ok(DynamicAnalysis {
        step,
        groups,
        sim,
        stats,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_celllib::DelayModel;
    use pep_dist::stats::Running;
    use pep_netlist::{samples, GateKind, NetlistBuilder};
    use pep_sta::monte_carlo::McConfig;
    use pep_sta::transition::monte_carlo_transition;
    use rand::SeedableRng;

    #[test]
    fn non_switching_nodes_have_empty_groups() {
        let nl = samples::mux2();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let d = analyze_transition(
            &nl,
            &t,
            &[true, false, false],
            &[true, false, true],
            &AnalysisConfig::default(),
        );
        let b = nl.node_id("b").expect("input b");
        assert!(!d.transitions(b));
        assert!(d.group(b).is_empty());
        assert_eq!(d.mean_time(b), None);
    }

    #[test]
    fn matches_dynamic_monte_carlo() {
        let nl = samples::mux2();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(6));
        let v1 = [true, false, false];
        let v2 = [true, false, true];
        let pep = analyze_transition(&nl, &t, &v1, &v2, &AnalysisConfig::default());
        let mc = monte_carlo_transition(
            &nl,
            &t,
            &v1,
            &v2,
            &McConfig {
                runs: 4_000,
                ..McConfig::default()
            },
        );
        let y = nl.node_id("y").expect("present");
        let pm = pep.mean_time(y).expect("switches");
        let mm = mc.mean(y).expect("switches");
        assert!(
            (pm - mm).abs() / mm < 0.05,
            "dynamic PEP mean {pm} vs MC {mm}"
        );
        let ps = pep.std_time(y).expect("switches");
        let ms = mc.std(y).expect("switches");
        assert!((ps - ms).abs() / ms < 0.25, "dynamic PEP σ {ps} vs MC {ms}");
    }

    #[test]
    fn falling_and_earliest_semantics_statistical() {
        // Statistical version of the paper's Fig. 5: both AND inputs
        // fall through different-depth paths; the output's mean must sit
        // below the slower path's mean (min-combining pulls it early).
        let mut b = NetlistBuilder::new("fall");
        b.input("a").unwrap();
        b.input("c").unwrap();
        b.gate("slow1", GateKind::Buf, &["c"]).unwrap();
        b.gate("slow2", GateKind::Buf, &["slow1"]).unwrap();
        b.gate("y", GateKind::And, &["a", "slow2"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(2));
        let d = analyze_transition(
            &nl,
            &t,
            &[true, true],
            &[false, false],
            &AnalysisConfig::default(),
        );
        let y = nl.node_id("y").unwrap();
        let slow2 = nl.node_id("slow2").unwrap();
        let y_mean = d.mean_time(y).expect("switches");
        let slow_in = d.mean_time(slow2).expect("switches");
        // min(a-path, slow-path) + y's delay; a-path is much faster, so y's
        // mean tracks a's arrival, well before slow2 + delay.
        assert!(y_mean < slow_in + 2.0 * 4.0, "earliest input dominates");
        assert!(!d.is_rising(y));
    }

    #[test]
    fn deterministic_repeatability() {
        let nl = samples::mux2();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(3));
        let v1 = [false, true, false];
        let v2 = [false, true, true];
        let a = analyze_transition(&nl, &t, &v1, &v2, &AnalysisConfig::default());
        let b = analyze_transition(&nl, &t, &v1, &v2, &AnalysisConfig::default());
        for id in nl.node_ids() {
            assert_eq!(a.group(id), b.group(id));
        }
    }

    #[test]
    fn group_mass_is_full_when_not_dropping() {
        let nl = samples::mux2();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(3));
        let d = analyze_transition(
            &nl,
            &t,
            &[true, false, false],
            &[true, false, true],
            &AnalysisConfig {
                min_event_prob: 0.0,
                ..AnalysisConfig::default()
            },
        );
        let y = nl.node_id("y").unwrap();
        assert!((d.group(y).total_mass() - 1.0).abs() < 1e-9);
        // Helper: a Running over samples drawn from the group should give
        // ~ the analytical mean (sanity-check the group is well-formed).
        let step = d.step();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut r = Running::new();
        for _ in 0..2_000 {
            let s = d.group(y).sample(&mut rng).expect("non-empty");
            r.push(step.time_of(s));
        }
        let analytical = d.mean_time(y).expect("switches");
        assert!((r.mean() - analytical).abs() / analytical < 0.05);
    }
}
