//! Per-node group evaluation strategies shared by the levelized analyzer
//! and the supergate sampling-evaluation.
//!
//! A [`NodeEval`] computes a gate's output event group from its fanin
//! groups. The static (vectorless) evaluator combines all fanins with the
//! configured min/max; the dynamic evaluator selects min or max per gate
//! from the transition pattern, as the paper's Fig. 5 example prescribes.

use crate::arcs::ArcPmfs;
use crate::cell_eval;
use crate::CombineMode;
use pep_dist::{DiscreteDist, DistScratch};
use pep_netlist::{Netlist, NodeId};
use pep_sta::transition::TransitionSim;

/// Fanin counts at or below this build the reference array on the stack;
/// wider gates (rare) fall back to a heap `Vec`.
pub(crate) const MAX_STACK_FANINS: usize = 12;

/// Runs `f` on the sub-slice of `groups` whose indices pass `keep`,
/// staging the references in a fixed stack array — no heap allocation
/// for gates up to [`MAX_STACK_FANINS`] inputs.
pub(crate) fn with_filtered_refs<'a, R>(
    groups: &[&'a DiscreteDist],
    mut keep: impl FnMut(usize) -> bool,
    f: impl FnOnce(&[&'a DiscreteDist]) -> R,
) -> R {
    if groups.len() <= MAX_STACK_FANINS {
        let mut arr: [&'a DiscreteDist; MAX_STACK_FANINS] =
            [DiscreteDist::empty_ref(); MAX_STACK_FANINS];
        let mut n = 0;
        for (i, g) in groups.iter().enumerate() {
            if keep(i) {
                arr[n] = g;
                n += 1;
            }
        }
        f(&arr[..n])
    } else {
        let v: Vec<&'a DiscreteDist> = groups
            .iter()
            .enumerate()
            .filter(|&(i, _)| keep(i))
            .map(|(_, g)| *g)
            .collect();
        f(&v)
    }
}

/// Runs `f` on `n` references produced by `get`, staged in a fixed stack
/// array (heap fallback past [`MAX_STACK_FANINS`]).
pub(crate) fn with_refs<'a, R>(
    n: usize,
    mut get: impl FnMut(usize) -> &'a DiscreteDist,
    f: impl FnOnce(&[&'a DiscreteDist]) -> R,
) -> R {
    if n <= MAX_STACK_FANINS {
        let mut arr: [&'a DiscreteDist; MAX_STACK_FANINS] =
            [DiscreteDist::empty_ref(); MAX_STACK_FANINS];
        for (i, slot) in arr.iter_mut().take(n).enumerate() {
            *slot = get(i);
        }
        f(&arr[..n])
    } else {
        let v: Vec<&'a DiscreteDist> = (0..n).map(get).collect();
        f(&v)
    }
}

/// Computes one gate's output group from its fanin groups.
///
/// `Sync` is a supertrait because evaluators are shared by reference
/// across the wave-parallel scheduler's worker threads; both
/// implementations only hold shared references to immutable analysis
/// state, so this costs nothing.
pub(crate) trait NodeEval: Sync {
    /// Evaluates `node` into a caller-provided buffer; `fanin_groups[pin]`
    /// is the group at the pin's driver. Temporaries come from `scratch`,
    /// so steady-state evaluation performs no heap allocations.
    fn eval_node_into(
        &self,
        node: NodeId,
        fanin_groups: &[&DiscreteDist],
        out: &mut DiscreteDist,
        scratch: &mut DistScratch,
    );

    /// Allocating convenience wrapper over
    /// [`eval_node_into`](NodeEval::eval_node_into) (bit-identical).
    fn eval_node(&self, node: NodeId, fanin_groups: &[&DiscreteDist]) -> DiscreteDist {
        let mut out = DiscreteDist::empty();
        let mut scratch = DistScratch::new();
        self.eval_node_into(node, fanin_groups, &mut out, &mut scratch);
        out
    }

    /// Sampled (single-trajectory) counterpart of
    /// [`eval_node`](NodeEval::eval_node) for the hybrid
    /// Monte-Carlo-inside-a-supergate path: given concrete fanin arrival
    /// ticks (`None` = the fanin carries no event), draw the node's output
    /// tick. Delay randomness is sampled from the same discretized
    /// distributions event propagation uses.
    fn sample_node(
        &self,
        node: NodeId,
        fanin_ticks: &[Option<i64>],
        rng: &mut rand::rngs::StdRng,
    ) -> Option<i64>;
}

/// Vectorless static evaluation: all fanins compete under one combine
/// mode; the cell delay (one random variable per cell, shared by its
/// pins) is convolved in *after* combining, matching the Monte Carlo
/// baseline's sampling semantics.
pub(crate) struct StaticEval<'a> {
    pub arcs: &'a ArcPmfs,
    pub mode: CombineMode,
}

impl NodeEval for StaticEval<'_> {
    fn eval_node_into(
        &self,
        node: NodeId,
        fanin_groups: &[&DiscreteDist],
        out: &mut DiscreteDist,
        scratch: &mut DistScratch,
    ) {
        if self.arcs.has_wires() {
            // Wire-annotated designs convolve per pin first; this path
            // stages the wired groups in a heap Vec (wire delays are rare
            // and absent from the ISCAS profiles the hot loop runs on).
            let wired: Vec<DiscreteDist> = fanin_groups
                .iter()
                .enumerate()
                .map(|(pin, g)| match self.arcs.wire(node, pin) {
                    Some(w) => g.convolve(w),
                    None => (*g).clone(),
                })
                .collect();
            with_refs(
                wired.len(),
                |i| &wired[i],
                |refs| {
                    cell_eval::combine_into(refs, self.mode, out, scratch);
                },
            );
        } else {
            cell_eval::combine_into(fanin_groups, self.mode, out, scratch);
        }
        let tok = scratch.trace.begin_kernel();
        out.convolve_in_place(self.arcs.cell(node), scratch);
        scratch
            .trace
            .end_kernel(tok, pep_obs::KernelKind::Convolve, out.support_len());
    }

    fn sample_node(
        &self,
        node: NodeId,
        fanin_ticks: &[Option<i64>],
        rng: &mut rand::rngs::StdRng,
    ) -> Option<i64> {
        let mut combined: Option<i64> = None;
        for (pin, t) in fanin_ticks.iter().enumerate() {
            let Some(mut t) = *t else { continue };
            if let Some(w) = self.arcs.wire(node, pin) {
                t += w.sample(rng).unwrap_or(0);
            }
            combined = Some(match (combined, self.mode) {
                (None, _) => t,
                (Some(c), CombineMode::Latest) => c.max(t),
                (Some(c), CombineMode::Earliest) => c.min(t),
            });
        }
        let cell = self.arcs.cell(node).sample(rng).unwrap_or(0);
        combined.map(|c| c + cell)
    }
}

/// Transition-aware evaluation for a two-vector dynamic analysis.
///
/// Whether a gate output's transition follows the earliest or the latest
/// input event is decided from the gate's controlling value and the
/// output's final state (paper §2.3 / Fig. 5): switching *into* the
/// controlled state follows the earliest newly-controlling input;
/// switching *out* follows the latest leaving input; parity gates follow
/// the last switching input.
pub(crate) struct DynamicEval<'a> {
    pub netlist: &'a Netlist,
    pub arcs: &'a ArcPmfs,
    pub sim: &'a TransitionSim,
}

impl NodeEval for DynamicEval<'_> {
    fn eval_node_into(
        &self,
        node: NodeId,
        fanin_groups: &[&DiscreteDist],
        out: &mut DiscreteDist,
        scratch: &mut DistScratch,
    ) {
        if !self.sim.transitions(node) {
            out.clear();
            return;
        }
        let fanins = self.netlist.fanins(node);
        let kind = self.netlist.kind(node);
        // Wire delays apply per pin before the selection; without wires
        // the fanin groups are used directly (the old path cloned every
        // fanin group even when no wire delay existed).
        let wired: Vec<DiscreteDist> = if self.arcs.has_wires() {
            fanin_groups
                .iter()
                .enumerate()
                .map(|(pin, g)| match self.arcs.wire(node, pin) {
                    Some(w) if !g.is_empty() => g.convolve(w),
                    _ => (*g).clone(),
                })
                .collect()
        } else {
            Vec::new()
        };
        let wired_refs: Vec<&DiscreteDist>;
        let groups: &[&DiscreteDist] = if wired.is_empty() {
            fanin_groups
        } else {
            wired_refs = wired.iter().collect();
            &wired_refs
        };
        match kind.controlling_value() {
            Some(c) => {
                let output_controlled = fanins
                    .iter()
                    .any(|&f| self.sim.final_values[f.index()] == c);
                if output_controlled {
                    // Earliest input to reach the controlling value wins.
                    with_filtered_refs(
                        groups,
                        |pin| self.sim.final_values[fanins[pin].index()] == c,
                        |candidates| {
                            cell_eval::combine_into(
                                candidates,
                                CombineMode::Earliest,
                                out,
                                scratch,
                            );
                        },
                    );
                } else {
                    // Output enables when the last input leaves the
                    // controlling value.
                    cell_eval::combine_into(groups, CombineMode::Latest, out, scratch);
                }
            }
            // Parity and single-input gates settle with the last
            // switching input.
            None => cell_eval::combine_into(groups, CombineMode::Latest, out, scratch),
        }
        let tok = scratch.trace.begin_kernel();
        out.convolve_in_place(self.arcs.cell(node), scratch);
        scratch
            .trace
            .end_kernel(tok, pep_obs::KernelKind::Convolve, out.support_len());
    }

    fn sample_node(
        &self,
        node: NodeId,
        fanin_ticks: &[Option<i64>],
        rng: &mut rand::rngs::StdRng,
    ) -> Option<i64> {
        if !self.sim.transitions(node) {
            return None;
        }
        let fanins = self.netlist.fanins(node);
        let kind = self.netlist.kind(node);
        let mut wired: Vec<Option<i64>> = Vec::with_capacity(fanin_ticks.len());
        for (pin, t) in fanin_ticks.iter().enumerate() {
            wired.push(t.map(|t| {
                t + self
                    .arcs
                    .wire(node, pin)
                    .and_then(|w| w.sample(rng))
                    .unwrap_or(0)
            }));
        }
        let combined = match kind.controlling_value() {
            Some(c) => {
                let output_controlled = fanins
                    .iter()
                    .any(|&f| self.sim.final_values[f.index()] == c);
                if output_controlled {
                    fanins
                        .iter()
                        .enumerate()
                        .filter(|(_, &f)| self.sim.final_values[f.index()] == c)
                        .filter_map(|(pin, _)| wired[pin])
                        .min()
                } else {
                    wired.iter().flatten().copied().max()
                }
            }
            None => wired.iter().flatten().copied().max(),
        };
        let cell = self.arcs.cell(node).sample(rng).unwrap_or(0);
        combined.map(|c| c + cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_celllib::Timing;
    use pep_dist::TimeStep;
    use pep_netlist::{GateKind, NetlistBuilder};
    use pep_sta::transition::simulate_transition;

    fn and2() -> Netlist {
        let mut b = NetlistBuilder::new("and2");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn static_eval_combines_then_convolves() {
        let nl = and2();
        let t = Timing::uniform(&nl, 2.0);
        let arcs = ArcPmfs::discretize_all(&nl, &t, TimeStep::new(1.0).unwrap());
        let eval = StaticEval {
            arcs: &arcs,
            mode: CombineMode::Latest,
        };
        let y = nl.node_id("y").unwrap();
        let a = DiscreteDist::from_ratios([(0, 1), (4, 1)]);
        let b = DiscreteDist::point(2);
        let out = eval.eval_node(y, &[&a, &b]);
        // max{a, b} = {2:.5, 4:.5}, then +2 delay.
        assert!((out.prob_at(4) - 0.5).abs() < 1e-12);
        assert!((out.prob_at(6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dynamic_eval_falling_and_uses_earliest() {
        let nl = and2();
        let t = Timing::uniform(&nl, 1.0);
        let arcs = ArcPmfs::discretize_all(&nl, &t, TimeStep::new(1.0).unwrap());
        // Both inputs fall: output falls, earliest controlling input wins.
        let sim = simulate_transition(&nl, &[true, true], &[false, false], |_, _| 1.0);
        let eval = DynamicEval {
            netlist: &nl,
            arcs: &arcs,
            sim: &sim,
        };
        let y = nl.node_id("y").unwrap();
        let ga = DiscreteDist::from_ratios([(2, 1), (6, 1)]);
        let gb = DiscreteDist::point(4);
        let out = eval.eval_node(y, &[&ga, &gb]);
        // min{ga, gb} = {2:.5, 4:.5}; +1 delay.
        assert!((out.prob_at(3) - 0.5).abs() < 1e-12);
        assert!((out.prob_at(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dynamic_eval_rising_and_uses_latest() {
        let nl = and2();
        let t = Timing::uniform(&nl, 1.0);
        let arcs = ArcPmfs::discretize_all(&nl, &t, TimeStep::new(1.0).unwrap());
        let sim = simulate_transition(&nl, &[false, false], &[true, true], |_, _| 1.0);
        let eval = DynamicEval {
            netlist: &nl,
            arcs: &arcs,
            sim: &sim,
        };
        let y = nl.node_id("y").unwrap();
        let ga = DiscreteDist::from_ratios([(2, 1), (6, 1)]);
        let gb = DiscreteDist::point(4);
        let out = eval.eval_node(y, &[&ga, &gb]);
        // max{ga, gb} = {4:.5, 6:.5}; +1 delay.
        assert!((out.prob_at(5) - 0.5).abs() < 1e-12);
        assert!((out.prob_at(7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dynamic_eval_no_transition_yields_empty() {
        let nl = and2();
        let t = Timing::uniform(&nl, 1.0);
        let arcs = ArcPmfs::discretize_all(&nl, &t, TimeStep::new(1.0).unwrap());
        // b rises but a stays 0: the AND output never moves.
        let sim = simulate_transition(&nl, &[false, false], &[false, true], |_, _| 1.0);
        let eval = DynamicEval {
            netlist: &nl,
            arcs: &arcs,
            sim: &sim,
        };
        let y = nl.node_id("y").unwrap();
        let ga = DiscreteDist::empty();
        let gb = DiscreteDist::point(4);
        assert!(eval.eval_node(y, &[&ga, &gb]).is_empty());
    }
}
