use crate::arcs::ArcPmfs;
use crate::node_eval::{NodeEval, StaticEval};
use crate::region::RegionEval;
use crate::AnalysisConfig;
use pep_celllib::Timing;
use pep_dist::{DiscreteDist, TimeStep};
use pep_netlist::cone::SupportSets;
use pep_netlist::supergate::SupergateExtractor;
use pep_netlist::{GateKind, Netlist, NodeId};
use serde::{Deserialize, Serialize};

/// Counters describing how an analysis ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Reconvergent gates handled through supergate evaluation.
    pub supergates: usize,
    /// Total stems conditioned on by sampling-evaluation.
    pub stems_conditioned: usize,
    /// Stems removed by the filtering/effective-stem heuristics.
    pub stems_filtered: usize,
    /// Supergates evaluated by the hybrid Monte Carlo path.
    pub hybrid_evaluations: usize,
    /// Probability mass dropped by the `P_m` filter, summed over all
    /// cell outputs (diagnostic for Fig. 7-style accuracy studies).
    pub dropped_mass: f64,
}

/// The result of a probabilistic-event-propagation analysis: one
/// arrival-time event group per node (the full distribution, not just
/// moments — the representational advantage the paper points out over
/// Monte Carlo in §4).
#[derive(Debug, Clone)]
pub struct PepAnalysis {
    step: TimeStep,
    groups: Vec<DiscreteDist>,
    stats: AnalysisStats,
}

impl PepAnalysis {
    /// The sampling step all groups are expressed on.
    pub fn step(&self) -> TimeStep {
        self.step
    }

    /// The arrival-time event group at a node.
    pub fn group(&self, node: NodeId) -> &DiscreteDist {
        &self.groups[node.index()]
    }

    /// Mean arrival time at a node, in physical time units.
    pub fn mean_time(&self, node: NodeId) -> f64 {
        self.groups[node.index()].mean_time(self.step)
    }

    /// Arrival-time standard deviation at a node, in physical time units.
    pub fn std_time(&self, node: NodeId) -> f64 {
        self.groups[node.index()].std_time(self.step)
    }

    /// The `q`-quantile of a node's arrival time, in physical time units.
    pub fn quantile_time(&self, node: NodeId, q: f64) -> Option<f64> {
        self.groups[node.index()]
            .quantile(q)
            .map(|t| self.step.time_of(t))
    }

    /// Run counters.
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// The circuit-delay distribution: the max-combine of all primary
    /// output groups.
    ///
    /// Output groups may share stems, so this combine treats them as
    /// independent — an approximation consistent with how the paper's
    /// applications (e.g. yield estimation) consume per-output
    /// distributions. For a pessimism-free answer on a specific output,
    /// use [`group`](PepAnalysis::group) directly.
    pub fn circuit_delay(&self, netlist: &Netlist) -> DiscreteDist {
        crate::cell_eval::combine_latest(
            netlist.primary_outputs().iter().map(|&po| self.group(po)),
        )
    }
}

/// Analyzes a circuit with every primary input arriving deterministically
/// at time zero (the usual vectorless setup).
///
/// See [`AnalysisConfig`] for the approximation knobs; the defaults are
/// the paper's tuned operating point.
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, Timing};
/// use pep_core::{analyze, AnalysisConfig};
/// use pep_netlist::samples;
///
/// let nl = samples::fig6();
/// let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
/// let a = analyze(&nl, &timing, &AnalysisConfig::default());
/// assert!(a.stats().supergates > 0, "fig6 has reconvergent gates");
/// ```
pub fn analyze(netlist: &Netlist, timing: &Timing, config: &AnalysisConfig) -> PepAnalysis {
    let zero = DiscreteDist::point(0);
    analyze_with_inputs(netlist, timing, config, |_| zero.clone())
}

/// Analyzes a circuit with caller-supplied arrival groups at the primary
/// inputs (e.g. clock-skewed or staggered inputs).
pub fn analyze_with_inputs<F>(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    pi_group: F,
) -> PepAnalysis
where
    F: Fn(NodeId) -> DiscreteDist,
{
    let step = config
        .step_override
        .unwrap_or_else(|| timing.step_for_samples(config.samples));
    let arcs = ArcPmfs::discretize_all(netlist, timing, step);
    let supports = SupportSets::compute(netlist);
    let eval = StaticEval {
        arcs: &arcs,
        mode: config.mode,
    };
    let (groups, stats) = run(netlist, &arcs, &supports, &eval, config, pi_group, |_| true);
    PepAnalysis {
        step,
        groups,
        stats,
    }
}

/// The shared levelized driver: plain cell evaluation on independent
/// fanins, supergate sampling-evaluation on reconvergent gates.
pub(crate) fn run<E, F, A>(
    netlist: &Netlist,
    arcs: &ArcPmfs,
    supports: &SupportSets,
    eval: &E,
    config: &AnalysisConfig,
    pi_group: F,
    is_active: A,
) -> (Vec<DiscreteDist>, AnalysisStats)
where
    E: NodeEval,
    F: Fn(NodeId) -> DiscreteDist,
    A: Fn(NodeId) -> bool,
{
    let mut groups: Vec<DiscreteDist> = vec![DiscreteDist::empty(); netlist.node_count()];
    let mut stats = AnalysisStats::default();
    let mut extractor = SupergateExtractor::new(netlist, supports, config.supergate_depth);
    for &node in netlist.topo_order() {
        if netlist.kind(node) == GateKind::Input {
            groups[node.index()] = pi_group(node);
            continue;
        }
        if !is_active(node) {
            continue;
        }
        let mut g = if supports.is_reconvergent(netlist, node) {
            let sg = extractor.extract(node);
            // Interior nodes already carry (supergate-corrected) global
            // groups; only the output itself is re-derived locally.
            let mut region = RegionEval::new(
                netlist,
                arcs,
                eval,
                &sg,
                |n| (n != node).then(|| &groups[n.index()]),
                config.min_event_prob,
            );
            region.set_resolution(config.conditioning_resolution);
            let (g, outcome) = region.evaluate(config);
            stats.supergates += 1;
            stats.stems_conditioned += outcome.stems_conditioned;
            stats.stems_filtered += outcome.stems_filtered;
            stats.hybrid_evaluations += outcome.used_hybrid as usize;
            g
        } else {
            let fanin_groups: Vec<&DiscreteDist> = netlist
                .fanins(node)
                .iter()
                .map(|&f| &groups[f.index()])
                .collect();
            eval.eval_node(node, &fanin_groups)
        };
        if config.min_event_prob > 0.0 {
            // Track the dropped mass for Fig. 7-style studies, then
            // renormalize so event groups keep their unit-mass invariant
            // (§2.1) instead of decaying multiplicatively with depth.
            stats.dropped_mass += g.truncate_below(config.min_event_prob);
            g.normalize();
        }
        groups[node.index()] = g;
    }
    (groups, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CombineMode;
    use pep_celllib::DelayModel;
    use pep_netlist::{generate, samples, GateKind};

    #[test]
    fn unit_delay_tree_is_levelized() {
        let nl = generate::comb_tree(GateKind::And, 8);
        let t = Timing::uniform(&nl, 1.0);
        let a = analyze(
            &nl,
            &t,
            &AnalysisConfig::exact_with_step(TimeStep::new(1.0).expect("valid")),
        );
        for id in nl.node_ids() {
            assert_eq!(a.group(id), &DiscreteDist::point(nl.level(id) as i64));
        }
        assert_eq!(a.stats().supergates, 0);
    }

    #[test]
    fn deterministic_repeatability() {
        // The paper's headline property: same inputs, same outputs.
        let nl = samples::fig6();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(9));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let b = analyze(&nl, &t, &AnalysisConfig::default());
        for id in nl.node_ids() {
            assert_eq!(a.group(id), b.group(id));
        }
    }

    #[test]
    fn reconvergent_gates_use_supergates() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        assert!(a.stats().supergates >= 2, "c17 reconverges at 22 and 23");
        assert!(a.stats().stems_conditioned > 0);
    }

    #[test]
    fn dropped_mass_accounted() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let none = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                min_event_prob: 0.0,
                ..AnalysisConfig::default()
            },
        );
        assert_eq!(none.stats().dropped_mass, 0.0);
        let strict = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                min_event_prob: 1e-2,
                ..AnalysisConfig::default()
            },
        );
        assert!(strict.stats().dropped_mass > 0.0);
        // Groups stay unit-mass: dropping renormalizes (DESIGN.md §4).
        let po = nl.primary_outputs()[0];
        assert!((strict.group(po).total_mass() - 1.0).abs() < 1e-9);
        assert!(strict.mean_time(po) > 0.0);
        // And the aggressive filter visibly coarsens the distribution.
        assert!(strict.group(po).support_len() < none.group(po).support_len());
    }

    #[test]
    fn earliest_mode_lower_than_latest() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let late = analyze(&nl, &t, &AnalysisConfig::default());
        let early = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                mode: CombineMode::Earliest,
                ..AnalysisConfig::default()
            },
        );
        for &po in nl.primary_outputs() {
            assert!(early.mean_time(po) <= late.mean_time(po) + 1e-9);
        }
    }

    #[test]
    fn custom_input_arrivals() {
        let nl = samples::c17();
        let t = Timing::uniform(&nl, 1.0);
        let cfg = AnalysisConfig::exact_with_step(TimeStep::new(1.0).expect("valid"));
        let base = analyze(&nl, &t, &cfg);
        // Delay every input by 5 ticks: all arrivals shift by 5.
        let shifted = analyze_with_inputs(&nl, &t, &cfg, |_| DiscreteDist::point(5));
        for &po in nl.primary_outputs() {
            assert_eq!(
                shifted.group(po),
                &base.group(po).shifted(5),
                "uniform input delay shifts outputs"
            );
        }
    }

    #[test]
    fn circuit_delay_covers_outputs() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let cd = a.circuit_delay(&nl);
        for &po in nl.primary_outputs() {
            assert!(
                cd.mean_ticks() + 1e-9 >= a.group(po).mean_ticks(),
                "circuit delay dominates every output"
            );
        }
    }

    #[test]
    fn quantiles_exposed() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let po = nl.primary_outputs()[0];
        let q50 = a.quantile_time(po, 0.5).expect("non-empty");
        let q99 = a.quantile_time(po, 0.99).expect("non-empty");
        assert!(q99 >= q50);
    }
}
