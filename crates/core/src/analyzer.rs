use crate::arcs::ArcPmfs;
use crate::budget::BudgetTracker;
use crate::faults;
use crate::node_eval::{with_refs, NodeEval, StaticEval};
use crate::region::{EvalScratch, RegionEval, RegionOutcome};
use crate::AnalysisConfig;
use pep_celllib::Timing;
use pep_dist::{DiscreteDist, TimeStep};
use pep_netlist::cone::SupportSets;
use pep_netlist::supergate::SupergateExtractor;
use pep_netlist::{GateKind, Netlist, NodeId};
use pep_obs::{Session, SpanArgs, TraceLevel, Warning};
use pep_sta::error::panic_detail;
use pep_sta::{AnalysisError, BudgetExceeded, CancelState, CancelToken, Cancelled, PepError};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Counters describing how an analysis ran.
///
/// These are a per-run view over the `pep.*` metrics in the
/// [`pep_obs::Session`] registry — the registry is the single source of
/// truth, and each analysis reports the registry *delta* it produced,
/// so a session shared across several analyses still yields exact
/// per-run stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Reconvergent gates handled through supergate evaluation
    /// (`pep.supergates`).
    pub supergates: usize,
    /// Total stems conditioned on by sampling-evaluation
    /// (`pep.stems_conditioned`).
    pub stems_conditioned: usize,
    /// Stems removed by the filtering/effective-stem heuristics
    /// (`pep.stems_filtered`).
    pub stems_filtered: usize,
    /// Supergates evaluated by the hybrid Monte Carlo path
    /// (`pep.hybrid_evaluations`).
    pub hybrid_evaluations: usize,
    /// Probability mass dropped by the `P_m` filter
    /// (`pep.dropped_mass`): the unitless sum, over every evaluated
    /// node, of the mass its *final* event group lost to
    /// `truncate_below(P_m)` before renormalization (diagnostic for
    /// Fig. 7-style accuracy studies). Transient truncations *inside*
    /// supergate conditioning are deliberately excluded — interior
    /// groups are recomputed per stem value and would double-count.
    pub dropped_mass: f64,
}

/// The result of a probabilistic-event-propagation analysis: one
/// arrival-time event group per node (the full distribution, not just
/// moments — the representational advantage the paper points out over
/// Monte Carlo in §4).
#[derive(Debug, Clone)]
pub struct PepAnalysis {
    step: TimeStep,
    groups: Vec<DiscreteDist>,
    stats: AnalysisStats,
    warnings: Vec<Warning>,
}

impl PepAnalysis {
    /// The sampling step all groups are expressed on.
    pub fn step(&self) -> TimeStep {
        self.step
    }

    /// The arrival-time event group at a node.
    pub fn group(&self, node: NodeId) -> &DiscreteDist {
        &self.groups[node.index()]
    }

    /// Mean arrival time at a node, in physical time units.
    pub fn mean_time(&self, node: NodeId) -> f64 {
        self.groups[node.index()].mean_time(self.step)
    }

    /// Arrival-time standard deviation at a node, in physical time units.
    pub fn std_time(&self, node: NodeId) -> f64 {
        self.groups[node.index()].std_time(self.step)
    }

    /// The `q`-quantile of a node's arrival time, in physical time units.
    pub fn quantile_time(&self, node: NodeId, q: f64) -> Option<f64> {
        self.groups[node.index()]
            .quantile(q)
            .map(|t| self.step.time_of(t))
    }

    /// Run counters.
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Structured warnings recorded during the run (budget
    /// degradations, degenerate-group recoveries), in the
    /// deterministic wave order they were committed.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// The circuit-delay distribution: the max-combine of all primary
    /// output groups.
    ///
    /// Output groups may share stems, so this combine treats them as
    /// independent — an approximation consistent with how the paper's
    /// applications (e.g. yield estimation) consume per-output
    /// distributions. For a pessimism-free answer on a specific output,
    /// use [`group`](PepAnalysis::group) directly.
    pub fn circuit_delay(&self, netlist: &Netlist) -> DiscreteDist {
        crate::cell_eval::combine_latest(netlist.primary_outputs().iter().map(|&po| self.group(po)))
    }
}

/// Analyzes a circuit with every primary input arriving deterministically
/// at time zero (the usual vectorless setup).
///
/// See [`AnalysisConfig`] for the approximation knobs; the defaults are
/// the paper's tuned operating point.
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, Timing};
/// use pep_core::{analyze, AnalysisConfig};
/// use pep_netlist::samples;
///
/// let nl = samples::fig6();
/// let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
/// let a = analyze(&nl, &timing, &AnalysisConfig::default());
/// assert!(a.stats().supergates > 0, "fig6 has reconvergent gates");
/// ```
pub fn analyze(netlist: &Netlist, timing: &Timing, config: &AnalysisConfig) -> PepAnalysis {
    // invariant: without a fail-fast budget or injected fault, the
    // engine degrades instead of erroring; any Err here is a real bug.
    try_analyze(netlist, timing, config).unwrap_or_else(|e| panic!("{e}"))
}

/// [`analyze`], returning a typed [`PepError`] instead of panicking
/// (worker panics are caught; `fail_fast` budgets surface as
/// [`PepError::Budget`]).
pub fn try_analyze(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
) -> Result<PepAnalysis, PepError> {
    try_analyze_observed(netlist, timing, config, &Session::disabled())
}

/// [`analyze`], recording phases and metrics into `obs`.
pub fn analyze_observed(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    obs: &Session,
) -> PepAnalysis {
    // invariant: see `analyze` — errors only arise from fail-fast
    // budgets, injected faults, or genuine engine bugs.
    try_analyze_observed(netlist, timing, config, obs).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_analyze`], recording phases and metrics into `obs`.
pub fn try_analyze_observed(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    obs: &Session,
) -> Result<PepAnalysis, PepError> {
    try_analyze_cancellable(netlist, timing, config, obs, &CancelToken::new())
}

/// [`try_analyze_observed`] honoring a cooperative [`CancelToken`],
/// polled at wave boundaries and inside the conditioning recursion.
///
/// A [degrade](CancelToken::cancel_degrade) cancellation finishes the
/// run fast: remaining supergates fall back to plain topological
/// propagation (each recorded as a `cancel.requested` warning) and the
/// partial-but-usable analysis is returned. An
/// [abort](CancelToken::cancel_abort) returns
/// [`PepError::Cancelled`] at the next wave boundary and discards
/// partial state.
pub fn try_analyze_cancellable(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    obs: &Session,
    cancel: &CancelToken,
) -> Result<PepAnalysis, PepError> {
    let zero = DiscreteDist::point(0);
    try_analyze_with_inputs_cancellable(netlist, timing, config, |_| zero.clone(), obs, cancel)
}

/// Analyzes a circuit with caller-supplied arrival groups at the primary
/// inputs (e.g. clock-skewed or staggered inputs).
pub fn analyze_with_inputs<F>(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    pi_group: F,
) -> PepAnalysis
where
    F: Fn(NodeId) -> DiscreteDist,
{
    // invariant: see `analyze`.
    try_analyze_with_inputs(netlist, timing, config, pi_group).unwrap_or_else(|e| panic!("{e}"))
}

/// [`analyze_with_inputs`], returning a typed [`PepError`] instead of
/// panicking.
pub fn try_analyze_with_inputs<F>(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    pi_group: F,
) -> Result<PepAnalysis, PepError>
where
    F: Fn(NodeId) -> DiscreteDist,
{
    try_analyze_with_inputs_observed(netlist, timing, config, pi_group, &Session::disabled())
}

/// [`analyze_with_inputs`], recording phases and metrics into `obs`.
pub fn analyze_with_inputs_observed<F>(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    pi_group: F,
    obs: &Session,
) -> PepAnalysis
where
    F: Fn(NodeId) -> DiscreteDist,
{
    // invariant: see `analyze`.
    try_analyze_with_inputs_observed(netlist, timing, config, pi_group, obs)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_analyze`] with caller-supplied primary-input groups, recording
/// phases and metrics into `obs`.
pub fn try_analyze_with_inputs_observed<F>(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    pi_group: F,
    obs: &Session,
) -> Result<PepAnalysis, PepError>
where
    F: Fn(NodeId) -> DiscreteDist,
{
    try_analyze_with_inputs_cancellable(netlist, timing, config, pi_group, obs, &CancelToken::new())
}

/// [`try_analyze_with_inputs_observed`] honoring a cooperative
/// [`CancelToken`] (see [`try_analyze_cancellable`] for the degrade /
/// abort semantics).
pub fn try_analyze_with_inputs_cancellable<F>(
    netlist: &Netlist,
    timing: &Timing,
    config: &AnalysisConfig,
    pi_group: F,
    obs: &Session,
    cancel: &CancelToken,
) -> Result<PepAnalysis, PepError>
where
    F: Fn(NodeId) -> DiscreteDist,
{
    let config = &config.validated();
    let step = config
        .step_override
        .unwrap_or_else(|| timing.step_for_samples(config.samples));
    obs.gauge("pep.time_step").set(step.size());
    let arcs = {
        let _phase = obs.phase("arc-pmf-build");
        ArcPmfs::discretize_all(netlist, timing, step)
    };
    let supports = {
        let _phase = obs.phase("levelize");
        SupportSets::compute(netlist)
    };
    let eval = StaticEval {
        arcs: &arcs,
        mode: config.mode,
    };
    let (groups, stats, warnings) = run(
        netlist,
        &arcs,
        &supports,
        &eval,
        config,
        pi_group,
        |_| true,
        obs,
        cancel,
    )?;
    Ok(PepAnalysis {
        step,
        groups,
        stats,
        warnings,
    })
}

/// The per-run metric handles `run` drives, resolved once up front.
struct RunMetrics {
    nodes_evaluated: pep_obs::Counter,
    events_propagated: pep_obs::Counter,
    events_dropped: pep_obs::Counter,
    dropped_mass: pep_obs::FloatCounter,
    supergates: pep_obs::Counter,
    stems_conditioned: pep_obs::Counter,
    stems_filtered: pep_obs::Counter,
    hybrid_evaluations: pep_obs::Counter,
    group_size: pep_obs::Histogram,
    supergate_inputs: pep_obs::Histogram,
}

impl RunMetrics {
    fn resolve(obs: &Session) -> Self {
        RunMetrics {
            nodes_evaluated: obs.counter("pep.nodes_evaluated"),
            events_propagated: obs.counter("pep.events_propagated"),
            events_dropped: obs.counter("pep.events_dropped"),
            dropped_mass: obs.float_counter("pep.dropped_mass"),
            supergates: obs.counter("pep.supergates"),
            stems_conditioned: obs.counter("pep.stems_conditioned"),
            stems_filtered: obs.counter("pep.stems_filtered"),
            hybrid_evaluations: obs.counter("pep.hybrid_evaluations"),
            group_size: obs.histogram("pep.group_size"),
            supergate_inputs: obs.histogram("pep.supergate_inputs"),
        }
    }

    /// The counter values this run starts from; [`stats_since`]
    /// subtracts them so a session shared across analyses still yields
    /// exact per-run stats.
    fn baseline(&self) -> AnalysisStats {
        AnalysisStats {
            supergates: self.supergates.get() as usize,
            stems_conditioned: self.stems_conditioned.get() as usize,
            stems_filtered: self.stems_filtered.get() as usize,
            hybrid_evaluations: self.hybrid_evaluations.get() as usize,
            dropped_mass: self.dropped_mass.get(),
        }
    }

    /// The registry delta since `base`, as this run's [`AnalysisStats`].
    fn stats_since(&self, base: &AnalysisStats) -> AnalysisStats {
        AnalysisStats {
            supergates: self.supergates.get() as usize - base.supergates,
            stems_conditioned: self.stems_conditioned.get() as usize - base.stems_conditioned,
            stems_filtered: self.stems_filtered.get() as usize - base.stems_filtered,
            hybrid_evaluations: self.hybrid_evaluations.get() as usize - base.hybrid_evaluations,
            dropped_mass: self.dropped_mass.get() - base.dropped_mass,
        }
    }
}

/// One node's evaluation outcome: produced on whichever thread ran it,
/// committed (group write-back plus metric recording) on the
/// orchestration thread in wave order, so the metrics registry — float
/// accumulation order included — is identical for every thread count.
struct NodeResult {
    group: DiscreteDist,
    /// Mass removed by the `P_m` filter at this node's final group.
    dropped_mass: f64,
    /// Events removed by the `P_m` filter at this node's final group.
    events_dropped: u64,
    /// `(input count, outcome)` when the node was evaluated as a
    /// supergate output.
    supergate: Option<(usize, RegionOutcome)>,
    /// Whether a degenerate sampling-evaluation result was recovered by
    /// plain re-evaluation (surfaced as a warning at commit time).
    recovered: bool,
}

/// Evaluates one non-input node against already-resolved fanin groups.
///
/// `obs` carries the session only on the orchestration thread (the
/// per-node `supergate-extract`/`sampling-eval` phases live on a single
/// logical stack); worker threads pass `None` and record nothing.
#[allow(clippy::too_many_arguments)]
fn eval_one<E: NodeEval>(
    netlist: &Netlist,
    arcs: &ArcPmfs,
    supports: &SupportSets,
    eval: &E,
    config: &AnalysisConfig,
    tracker: &BudgetTracker,
    extractor: &mut SupergateExtractor,
    scratch: &mut EvalScratch,
    groups: &[DiscreteDist],
    node: NodeId,
    obs: Option<&Session>,
) -> Result<NodeResult, AnalysisError> {
    if faults::fires(faults::WAVE_WORKER_PANIC) {
        panic!("injected fault: wave worker panic");
    }
    let span = scratch.dist.trace.begin(TraceLevel::Nodes);
    let mut supergate = None;
    let mut g = if supports.is_reconvergent(netlist, node) {
        if faults::fires(faults::SUPERGATE_ALLOC) {
            panic!("injected fault: supergate allocation failure");
        }
        let sg = {
            let _phase = obs.map(|o| o.phase("supergate-extract"));
            extractor.extract(node)
        };
        let _phase = obs.map(|o| o.phase("sampling-eval"));
        // Interior nodes already carry (supergate-corrected) global
        // groups; only the output itself is re-derived locally.
        let mut region = RegionEval::new(
            netlist,
            arcs,
            eval,
            &sg,
            |n| (n != node).then(|| &groups[n.index()]),
            config.min_event_prob,
        );
        region.set_resolution(config.conditioning_resolution);
        let (g, outcome) = region.evaluate_budgeted(config, tracker, scratch);
        supergate = Some((sg.inputs.len(), outcome));
        g
    } else {
        let fanins = netlist.fanins(node);
        let mut g = DiscreteDist::empty();
        with_refs(
            fanins.len(),
            |pin| &groups[fanins[pin].index()],
            |refs| eval.eval_node_into(node, refs, &mut g, &mut scratch.dist),
        );
        g
    };
    if supergate.is_some() && faults::fires(faults::DEGENERATE_PDF) {
        g = DiscreteDist::empty();
    }
    // Degenerate-group sanitizer: a sampling-evaluation that collapsed
    // to an empty or non-finite group is recovered by plain independent
    // combining of the fanins (the topological answer) — and reported.
    let mut recovered = false;
    if supergate.is_some() && (g.is_empty() || !g.total_mass().is_finite()) {
        let fanins = netlist.fanins(node);
        let mut plain = DiscreteDist::empty();
        with_refs(
            fanins.len(),
            |pin| &groups[fanins[pin].index()],
            |refs| eval.eval_node_into(node, refs, &mut plain, &mut scratch.dist),
        );
        if plain.is_empty() || !plain.total_mass().is_finite() {
            return Err(AnalysisError::DegenerateGroup {
                node: netlist.node_name(node).to_owned(),
            });
        }
        g = plain;
        recovered = true;
    }
    let mut dropped_mass = 0.0;
    let mut events_dropped = 0;
    if config.min_event_prob > 0.0 {
        // Track the dropped mass for Fig. 7-style studies, then
        // renormalize so event groups keep their unit-mass invariant
        // (§2.1) instead of decaying multiplicatively with depth.
        let events_before = g.support_len();
        dropped_mass = g.truncate_below(config.min_event_prob);
        events_dropped = (events_before - g.support_len()) as u64;
        g.normalize();
    }
    if span.is_live() {
        let mut args = SpanArgs::new()
            .with("node", node.index() as u64)
            .with("events", g.support_len() as u64);
        let (name, cat) = match &supergate {
            Some((_, outcome)) => {
                args = args
                    .with("stems", outcome.stems_conditioned as u64)
                    .with("combinations", outcome.combinations);
                ("supergate-eval", "supergate")
            }
            None => ("node-eval", "node"),
        };
        scratch.dist.trace.end(span, name, cat, args);
    }
    Ok(NodeResult {
        group: g,
        dropped_mass,
        events_dropped,
        supergate,
        recovered,
    })
}

/// Publishes one node's result: metrics first (in wave/node order — the
/// only order-sensitive accumulation is the `dropped_mass` float sum),
/// then warnings (same deterministic order), then the group itself.
/// With a fail-fast budget, the first degradation aborts the run
/// instead.
#[allow(clippy::too_many_arguments)]
fn commit(
    metrics: &RunMetrics,
    netlist: &Netlist,
    tracker: &BudgetTracker,
    obs: &Session,
    warnings: &mut Vec<Warning>,
    groups: &mut [DiscreteDist],
    node: NodeId,
    r: NodeResult,
) -> Result<(), PepError> {
    if let Some((inputs, outcome)) = &r.supergate {
        metrics.supergate_inputs.record(*inputs as f64);
        metrics.supergates.inc();
        metrics
            .stems_conditioned
            .add(outcome.stems_conditioned as u64);
        metrics.stems_filtered.add(outcome.stems_filtered as u64);
        metrics.hybrid_evaluations.add(outcome.used_hybrid as u64);
        for d in &outcome.degradations {
            // Cancellation fallbacks are exempt from fail-fast: the
            // caller asked the run to wrap up, so the partial result is
            // exactly what they want.
            if tracker.fail_fast() && !d.is_cancellation() {
                return Err(d.budget_error(tracker).into());
            }
            let w = d.warning(netlist.node_name(node));
            obs.warn(w.clone());
            warnings.push(w);
        }
    }
    if r.recovered {
        let w = Warning::new(
            "degenerate.group",
            format!("sg:{}", netlist.node_name(node)),
            "plain_reeval",
            "sampling-evaluation produced a degenerate (empty or non-finite) \
             group; re-evaluated with independent combining",
            "branch correlation at this node is ignored",
        );
        obs.warn(w.clone());
        warnings.push(w);
    }
    metrics.dropped_mass.add(r.dropped_mass);
    metrics.events_dropped.add(r.events_dropped);
    metrics.nodes_evaluated.inc();
    metrics.events_propagated.add(r.group.support_len() as u64);
    metrics.group_size.record(r.group.support_len() as f64);
    groups[node.index()] = r.group;
    Ok(())
}

/// The shared wave-parallel driver: plain cell evaluation on independent
/// fanins, supergate sampling-evaluation on reconvergent gates.
///
/// Nodes are scheduled in dependency-counted waves: a node joins the
/// wave right after its deepest fanin's, so when a wave runs every
/// fanin — and every interior node of any supergate rooted in the wave,
/// all of which are strict predecessors — is already resolved. Within a
/// wave the evaluations are independent and fan out across
/// `config.threads` scoped workers; results are committed back on the
/// orchestration thread in wave order, which makes the output groups
/// *and* the metrics registry bit-identical for every thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<E, F, A>(
    netlist: &Netlist,
    arcs: &ArcPmfs,
    supports: &SupportSets,
    eval: &E,
    config: &AnalysisConfig,
    pi_group: F,
    is_active: A,
    obs: &Session,
    cancel: &CancelToken,
) -> Result<(Vec<DiscreteDist>, AnalysisStats, Vec<Warning>), PepError>
where
    E: NodeEval,
    F: Fn(NodeId) -> DiscreteDist,
    A: Fn(NodeId) -> bool,
{
    let _propagate = obs.phase("propagate");
    let metrics = RunMetrics::resolve(obs);
    let base = metrics.baseline();
    let n = netlist.node_count();
    let threads = config.effective_threads();
    let tracker = BudgetTracker::with_cancel(config.budget.as_ref(), cancel.clone());
    let mut warnings: Vec<Warning> = Vec::new();
    // The memory ladder escalates `P_m` mid-run, so the working config
    // is mutable; with no budget it never changes.
    let mut cfg = config.clone();
    let mut mem_escalations = 0u32;
    /// Give up tightening `P_m` after this many ×10 escalations — the
    /// remaining mass is structural, not tail events.
    const MAX_MEM_ESCALATIONS: u32 = 3;
    obs.gauge("pep.threads").set(threads as f64);
    let waves_counter = obs.counter("pep.waves");
    let wave_width = obs.histogram("pep.wave_width");
    let wave_seconds_hist = obs.log_histogram("pep.wave.seconds");
    let wave_width_hist = obs.log_histogram("pep.wave.width");
    // Tracing: lane 0 is this orchestration thread (wave spans; phase
    // spans from the session land there too), lanes 1..N are workers,
    // wired through their scratch arenas below. With tracing off every
    // buffer is inert and a span site costs one byte compare.
    let trace = obs.trace();
    let mut orch = trace.buffer(0);

    // Wave construction: the dependency-count fixpoint over fanin edges
    // (wave index = 1 + deepest fanin's wave; primary inputs and other
    // fanin-free nodes form wave 0). Within a wave, topological order is
    // preserved so the sequential path visits nodes exactly as the
    // original levelized loop did.
    let mut waves: Vec<Vec<NodeId>> = Vec::new();
    {
        let mut depth = vec![0u32; n];
        for &node in netlist.topo_order() {
            let d = netlist
                .fanins(node)
                .iter()
                .map(|f| depth[f.index()] + 1)
                .max()
                .unwrap_or(0);
            depth[node.index()] = d;
            let d = d as usize;
            if waves.len() <= d {
                waves.resize_with(d + 1, Vec::new);
            }
            waves[d].push(node);
        }
    }

    let mut groups: Vec<DiscreteDist> = vec![DiscreteDist::empty(); n];
    // One extractor per worker: extraction needs scratch buffers
    // (`&mut self`) but leaves no state behind, so pooled extractors
    // produce the same supergates as a single shared one.
    let mut extractors: Vec<SupergateExtractor> = (0..threads)
        .map(|_| SupergateExtractor::new(netlist, supports, config.supergate_depth))
        .collect();
    // One evaluation scratch (kernel arena + conditioning state) per
    // worker, reused across every node that worker evaluates.
    let mut scratches: Vec<EvalScratch> = (0..threads).map(|_| EvalScratch::new()).collect();
    for (i, s) in scratches.iter_mut().enumerate() {
        // A single-threaded run shares lane 0 so node spans nest under
        // their wave spans; parallel workers get lanes of their own.
        let lane = if threads <= 1 { 0 } else { i as u32 + 1 };
        s.dist.trace = trace.buffer(lane);
    }
    // Workers evaluate supergates with the intra-region fan-out
    // (sensitivity ranking) pinned to one thread: the wave is already
    // saturating the cores, and the region result does not depend on its
    // internal thread count.
    let mut worker_cfg = AnalysisConfig {
        threads: 1,
        ..cfg.clone()
    };

    let mut work: Vec<NodeId> = Vec::new();
    for (wi, wave) in waves.iter().enumerate() {
        if faults::fires(faults::DEADLINE) {
            tracker.force_expire();
        }
        // Abort-strength cancellation stops the run at the wave
        // boundary with partial state discarded; degrade-strength keeps
        // evaluating (cheap topological fallbacks, see `stop_reason`)
        // so the caller still gets a complete, if coarse, analysis.
        if tracker.cancel_state() == CancelState::Abort {
            return Err(Cancelled {
                phase: "propagate",
                elapsed_ms: tracker.elapsed_ms(),
            }
            .into());
        }
        work.clear();
        for &node in wave {
            if netlist.kind(node) == GateKind::Input {
                groups[node.index()] = pi_group(node);
            } else if is_active(node) {
                work.push(node);
            }
        }
        waves_counter.inc();
        wave_width.record(work.len() as f64);
        if work.is_empty() {
            continue;
        }
        let wave_started = Instant::now();
        let wave_span = orch.begin(TraceLevel::Phases);
        let checkouts_before: u64 = if wave_span.is_live() {
            scratches.iter().map(|s| s.dist.checkouts()).sum()
        } else {
            0
        };
        if threads <= 1 || work.len() == 1 {
            // Inline path: keeps per-node phases, and a lone wide
            // supergate still gets the intra-region fan-out via the full
            // config.
            for &node in &work {
                let extractor = &mut extractors[0];
                let scratch = &mut scratches[0];
                let r = catch_unwind(AssertUnwindSafe(|| {
                    eval_one(
                        netlist,
                        arcs,
                        supports,
                        eval,
                        &cfg,
                        &tracker,
                        extractor,
                        scratch,
                        &groups,
                        node,
                        Some(obs),
                    )
                }))
                .unwrap_or_else(|p| {
                    Err(AnalysisError::WorkerPanic {
                        node: netlist.node_name(node).to_owned(),
                        detail: panic_detail(p.as_ref()),
                    })
                })
                .map_err(PepError::Analysis)?;
                commit(
                    &metrics,
                    netlist,
                    &tracker,
                    obs,
                    &mut warnings,
                    &mut groups,
                    node,
                    r,
                )?;
            }
        } else {
            let workers = threads.min(work.len());
            let mut results: Vec<Option<NodeResult>> = Vec::with_capacity(work.len());
            results.resize_with(work.len(), || None);
            // The first failure by wave index wins — deterministic for
            // any thread count (each node's evaluation, and thus its
            // panic, is deterministic; each worker reports its first).
            let mut first_err: Option<(usize, AnalysisError)> = None;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                // Strided assignment (worker t takes items t, t+workers,
                // ...) balances clustered supergates across workers;
                // results are keyed by wave index, so the assignment has
                // no effect on the committed order.
                for (t, (extractor, scratch)) in extractors
                    .iter_mut()
                    .zip(scratches.iter_mut())
                    .take(workers)
                    .enumerate()
                {
                    let work = &work;
                    let groups = &groups;
                    let worker_cfg = &worker_cfg;
                    let tracker = &tracker;
                    handles.push(scope.spawn(move || {
                        let mut out: Vec<(usize, Result<NodeResult, AnalysisError>)> = Vec::new();
                        let mut i = t;
                        while i < work.len() {
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                eval_one(
                                    netlist,
                                    arcs,
                                    supports,
                                    eval,
                                    worker_cfg,
                                    tracker,
                                    &mut *extractor,
                                    &mut *scratch,
                                    groups,
                                    work[i],
                                    None,
                                )
                            }))
                            .unwrap_or_else(|p| {
                                Err(AnalysisError::WorkerPanic {
                                    node: netlist.node_name(work[i]).to_owned(),
                                    detail: panic_detail(p.as_ref()),
                                })
                            });
                            let failed = r.is_err();
                            out.push((i, r));
                            if failed {
                                // The scratch may be mid-mutation after a
                                // caught panic; stop this worker — the run
                                // is aborting anyway.
                                break;
                            }
                            i += workers;
                        }
                        out
                    }));
                }
                for h in handles {
                    for (i, r) in h.join().expect("wave worker panicked") {
                        match r {
                            Ok(r) => results[i] = Some(r),
                            Err(e) => {
                                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                                    first_err = Some((i, e));
                                }
                            }
                        }
                    }
                }
            });
            if let Some((_, e)) = first_err {
                return Err(PepError::Analysis(e));
            }
            for (i, &node) in work.iter().enumerate() {
                let r = results[i].take().expect("every wave item evaluated");
                commit(
                    &metrics,
                    netlist,
                    &tracker,
                    obs,
                    &mut warnings,
                    &mut groups,
                    node,
                    r,
                )?;
            }
        }
        wave_width_hist.record(work.len() as f64);
        wave_seconds_hist.record(wave_started.elapsed().as_secs_f64());
        if wave_span.is_live() {
            let checkouts: u64 = scratches.iter().map(|s| s.dist.checkouts()).sum();
            orch.end(
                wave_span,
                "wave",
                "wave",
                SpanArgs::new()
                    .with("wave", wi as u64)
                    .with("width", work.len() as u64)
                    .with("checkouts", checkouts - checkouts_before),
            );
        }
        // Memory ladder: when resident event mass exceeds the budget,
        // tighten the paper's `P_m` drop threshold (×10) and
        // re-truncate every committed group. Group sizes are
        // bit-identical across thread counts, so this trips — and
        // degrades — identically for any thread layout.
        if let Some(byte_cap) = tracker.max_event_bytes() {
            if mem_escalations < MAX_MEM_ESCALATIONS {
                let bytes: usize = groups.iter().map(|g| g.support_span() * 8).sum();
                if bytes > byte_cap {
                    if tracker.fail_fast() {
                        return Err(BudgetExceeded {
                            resource: "max_event_bytes",
                            limit: byte_cap as u64,
                            observed: bytes as u64,
                        }
                        .into());
                    }
                    let old = cfg.min_event_prob;
                    let new = if old > 0.0 { old * 10.0 } else { 1e-6 };
                    cfg.min_event_prob = new;
                    worker_cfg.min_event_prob = new;
                    for g in groups.iter_mut() {
                        if !g.is_empty() {
                            g.truncate_below(new);
                            g.normalize();
                        }
                    }
                    let after: usize = groups.iter().map(|g| g.support_span() * 8).sum();
                    mem_escalations += 1;
                    let w = Warning::new(
                        "budget.memory",
                        format!("wave:{wi}"),
                        "min_event_prob",
                        format!(
                            "event mass {bytes} B exceeded cap {byte_cap} B; \
                             P_m {old:e} -> {new:e} (now {after} B)"
                        ),
                        "events below the tightened threshold are dropped; \
                         groups renormalized",
                    );
                    obs.warn(w.clone());
                    warnings.push(w);
                }
            }
        }
    }
    // Arena accounting: `pep.alloc.checkouts` is the total number of
    // scratch-distribution checkouts (summed over workers — each node's
    // kernel sequence is deterministic, so the sum does not depend on the
    // thread count for the pinned worker configs the drivers use).
    // `pep.alloc.slab_high_water` is the deepest any single worker's
    // arena got; like `pep.threads` it reflects the thread layout.
    //
    // Before reading the arenas, flush every lane's buffered spans and
    // per-kernel aggregates into the trace collector, then fold the
    // kernel aggregates into the session's `pep.kernel.<name>.seconds`
    // histograms so a plain metrics scrape sees kernel attribution
    // without a trace export.
    if trace.is_enabled() {
        orch.flush();
        for s in scratches.iter_mut() {
            s.dist.trace.flush();
        }
        let aggs = trace.kernel_aggregates();
        for kind in pep_obs::KernelKind::ALL {
            let agg = &aggs[kind as usize];
            if agg.calls == 0 {
                continue;
            }
            let snap = agg.to_seconds_snapshot();
            obs.log_histogram(&format!("pep.kernel.{}.seconds", kind.name()))
                .merge_buckets(&snap.buckets, snap.sum, snap.count);
        }
    }
    let checkouts: u64 = scratches.iter().map(|s| s.dist.checkouts()).sum();
    let high_water = scratches
        .iter()
        .map(|s| s.dist.slab_high_water())
        .max()
        .unwrap_or(0);
    obs.counter("pep.alloc.checkouts").add(checkouts);
    obs.gauge("pep.alloc.slab_high_water")
        .set(high_water as f64);
    Ok((groups, metrics.stats_since(&base), warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CombineMode;
    use pep_celllib::DelayModel;
    use pep_netlist::{generate, samples, GateKind};

    #[test]
    fn unit_delay_tree_is_levelized() {
        let nl = generate::comb_tree(GateKind::And, 8);
        let t = Timing::uniform(&nl, 1.0);
        let a = analyze(
            &nl,
            &t,
            &AnalysisConfig::exact_with_step(TimeStep::new(1.0).expect("valid")),
        );
        for id in nl.node_ids() {
            assert_eq!(a.group(id), &DiscreteDist::point(nl.level(id) as i64));
        }
        assert_eq!(a.stats().supergates, 0);
    }

    #[test]
    fn deterministic_repeatability() {
        // The paper's headline property: same inputs, same outputs.
        let nl = samples::fig6();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(9));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let b = analyze(&nl, &t, &AnalysisConfig::default());
        for id in nl.node_ids() {
            assert_eq!(a.group(id), b.group(id));
        }
    }

    #[test]
    fn reconvergent_gates_use_supergates() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        assert!(a.stats().supergates >= 2, "c17 reconverges at 22 and 23");
        assert!(a.stats().stems_conditioned > 0);
    }

    #[test]
    fn zero_conditioning_resolution_is_clamped() {
        // Regression: `Some(0)` used to reach `coarsened(0)` inside
        // `RegionEval::propagate_affected` and panic; the config boundary
        // now clamps it to the coarsest valid resolution.
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let zero = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                conditioning_resolution: Some(0),
                ..AnalysisConfig::default()
            },
        );
        let one = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                conditioning_resolution: Some(1),
                ..AnalysisConfig::default()
            },
        );
        assert!(zero.stats().supergates > 0, "the panic path was exercised");
        for id in nl.node_ids() {
            assert_eq!(zero.group(id), one.group(id));
        }
    }

    #[test]
    fn dropped_mass_accounted() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let none = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                min_event_prob: 0.0,
                ..AnalysisConfig::default()
            },
        );
        assert_eq!(none.stats().dropped_mass, 0.0);
        let strict = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                min_event_prob: 1e-2,
                ..AnalysisConfig::default()
            },
        );
        assert!(strict.stats().dropped_mass > 0.0);
        // Groups stay unit-mass: dropping renormalizes (DESIGN.md §4).
        let po = nl.primary_outputs()[0];
        assert!((strict.group(po).total_mass() - 1.0).abs() < 1e-9);
        assert!(strict.mean_time(po) > 0.0);
        // And the aggressive filter visibly coarsens the distribution.
        assert!(strict.group(po).support_len() < none.group(po).support_len());
    }

    #[test]
    fn earliest_mode_lower_than_latest() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let late = analyze(&nl, &t, &AnalysisConfig::default());
        let early = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                mode: CombineMode::Earliest,
                ..AnalysisConfig::default()
            },
        );
        for &po in nl.primary_outputs() {
            assert!(early.mean_time(po) <= late.mean_time(po) + 1e-9);
        }
    }

    #[test]
    fn custom_input_arrivals() {
        let nl = samples::c17();
        let t = Timing::uniform(&nl, 1.0);
        let cfg = AnalysisConfig::exact_with_step(TimeStep::new(1.0).expect("valid"));
        let base = analyze(&nl, &t, &cfg);
        // Delay every input by 5 ticks: all arrivals shift by 5.
        let shifted = analyze_with_inputs(&nl, &t, &cfg, |_| DiscreteDist::point(5));
        for &po in nl.primary_outputs() {
            assert_eq!(
                shifted.group(po),
                &base.group(po).shifted(5),
                "uniform input delay shifts outputs"
            );
        }
    }

    #[test]
    fn circuit_delay_covers_outputs() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let cd = a.circuit_delay(&nl);
        for &po in nl.primary_outputs() {
            assert!(
                cd.mean_ticks() + 1e-9 >= a.group(po).mean_ticks(),
                "circuit delay dominates every output"
            );
        }
    }

    #[test]
    fn quantiles_exposed() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let po = nl.primary_outputs()[0];
        let q50 = a.quantile_time(po, 0.5).expect("non-empty");
        let q99 = a.quantile_time(po, 0.99).expect("non-empty");
        assert!(q99 >= q50);
    }
}
