//! Fault injection for resilience testing (cfg-gated).
//!
//! With the `fault-injection` feature enabled, tests can *arm* named
//! fault sites inside the analysis pipeline; the next time execution
//! passes the site, the fault fires exactly once (forcing a worker
//! panic, a degenerate pdf, a simulated allocation failure, or instant
//! deadline expiry). The resilience suite asserts the engine survives
//! each with a typed [`pep_sta::PepError`] or a `Warning`-bearing
//! report — never a process abort — and that with no fault armed the
//! results are bit-identical to a build without the feature.
//!
//! Without the feature every probe is a `const false` the optimizer
//! removes, so production builds carry no registry, no locking, and no
//! branch cost.

/// Site: panic inside a wave worker's node evaluation.
pub const WAVE_WORKER_PANIC: &str = "wave-worker-panic";
/// Site: allocation failure while building a supergate region.
pub const SUPERGATE_ALLOC: &str = "supergate-alloc";
/// Site: a supergate evaluation yields a degenerate (empty) pdf.
pub const DEGENERATE_PDF: &str = "degenerate-pdf";
/// Site: the wall-clock deadline expires before the next wave.
pub const DEADLINE: &str = "deadline";

#[cfg(feature = "fault-injection")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// Armed sites: site -> remaining probe hits to skip before firing.
    fn registry() -> &'static Mutex<HashMap<&'static str, u64>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, u64>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn arm(site: &'static str, skip: u64) {
        registry()
            .lock()
            .expect("fault registry poisoned")
            .insert(site, skip);
    }

    pub fn disarm_all() {
        registry().lock().expect("fault registry poisoned").clear();
    }

    pub fn fires(site: &str) -> bool {
        let mut reg = registry().lock().expect("fault registry poisoned");
        match reg.get_mut(site) {
            Some(0) => {
                reg.remove(site);
                true
            }
            Some(skip) => {
                *skip -= 1;
                false
            }
            None => false,
        }
    }
}

/// Arms `site` to fire once, after skipping the next `skip` probe
/// hits (`skip = 0` fires at the very next hit). Re-arming replaces
/// any previous arming of the same site.
#[cfg(feature = "fault-injection")]
pub fn arm(site: &'static str, skip: u64) {
    imp::arm(site, skip);
}

/// Disarms every armed fault site.
#[cfg(feature = "fault-injection")]
pub fn disarm_all() {
    imp::disarm_all();
}

/// Probes `site`: `true` exactly once per arming, when its skip count
/// is exhausted.
#[cfg(feature = "fault-injection")]
#[inline]
pub fn fires(site: &str) -> bool {
    imp::fires(site)
}

/// Arming is a no-op without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
pub fn arm(_site: &'static str, _skip: u64) {}

/// Disarming is a no-op without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
pub fn disarm_all() {}

/// Always `false` without the `fault-injection` feature (the probe
/// compiles away).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fires(_site: &str) -> bool {
    false
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn one_shot_semantics() {
        disarm_all();
        arm(DEGENERATE_PDF, 2);
        assert!(!fires(DEGENERATE_PDF));
        assert!(!fires(DEGENERATE_PDF));
        assert!(fires(DEGENERATE_PDF), "fires after the skip count");
        assert!(!fires(DEGENERATE_PDF), "one-shot");
        assert!(!fires(WAVE_WORKER_PANIC), "unarmed sites never fire");
        disarm_all();
    }
}
