//! Brute-force validation oracle.
//!
//! [`enumerate_exact`] computes the *true* joint arrival-time
//! distributions of a circuit by enumerating every combination of
//! discretized cell-delay values — exponential, but exact, and therefore
//! the ground truth the exact sampling-evaluation algorithm (paper §3.2)
//! is tested against on small circuits.

use crate::arcs::ArcPmfs;
use crate::CombineMode;
use pep_dist::DiscreteDist;
use pep_netlist::{GateKind, Netlist};
use std::collections::HashMap;

/// Upper bound on enumerated combinations; beyond this the oracle would
/// effectively never finish.
const MAX_COMBINATIONS: f64 = 2e7;

/// Enumerates every joint assignment of the (discretized) cell delays and
/// returns the exact arrival-time distribution per node.
///
/// Semantics match the analyzer and the Monte Carlo engine: one delay
/// value per cell shared by its pins; primary inputs arrive at tick 0.
///
/// # Panics
///
/// Panics if `arcs` carries wire delays (enumerate cell delays only) or
/// if the total combination count exceeds an internal safety bound
/// (~2·10⁷) — this is a test oracle for *small* circuits.
///
/// # Example
///
/// ```
/// use pep_celllib::Timing;
/// use pep_core::{validate, AnalysisConfig, ArcPmfs, CombineMode};
/// use pep_dist::TimeStep;
/// use pep_netlist::samples;
///
/// let nl = samples::mux2();
/// let timing = Timing::uniform(&nl, 1.0);
/// let arcs = ArcPmfs::discretize_all(&nl, &timing, TimeStep::new(1.0)?);
/// let truth = validate::enumerate_exact(&nl, &arcs, CombineMode::Latest);
/// let y = nl.node_id("y").expect("present");
/// assert_eq!(truth[y.index()].support_len(), 1, "unit delays are deterministic");
/// # Ok::<(), pep_dist::DistError>(())
/// ```
pub fn enumerate_exact(netlist: &Netlist, arcs: &ArcPmfs, mode: CombineMode) -> Vec<DiscreteDist> {
    assert!(
        !arcs.has_wires(),
        "the enumeration oracle supports cell delays only"
    );
    let gates: Vec<_> = netlist
        .topo_order()
        .iter()
        .copied()
        .filter(|&n| netlist.kind(n) != GateKind::Input)
        .collect();
    let events: Vec<Vec<(i64, f64)>> = gates
        .iter()
        .map(|&g| arcs.cell(g).iter().collect())
        .collect();
    let combos: f64 = events.iter().map(|e| e.len() as f64).product();
    assert!(
        combos <= MAX_COMBINATIONS,
        "{combos:.0} combinations exceed the enumeration bound"
    );

    let n = netlist.node_count();
    let mut tallies: Vec<HashMap<i64, f64>> = vec![HashMap::new(); n];
    let mut choice = vec![0usize; gates.len()];
    let mut arrival = vec![0i64; n];
    loop {
        // Evaluate this assignment.
        let mut weight = 1.0;
        for (gi, &g) in gates.iter().enumerate() {
            let (delay, p) = events[gi][choice[gi]];
            weight *= p;
            let combined = netlist
                .fanins(g)
                .iter()
                .map(|f| arrival[f.index()])
                .fold(None, |acc: Option<i64>, t| {
                    Some(match (acc, mode) {
                        (None, _) => t,
                        (Some(a), CombineMode::Latest) => a.max(t),
                        (Some(a), CombineMode::Earliest) => a.min(t),
                    })
                })
                .expect("gates have fanins");
            arrival[g.index()] = combined + delay;
        }
        for id in netlist.node_ids() {
            *tallies[id.index()]
                .entry(arrival[id.index()])
                .or_insert(0.0) += weight;
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == gates.len() {
                return tallies.into_iter().map(DiscreteDist::from_pairs).collect();
            }
            choice[pos] += 1;
            if choice[pos] < events[pos].len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use pep_celllib::{DelayModel, DelayShape, Timing};
    use pep_dist::TimeStep;
    use pep_netlist::{samples, GateKind, NetlistBuilder};

    /// The exact PEP algorithm must equal brute-force enumeration on every
    /// node — including through reconvergent fanout.
    fn assert_exact_on(nl: &pep_netlist::Netlist, step: f64, seed: u64) {
        let model = DelayModel::dac2001(seed)
            .with_shape(DelayShape::Uniform)
            .with_sigma_range(0.06, 0.09);
        let timing = Timing::annotate(nl, &model);
        let ts = TimeStep::new(step).expect("valid step");
        let arcs = ArcPmfs::discretize_all(nl, &timing, ts);
        let truth = enumerate_exact(nl, &arcs, CombineMode::Latest);
        let analysis = analyze(nl, &timing, &AnalysisConfig::exact_with_step(ts));
        for id in nl.node_ids() {
            let got = analysis.group(id);
            let want = &truth[id.index()];
            assert!(
                got.l1_distance(want) < 1e-9,
                "node {} differs: got {got}, want {want}",
                nl.node_name(id)
            );
        }
    }

    #[test]
    fn exact_on_single_stem_diamond() {
        let mut b = NetlistBuilder::new("diamond");
        b.input("a").unwrap();
        b.gate("u", GateKind::Not, &["a"]).unwrap();
        b.gate("v", GateKind::Buf, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["u", "v"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        // Coarse grid keeps the enumeration small: 4 gates with ~3 events.
        assert_exact_on(&nl, 1.5, 3);
    }

    #[test]
    fn exact_on_mux() {
        assert_exact_on(&samples::mux2(), 2.0, 5);
    }

    #[test]
    fn exact_on_c17() {
        // 6 gates; a coarse step keeps each delay at ~3 events -> ~700
        // combinations.
        assert_exact_on(&samples::c17(), 2.5, 7);
    }

    #[test]
    fn exact_on_nested_stems() {
        // Two stems where one lies in the other's fanout cone — exercises
        // the recursive part of sampling-evaluation.
        let mut b = NetlistBuilder::new("nested");
        b.input("s1").unwrap();
        b.gate("s2", GateKind::Not, &["s1"]).unwrap(); // stem in s1's cone
        b.gate("p", GateKind::Buf, &["s2"]).unwrap();
        b.gate("q", GateKind::Not, &["s2"]).unwrap();
        b.gate("r", GateKind::Buf, &["s1"]).unwrap();
        b.gate("m", GateKind::And, &["p", "q"]).unwrap();
        b.gate("y", GateKind::Or, &["m", "r"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        assert_exact_on(&nl, 2.0, 11);
    }

    #[test]
    fn exact_in_earliest_mode() {
        let nl = samples::mux2();
        let model = DelayModel::dac2001(2).with_shape(DelayShape::Uniform);
        let timing = Timing::annotate(&nl, &model);
        let ts = TimeStep::new(2.0).expect("valid");
        let arcs = ArcPmfs::discretize_all(&nl, &timing, ts);
        let truth = enumerate_exact(&nl, &arcs, CombineMode::Earliest);
        let cfg = AnalysisConfig {
            mode: CombineMode::Earliest,
            ..AnalysisConfig::exact_with_step(ts)
        };
        let analysis = analyze(&nl, &timing, &cfg);
        for id in nl.node_ids() {
            assert!(
                analysis.group(id).l1_distance(&truth[id.index()]) < 1e-9,
                "node {}",
                nl.node_name(id)
            );
        }
    }

    #[test]
    #[should_panic(expected = "combinations exceed")]
    fn enumeration_bound_guards() {
        let nl = pep_netlist::generate::iscas_profile(pep_netlist::generate::IscasProfile::S5378);
        let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let ts = timing.step_for_samples(20);
        let arcs = ArcPmfs::discretize_all(&nl, &timing, ts);
        let _ = enumerate_exact(&nl, &arcs, CombineMode::Latest);
    }
}
