//! Resource budgets and the graceful-degradation ladder.
//!
//! A [`Budget`] bounds what an analysis may consume: wall-clock time,
//! event-mass memory, conditioning combinations, and stems per
//! supergate. The engine checks budgets *cooperatively* — inside the
//! wave scheduler, the supergate evaluation, and the conditioning
//! recursion — and when a budget trips it **degrades** along the
//! paper's own approximation knobs instead of aborting:
//!
//! 1. cap the conditioning stems of the offending supergate
//!    (`max_stems_per_supergate` — the §3.3 effective-stem knob),
//! 2. coarsen the enumerated stem events (`max_conditioning_events`),
//! 3. drop the least-effective stems from conditioning,
//! 4. tighten the `P_m` drop threshold when memory runs out,
//! 5. as a last resort, fall back from exact conditioning to plain
//!    topological propagation for the offending region.
//!
//! Every degradation is recorded as a structured [`pep_obs::Warning`]
//! in the run report, naming the affected supergate, the knob that
//! changed, and the estimated accuracy impact. With `fail_fast` set the
//! run instead returns [`BudgetExceeded`] at the first trip.
//!
//! When no budget is configured the tracker is fully inert: the hot
//! paths see `None` caps and skip every check, so un-budgeted runs are
//! bit-identical to pre-budget builds.

use pep_obs::Warning;
use pep_sta::{BudgetExceeded, CancelState, CancelToken};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Resource limits for one analysis run.
///
/// All limits default to `None` (unlimited). Deadline-limited runs are
/// *not* bit-identical across thread counts or machines — the clock is
/// real; every other limit degrades deterministically (same groups and
/// same warnings for any thread count).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Wall-clock deadline for the whole analysis, in milliseconds.
    /// Once expired, remaining supergates fall back to topological
    /// propagation (plain nodes keep evaluating — they are cheap).
    pub deadline_ms: Option<u64>,
    /// Cap on the *estimated* conditioning combinations per supergate
    /// (the product over conditioned stems of their enumerated event
    /// counts). Exceeding it coarsens stem events, then drops stems.
    pub max_combinations: Option<u64>,
    /// Cap on resident event-mass memory (bytes across all node
    /// groups, 8 bytes per dense tick). Exceeding it tightens the
    /// `P_m` drop threshold and re-truncates committed groups.
    pub max_event_bytes: Option<usize>,
    /// Cap on conditioning stems per supergate; excess stems are
    /// ranked and the least effective are treated as independent.
    pub max_stems_per_supergate: Option<usize>,
    /// Return [`BudgetExceeded`] at the first trip instead of
    /// degrading.
    pub fail_fast: bool,
}

impl Budget {
    /// No limits at all (the default).
    pub fn none() -> Self {
        Budget::default()
    }

    /// Whether every limit is unset.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none()
            && self.max_combinations.is_none()
            && self.max_event_bytes.is_none()
            && self.max_stems_per_supergate.is_none()
    }
}

/// Runtime state of a [`Budget`]: the started clock plus an expiry
/// latch. Shared across worker threads (`Sync`); fully inert when the
/// budget is unset.
pub(crate) struct BudgetTracker {
    started: Instant,
    deadline: Option<Instant>,
    deadline_ms: Option<u64>,
    max_combinations: Option<u64>,
    max_event_bytes: Option<usize>,
    max_stems: Option<usize>,
    fail_fast: bool,
    /// Set once the deadline is first observed expired (or forced by
    /// fault injection) so later checks are a cheap load.
    expired: AtomicBool,
    /// Cooperative cancellation, polled at the same places the deadline
    /// is. `None` for non-cancellable entry points — the common case
    /// stays allocation-free and skips the token loads entirely.
    cancel: Option<CancelToken>,
}

impl BudgetTracker {
    /// Starts the clock for `budget` (`None` = fully inert).
    pub(crate) fn new(budget: Option<&Budget>) -> Self {
        let started = Instant::now();
        let b = budget.cloned().unwrap_or_default();
        BudgetTracker {
            started,
            deadline: b.deadline_ms.map(|ms| started + Duration::from_millis(ms)),
            deadline_ms: b.deadline_ms,
            max_combinations: b.max_combinations,
            max_event_bytes: b.max_event_bytes,
            max_stems: b.max_stems_per_supergate,
            fail_fast: b.fail_fast,
            expired: AtomicBool::new(false),
            cancel: None,
        }
    }

    /// Starts the clock for `budget` with an externally held
    /// [`CancelToken`]: the tracker reports cancellation requests
    /// through [`stop_reason`](BudgetTracker::stop_reason) and
    /// [`cancel_state`](BudgetTracker::cancel_state) at the same poll
    /// points as the deadline.
    pub(crate) fn with_cancel(budget: Option<&Budget>, cancel: CancelToken) -> Self {
        BudgetTracker {
            cancel: Some(cancel),
            ..BudgetTracker::new(budget)
        }
    }

    /// A tracker with no limits (for unbudgeted entry points).
    pub(crate) fn inert() -> Self {
        BudgetTracker::new(None)
    }

    /// Whether an external party holds a cancellation token — gates the
    /// creation of [`CondLimits`] so non-cancellable unbudgeted runs
    /// stay free of per-leaf polling.
    pub(crate) fn cancellable(&self) -> bool {
        self.cancel.is_some()
    }

    /// The current cancellation strength of the attached token.
    pub(crate) fn cancel_state(&self) -> CancelState {
        self.cancel
            .as_ref()
            .map_or(CancelState::Live, CancelToken::state)
    }

    /// Why remaining supergates must stop conditioning, if anything has
    /// tripped: an explicit cancellation request wins over an expired
    /// deadline (the caller asked; the clock merely ran out).
    pub(crate) fn stop_reason(&self) -> Option<FallbackReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(FallbackReason::Cancelled);
        }
        if self.deadline_expired() {
            return Some(FallbackReason::Deadline);
        }
        None
    }

    /// Whether the deadline has passed (latched after the first trip).
    pub(crate) fn deadline_expired(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.expired.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Latches the deadline as expired (fault injection / external
    /// cancellation).
    pub(crate) fn force_expire(&self) {
        self.expired.store(true, Ordering::Relaxed);
    }

    /// Whether any deadline (real or forced) exists to poll for.
    pub(crate) fn has_deadline(&self) -> bool {
        self.deadline.is_some() || self.expired.load(Ordering::Relaxed)
    }

    pub(crate) fn max_combinations(&self) -> Option<u64> {
        self.max_combinations
    }

    pub(crate) fn max_event_bytes(&self) -> Option<usize> {
        self.max_event_bytes
    }

    pub(crate) fn max_stems(&self) -> Option<usize> {
        self.max_stems
    }

    pub(crate) fn fail_fast(&self) -> bool {
        self.fail_fast
    }

    /// Milliseconds elapsed since the tracker started.
    pub(crate) fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The configured deadline in milliseconds (0 when forced without
    /// one).
    pub(crate) fn deadline_ms(&self) -> u64 {
        self.deadline_ms.unwrap_or(0)
    }
}

/// Why a supergate fell back to plain topological propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FallbackReason {
    /// The wall-clock deadline expired.
    Deadline,
    /// The combination cap left no room for any conditioning.
    Combinations,
    /// A cooperative cancellation (degrade strength) asked the run to
    /// finish fast.
    Cancelled,
}

impl FallbackReason {
    fn as_str(self) -> &'static str {
        match self {
            FallbackReason::Deadline => "deadline expired",
            FallbackReason::Combinations => "combination cap left no room",
            FallbackReason::Cancelled => "cancellation requested",
        }
    }
}

/// One budget-driven approximation applied to a supergate evaluation.
/// The analyzer turns these into [`Warning`]s (it knows the node
/// names) and commits them in wave order, so the warning list is as
/// deterministic as the groups themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Degradation {
    /// Conditioning stems were capped; the rest combine independently.
    StemCap {
        /// Stems before the cap.
        from: usize,
        /// Stems actually conditioned.
        cap: usize,
    },
    /// Stem events were coarsened to fit the combination cap.
    Coarsened {
        /// The configured `max_conditioning_events` (None = unbounded).
        from: Option<usize>,
        /// The tightened per-stem event cap.
        to: usize,
        /// The estimated combinations that tripped the cap.
        estimate: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The least-effective stems were dropped to fit the combination
    /// cap.
    StemsDropped {
        /// Stems before dropping.
        from: usize,
        /// Stems kept.
        to: usize,
        /// The estimated combinations that tripped the cap.
        estimate: u64,
        /// The configured cap.
        cap: u64,
    },
    /// Conditioning was abandoned; the unconditioned (topological)
    /// group was used instead.
    TopologicalFallback {
        /// What forced the fallback.
        reason: FallbackReason,
    },
}

impl Degradation {
    /// Renders the degradation as a structured run-report warning for
    /// the supergate rooted at `node`.
    pub(crate) fn warning(&self, node: &str) -> Warning {
        let subject = format!("sg:{node}");
        match self {
            Degradation::StemCap { from, cap } => Warning::new(
                "budget.stems",
                subject,
                "max_stems_per_supergate",
                format!("conditioning stems reduced {from} -> {cap}"),
                "branch correlation of the dropped stems is ignored",
            ),
            Degradation::Coarsened {
                from,
                to,
                estimate,
                cap,
            } => Warning::new(
                "budget.combinations",
                subject,
                "max_conditioning_events",
                format!(
                    "stem events coarsened {} -> {to} (estimated {estimate} \
                     combinations > cap {cap})",
                    from.map_or_else(|| "unbounded".to_owned(), |f| f.to_string()),
                ),
                "quantile buckets keep their mass and mean; tail resolution shrinks",
            ),
            Degradation::StemsDropped {
                from,
                to,
                estimate,
                cap,
            } => Warning::new(
                "budget.combinations",
                subject,
                "effective_stems",
                format!(
                    "conditioned stems reduced {from} -> {to} (estimated \
                     {estimate} combinations > cap {cap})"
                ),
                "dropped stems are combined independently",
            ),
            Degradation::TopologicalFallback { reason } => Warning::new(
                match reason {
                    FallbackReason::Deadline => "budget.deadline",
                    FallbackReason::Combinations => "budget.combinations",
                    FallbackReason::Cancelled => "cancel.requested",
                },
                subject,
                "conditioning",
                format!(
                    "sampling-evaluation skipped ({}); plain topological \
                     propagation used",
                    reason.as_str()
                ),
                "reconvergent correlation at this supergate is ignored",
            ),
        }
    }

    /// The degradation as a hard error, for `fail_fast` runs.
    pub(crate) fn budget_error(&self, tracker: &BudgetTracker) -> BudgetExceeded {
        match *self {
            Degradation::StemCap { from, cap } => BudgetExceeded {
                resource: "max_stems_per_supergate",
                limit: cap as u64,
                observed: from as u64,
            },
            Degradation::Coarsened { estimate, cap, .. }
            | Degradation::StemsDropped { estimate, cap, .. } => BudgetExceeded {
                resource: "max_combinations",
                limit: cap,
                observed: estimate,
            },
            Degradation::TopologicalFallback { reason } => match reason {
                FallbackReason::Deadline => BudgetExceeded {
                    resource: "deadline_ms",
                    limit: tracker.deadline_ms(),
                    observed: tracker.elapsed_ms(),
                },
                FallbackReason::Combinations => BudgetExceeded {
                    resource: "max_combinations",
                    limit: tracker.max_combinations().unwrap_or(0),
                    observed: tracker.max_combinations().unwrap_or(0).saturating_add(1),
                },
                // Cancellations are exempt from fail-fast (the commit
                // path never routes them here): the caller asked the
                // run to wrap up, which is not a budget trip.
                FallbackReason::Cancelled => BudgetExceeded {
                    resource: "cancelled",
                    limit: 0,
                    observed: tracker.elapsed_ms(),
                },
            },
        }
    }

    /// Whether this degradation was driven by a cancellation request
    /// (exempt from fail-fast conversion to a hard error).
    pub(crate) fn is_cancellation(&self) -> bool {
        matches!(
            self,
            Degradation::TopologicalFallback {
                reason: FallbackReason::Cancelled
            }
        )
    }
}

/// Cooperative abort state threaded through the conditioning
/// recursion: a leaf allowance (a deterministic backstop in case the
/// up-front combination estimate undershot) plus periodic deadline
/// polls. `Cell`-based — one evaluation runs on one thread.
pub(crate) struct CondLimits<'t> {
    leaves: Cell<u64>,
    poll: Cell<u32>,
    tracker: &'t BudgetTracker,
    aborted: Cell<bool>,
}

/// Poll the deadline every this many enumeration leaves.
const DEADLINE_POLL_LEAVES: u32 = 512;

impl<'t> CondLimits<'t> {
    /// Limits for one supergate evaluation, or `None` when the tracker
    /// has nothing to enforce (the enumeration then runs untouched).
    /// Cancellable trackers always get limits — the leaf allowance
    /// stays unbounded, but the periodic poll observes the token.
    pub(crate) fn for_tracker(tracker: &'t BudgetTracker) -> Option<Self> {
        if !tracker.has_deadline() && tracker.max_combinations().is_none() && !tracker.cancellable()
        {
            return None;
        }
        // Generous slack over the up-front estimate: the backstop only
        // fires when the estimate was grossly wrong, and stays
        // deterministic (a pure leaf count) when it does.
        let leaves = tracker
            .max_combinations()
            .map_or(u64::MAX, |cap| cap.saturating_mul(4).max(1024));
        Some(CondLimits {
            leaves: Cell::new(leaves),
            poll: Cell::new(0),
            tracker,
            aborted: Cell::new(false),
        })
    }

    /// Whether the evaluation has been aborted (result is partial and
    /// must be discarded).
    pub(crate) fn aborted(&self) -> bool {
        self.aborted.get()
    }

    /// Accounts one enumeration leaf. Returns `false` when the
    /// evaluation must abort.
    pub(crate) fn spend_leaf(&self) -> bool {
        if self.aborted.get() {
            return false;
        }
        let left = self.leaves.get();
        if left == 0 {
            self.aborted.set(true);
            return false;
        }
        self.leaves.set(left - 1);
        let p = self.poll.get() + 1;
        if p >= DEADLINE_POLL_LEAVES {
            self.poll.set(0);
            if self.tracker.stop_reason().is_some() {
                self.aborted.set(true);
                return false;
            }
        } else {
            self.poll.set(p);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = Budget::none();
        assert!(b.is_unlimited());
        assert!(!b.fail_fast);
        let limited = Budget {
            max_combinations: Some(64),
            ..Budget::default()
        };
        assert!(!limited.is_unlimited());
    }

    #[test]
    fn budget_round_trips_through_json() {
        let b = Budget {
            deadline_ms: Some(2_000),
            max_combinations: Some(1 << 20),
            max_event_bytes: Some(64 << 20),
            max_stems_per_supergate: Some(8),
            fail_fast: true,
        };
        let text = serde::json::to_string(&b);
        let back: Budget = serde::json::from_str_as(&text).expect("round trip");
        assert_eq!(back, b);
    }

    #[test]
    fn inert_tracker_never_trips() {
        let t = BudgetTracker::inert();
        assert!(!t.deadline_expired());
        assert!(!t.has_deadline());
        assert_eq!(t.max_combinations(), None);
        assert_eq!(t.max_stems(), None);
        assert_eq!(t.max_event_bytes(), None);
        assert!(!t.fail_fast());
        assert!(CondLimits::for_tracker(&t).is_none());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let b = Budget {
            deadline_ms: Some(0),
            ..Budget::default()
        };
        let t = BudgetTracker::new(Some(&b));
        assert!(t.deadline_expired());
        // The latch persists.
        assert!(t.deadline_expired());
    }

    #[test]
    fn forced_expiry_latches_without_deadline() {
        let t = BudgetTracker::inert();
        t.force_expire();
        assert!(t.deadline_expired());
        assert!(t.has_deadline());
    }

    #[test]
    fn leaf_backstop_aborts_deterministically() {
        let b = Budget {
            max_combinations: Some(1),
            ..Budget::default()
        };
        let t = BudgetTracker::new(Some(&b));
        let l = CondLimits::for_tracker(&t).expect("cap set");
        // 1 * 4 slack, floored at 1024 leaves.
        for _ in 0..1024 {
            assert!(l.spend_leaf());
        }
        assert!(!l.spend_leaf());
        assert!(l.aborted());
        assert!(!l.spend_leaf(), "abort is sticky");
    }

    #[test]
    fn degradations_render_to_warnings() {
        let t = BudgetTracker::inert();
        let d = Degradation::StemsDropped {
            from: 9,
            to: 3,
            estimate: 4_096,
            cap: 256,
        };
        let w = d.warning("n123");
        assert_eq!(w.code, "budget.combinations");
        assert_eq!(w.subject, "sg:n123");
        assert_eq!(w.knob, "effective_stems");
        assert!(w.detail.contains("9 -> 3"));
        let e = d.budget_error(&t);
        assert_eq!(e.resource, "max_combinations");
        assert_eq!(e.limit, 256);
        assert_eq!(e.observed, 4_096);

        let f = Degradation::TopologicalFallback {
            reason: FallbackReason::Deadline,
        };
        assert_eq!(f.warning("x").code, "budget.deadline");
        assert_eq!(f.budget_error(&t).resource, "deadline_ms");
    }
}
