//! Allocation probes for the zero-allocation kernel contract.
//!
//! These are `#[doc(hidden)]` test hooks, not public API: they let an
//! integration test with a counting global allocator drive the
//! conditioning recursion through `pep-core`'s private types
//! ([`RegionEval`]/[`EvalScratch`]) and observe per-iteration allocation
//! deltas from outside the crate.

use crate::arcs::ArcPmfs;
use crate::node_eval::StaticEval;
use crate::region::{EvalScratch, RegionEval};
use crate::{AnalysisConfig, CombineMode};
use pep_celllib::Timing;
use pep_dist::{DiscreteDist, TimeStep};
use pep_netlist::cone::SupportSets;
use pep_netlist::supergate;
use pep_netlist::{GateKind, Netlist, NetlistBuilder};

/// A two-stem reconvergent probe circuit: stem `a` feeds an inner
/// diamond producing stem `w`, and both `a` and `w` branch into the two
/// cone halves `m`/`n` reconverging at `z`. One supergate contains both
/// stems, so conditioning enumerates the events of `a` and of `w | a` —
/// recursion depth 2 with a real recompute cone.
fn probe_netlist() -> Netlist {
    let mut b = NetlistBuilder::new("alloc-probe");
    b.input("a").unwrap();
    b.gate("u", GateKind::Buf, &["a"]).unwrap();
    b.gate("v", GateKind::Buf, &["a"]).unwrap();
    b.gate("w", GateKind::And, &["u", "v"]).unwrap();
    b.gate("x1", GateKind::Buf, &["a"]).unwrap();
    b.gate("x2", GateKind::Buf, &["w"]).unwrap();
    b.gate("x3", GateKind::Buf, &["w"]).unwrap();
    b.gate("x4", GateKind::Buf, &["a"]).unwrap();
    b.gate("m", GateKind::And, &["x1", "x2"]).unwrap();
    b.gate("n", GateKind::And, &["x3", "x4"]).unwrap();
    b.gate("z", GateKind::And, &["m", "n"]).unwrap();
    b.output("z").unwrap();
    b.build().unwrap()
}

fn with_probe_region<R>(
    f: impl FnOnce(&RegionEval<'_, StaticEval<'_>>, &[pep_netlist::NodeId]) -> R,
) -> R {
    let nl = probe_netlist();
    let timing = Timing::uniform(&nl, 1.0);
    let arcs = ArcPmfs::discretize_all(&nl, &timing, TimeStep::new(0.5).unwrap());
    let supports = SupportSets::compute(&nl);
    let z = nl.node_id("z").unwrap();
    let sg = supergate::extract(&nl, &supports, z, None);
    let eval = StaticEval {
        arcs: &arcs,
        mode: CombineMode::Latest,
    };
    // A five-event input group keeps the enumeration non-trivial.
    let a_group = DiscreteDist::from_ratios([(0, 2), (1, 3), (2, 1), (4, 3), (5, 1)]);
    let a = nl.node_id("a").unwrap();
    let region = RegionEval::new(
        &nl,
        &arcs,
        &eval,
        &sg,
        |n| (n == a).then_some(&a_group),
        0.0,
    );
    f(&region, &sg.stems)
}

/// Runs `reps` full conditioning enumerations over a persistent output
/// buffer and scratch, returning the allocation-count delta of each rep
/// as reported by `count` (a reader of the harness's counting
/// allocator). The first rep warms the arena; subsequent reps must not
/// allocate at all.
#[doc(hidden)]
pub fn cond_enumeration_alloc_deltas(reps: usize, count: &dyn Fn() -> u64) -> Vec<u64> {
    with_probe_region(|region, stems| {
        let mut out = DiscreteDist::empty();
        let mut scratch = EvalScratch::new();
        let mut deltas = Vec::with_capacity(reps);
        for _ in 0..reps {
            let before = count();
            region.conditioned_eval_into(stems, None, &mut out, &mut scratch);
            deltas.push(count() - before);
        }
        assert!(
            (out.total_mass() - 1.0).abs() < 1e-9,
            "probe evaluation must produce a full group"
        );
        deltas
    })
}

/// Runs `reps` full `RegionEval::evaluate` calls (no stem filtering or
/// effective-stem selection, so the stem list stays borrowed from the
/// supergate) and returns per-rep allocation deltas. Unlike the
/// enumeration probe this returns an owned group per rep, so the
/// steady-state budget is the output buffer only — a handful of
/// allocations, not zero.
#[doc(hidden)]
pub fn evaluate_alloc_deltas(reps: usize, count: &dyn Fn() -> u64) -> Vec<u64> {
    with_probe_region(|region, _stems| {
        let config = AnalysisConfig {
            filter_stems: false,
            max_effective_stems: None,
            min_event_prob: 0.0,
            max_conditioning_events: None,
            threads: 1,
            ..AnalysisConfig::default()
        };
        let mut scratch = EvalScratch::new();
        let mut deltas = Vec::with_capacity(reps);
        for _ in 0..reps {
            let before = count();
            let (g, outcome) = region.evaluate(&config, &mut scratch);
            deltas.push(count() - before);
            assert_eq!(outcome.stems_conditioned, 2);
            assert!((g.total_mass() - 1.0).abs() < 1e-9);
        }
        deltas
    })
}
