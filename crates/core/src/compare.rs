//! PEP-vs-Monte-Carlo comparison, using the paper's error metric.
//!
//! The paper reports, per circuit, the error percentage `M_e + 3σ_e` over
//! the per-node relative errors of arrival-time means and standard
//! deviations against the Monte Carlo reference (§4, Figs. 7–10).

use crate::PepAnalysis;
use pep_dist::stats::ErrorSummary;
use pep_netlist::{GateKind, Netlist};
use pep_sta::monte_carlo::McResult;
use serde::{Deserialize, Serialize};

/// Error summaries for arrival-time means and standard deviations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Comparison {
    /// Per-node relative errors of the arrival-time means.
    pub means: ErrorSummary,
    /// Per-node relative errors of the arrival-time standard deviations.
    pub stds: ErrorSummary,
}

impl Comparison {
    /// The paper's headline numbers: `(mean error %, σ error %)`, each as
    /// `M_e + 3σ_e`.
    pub fn report(&self) -> (f64, f64) {
        (self.means.report_percent(), self.stds.report_percent())
    }
}

/// Compares a PEP analysis against a Monte Carlo reference over every
/// signal node (gates; primary inputs carry no timing and are skipped).
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, Timing};
/// use pep_core::{analyze, compare, AnalysisConfig};
/// use pep_netlist::samples;
/// use pep_sta::monte_carlo::{run_monte_carlo, McConfig};
///
/// let nl = samples::c17();
/// let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
/// let pep = analyze(&nl, &timing, &AnalysisConfig::default());
/// let mc = run_monte_carlo(&nl, &timing, &McConfig { runs: 2_000, ..McConfig::default() });
/// let cmp = compare::against_monte_carlo(&nl, &pep, &mc);
/// let (mean_err, std_err) = cmp.report();
/// assert!(mean_err < 3.0, "means within a few percent, got {mean_err}");
/// assert!(std_err < 30.0, "sigmas in the right ballpark, got {std_err}");
/// ```
pub fn against_monte_carlo(netlist: &Netlist, pep: &PepAnalysis, mc: &McResult) -> Comparison {
    let mut cmp = Comparison::default();
    for id in netlist.node_ids() {
        if netlist.kind(id) == GateKind::Input || pep.group(id).is_empty() {
            continue;
        }
        cmp.means.push_pair(mc.mean(id), pep.mean_time(id));
        cmp.stds.push_pair(mc.std(id), pep.std_time(id));
    }
    cmp
}

/// Compares two PEP analyses node-by-node (used by the Fig. 7 study,
/// where the reference is a no-event-dropping run rather than Monte
/// Carlo).
pub fn against_reference(
    netlist: &Netlist,
    reference: &PepAnalysis,
    measured: &PepAnalysis,
) -> Comparison {
    let mut cmp = Comparison::default();
    for id in netlist.node_ids() {
        if netlist.kind(id) == GateKind::Input
            || reference.group(id).is_empty()
            || measured.group(id).is_empty()
        {
            continue;
        }
        cmp.means
            .push_pair(reference.mean_time(id), measured.mean_time(id));
        cmp.stds
            .push_pair(reference.std_time(id), measured.std_time(id));
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use pep_celllib::{DelayModel, Timing};
    use pep_netlist::samples;
    use pep_sta::monte_carlo::{run_monte_carlo, McConfig};

    #[test]
    fn self_comparison_is_zero_error() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let cmp = against_reference(&nl, &a, &a);
        assert_eq!(cmp.report(), (0.0, 0.0));
        assert_eq!(cmp.means.count(), nl.gate_count() as u64);
    }

    #[test]
    fn pep_tracks_monte_carlo_on_c17() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let pep = analyze(&nl, &t, &AnalysisConfig::default());
        let mc = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 5_000,
                ..McConfig::default()
            },
        );
        let cmp = against_monte_carlo(&nl, &pep, &mc);
        let (mean_err, std_err) = cmp.report();
        assert!(mean_err < 2.0, "mean error {mean_err}%");
        assert!(std_err < 20.0, "std error {std_err}%");
    }

    #[test]
    fn exact_beats_heavily_approximate() {
        let nl = samples::fig6();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(2));
        let mc = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 20_000,
                ..McConfig::default()
            },
        );
        let exact = analyze(&nl, &t, &AnalysisConfig::exact());
        let sloppy = analyze(
            &nl,
            &t,
            &AnalysisConfig {
                min_event_prob: 5e-2,
                samples: 5,
                ..AnalysisConfig::default()
            },
        );
        let (e_mean, _) = against_monte_carlo(&nl, &exact, &mc).report();
        let (s_mean, _) = against_monte_carlo(&nl, &sloppy, &mc).report();
        assert!(
            e_mean < s_mean,
            "exact ({e_mean}%) should beat sloppy ({s_mean}%)"
        );
    }
}
