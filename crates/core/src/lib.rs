//! Probabilistic event propagation — the DAC 2001 statistical timing
//! analyzer.
//!
//! This crate implements the paper's contribution end to end:
//!
//! * [`cell_eval`] — evaluation of a single cell on probabilistic events:
//!   single-event propagation (Fig. 3), event-group propagation via
//!   *shift-with-scaling* + *group* (Fig. 4), and min/max combining of
//!   multiple groups (Fig. 5),
//! * [`AnalysisConfig`] — the four approximation knobs of §3.3 (`P_m`
//!   event dropping, stem filtering, effective-stem selection, supergate
//!   depth `D`) plus the hybrid Monte-Carlo-inside-a-supergate escape
//!   hatch of §4,
//! * [`analyze`] — vectorless statistical static analysis: plain levelized
//!   propagation on independent fanins, supergate *sampling-evaluation*
//!   (cross-product + recursive, §3.2) wherever signals reconverge,
//! * [`dynamic`] — the "dynamic simulation with given input vectors" mode
//!   (§1), with transition-aware min/max selection per gate,
//! * [`validate`] — brute-force joint-delay enumeration used to prove the
//!   exact algorithm exact on small circuits,
//! * [`compare`] — the paper's `M_e + 3σ_e` error metric against the Monte
//!   Carlo baseline.
//!
//! # Quick start
//!
//! ```
//! use pep_celllib::{DelayModel, Timing};
//! use pep_core::{analyze, AnalysisConfig};
//! use pep_netlist::samples;
//!
//! let nl = samples::c17();
//! let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
//! let analysis = analyze(&nl, &timing, &AnalysisConfig::default());
//! let po = nl.primary_outputs()[0];
//! let mean = analysis.mean_time(po);
//! let std = analysis.std_time(po);
//! assert!(mean > 0.0 && std > 0.0);
//! // The whole arrival-time *distribution* is available, not just moments:
//! assert!(analysis.group(po).total_mass() > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod arcs;
mod budget;
pub mod cell_eval;
pub mod compare;
mod config;
pub mod criticality;
pub mod dynamic;
pub mod faults;
mod node_eval;
#[doc(hidden)]
pub mod probe;
mod region;
pub mod validate;

pub use analyzer::{
    analyze, analyze_observed, analyze_with_inputs, analyze_with_inputs_observed, try_analyze,
    try_analyze_cancellable, try_analyze_observed, try_analyze_with_inputs,
    try_analyze_with_inputs_cancellable, try_analyze_with_inputs_observed, AnalysisStats,
    PepAnalysis,
};
pub use arcs::ArcPmfs;
pub use budget::Budget;
pub use config::{AnalysisConfig, CombineMode, HybridMcConfig, StemRanking};
pub use pep_sta::{AnalysisError, BudgetExceeded, CancelState, CancelToken, Cancelled, PepError};
