//! Supergate evaluation by stem conditioning (paper §3.2–§3.3).
//!
//! The evaluation of a supergate output is the paper's
//! *sampling-evaluation*: take one event per stem (in topological stem
//! order — the cross-product over same-level stems and the recursion over
//! dependent stems arise from the same enumeration), re-propagate the
//! supergate interior with the stem fixed to that event, scale by the
//! event's probability, and accumulate at the output. Conditioning on
//! every stem makes the result exact; the approximations (stem filtering,
//! effective-stem selection, depth-limited regions, hybrid Monte Carlo)
//! all reduce how much of that enumeration runs.

use crate::arcs::ArcPmfs;
use crate::budget::{BudgetTracker, CondLimits, Degradation, FallbackReason};
use crate::node_eval::{with_refs, NodeEval};
use crate::{AnalysisConfig, CombineMode, StemRanking};
use pep_dist::{DiscreteDist, DistScratch};
use pep_netlist::supergate::Supergate;
use pep_netlist::{Netlist, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::borrow::Cow;
use std::collections::HashMap;

/// Outcome counters for one supergate evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RegionOutcome {
    /// Stems the heuristics removed before conditioning.
    pub stems_filtered: usize,
    /// Stems actually conditioned on.
    pub stems_conditioned: usize,
    /// Whether the hybrid Monte Carlo path evaluated this supergate.
    pub used_hybrid: bool,
    /// Budget-driven approximations applied to this evaluation, in the
    /// order they were applied (empty — no allocation — on the
    /// unbudgeted path).
    pub degradations: Vec<Degradation>,
    /// Enumeration leaves visited by the conditioning recursion (the
    /// number of stem-value combinations actually evaluated; 0 for the
    /// hybrid and fallback paths). Attached to supergate trace spans.
    pub combinations: u64,
}

/// Per-worker reusable evaluation state: the kernel arena plus the
/// conditioning recursion's mutable enumeration state, all sized once per
/// region and recycled across supergates.
///
/// One `EvalScratch` belongs to one worker thread. Threading it through
/// [`RegionEval`] makes the steady-state conditioning loop allocation-free
/// without changing any operation or f64 accumulation order, so the
/// analyzer's bit-identical-across-thread-counts contract is preserved.
pub(crate) struct EvalScratch {
    /// Kernel temporaries (distribution slabs, float slabs, pair staging).
    pub(crate) dist: DistScratch,
    /// `tag[li]` = first conditioning level whose stem reaches the node.
    tag: Vec<u8>,
    /// Per-node recomputed conditioned groups.
    cur: Vec<DiscreteDist>,
    /// Per-node stem-event override distributions (point events)...
    ov: Vec<DiscreteDist>,
    /// ...active only where `ov_set` is true (split from `ov` so clearing
    /// an override does not drop its slab).
    ov_set: Vec<bool>,
    /// Whether the node's conditioned group currently differs from its
    /// base group (events a dominating side-input absorbs stop affecting
    /// anything, collapsing the recompute cone per enumeration event).
    live: Vec<bool>,
    /// One stem-group buffer per recursion level (the level iterates its
    /// buffer by index while deeper levels use their own slots).
    level_groups: Vec<DiscreteDist>,
    /// Enumeration leaves visited since `begin_region` (reported as
    /// [`RegionOutcome::combinations`]).
    leaves: u64,
}

impl EvalScratch {
    pub(crate) fn new() -> Self {
        EvalScratch {
            dist: DistScratch::new(),
            tag: Vec::new(),
            cur: Vec::new(),
            ov: Vec::new(),
            ov_set: Vec::new(),
            live: Vec::new(),
            level_groups: Vec::new(),
            leaves: 0,
        }
    }

    /// Sizes the state for a region of `n` nodes and `levels` conditioning
    /// stems. Existing per-slot buffers keep their capacity.
    fn begin_region(&mut self, n: usize, levels: usize) {
        if self.cur.len() < n {
            self.cur.resize_with(n, DiscreteDist::empty);
            self.ov.resize_with(n, DiscreteDist::empty);
        }
        if self.level_groups.len() < levels {
            self.level_groups.resize_with(levels, DiscreteDist::empty);
        }
        self.tag.clear();
        self.tag.resize(n, u8::MAX);
        self.ov_set.clear();
        self.ov_set.resize(n, false);
        self.live.clear();
        self.live.resize(n, false);
        self.leaves = 0;
    }
}

/// One supergate's evaluation context: local indexing, base (unconditioned)
/// groups, and the conditioning machinery.
pub(crate) struct RegionEval<'r, E: NodeEval> {
    netlist: &'r Netlist,
    arcs: &'r ArcPmfs,
    eval: &'r E,
    sg: &'r Supergate,
    /// Region nodes: `sg.inputs` then `sg.interior`, both already
    /// topologically ordered.
    nodes: Vec<NodeId>,
    local: HashMap<NodeId, usize>,
    n_inputs: usize,
    output_local: usize,
    /// Per region node, the local indices of its fanins (all fanins of
    /// interior nodes are in-region by well-formedness; inputs have none).
    fanin_locals: Vec<Vec<u32>>,
    /// Unconditioned groups per region node (borrowed from the global
    /// analysis where available, locally propagated otherwise).
    base: Vec<Cow<'r, DiscreteDist>>,
    p_min: f64,
    /// Event-count cap applied to intermediate conditioned groups.
    resolution: Option<usize>,
}

impl<'r, E: NodeEval> RegionEval<'r, E> {
    /// Builds the region and its unconditioned base groups.
    ///
    /// `get(node)` supplies already-computed arrival groups: it must
    /// return `Some` for every supergate input, and *may* return `Some`
    /// for interior nodes (the analyzer passes its global groups, so no
    /// work is repeated). Nodes it returns `None` for — at minimum the
    /// output under evaluation — are propagated locally.
    ///
    /// # Panics
    ///
    /// Panics if `get` returns `None` for a supergate input.
    pub fn new<G>(
        netlist: &'r Netlist,
        arcs: &'r ArcPmfs,
        eval: &'r E,
        sg: &'r Supergate,
        get: G,
        p_min: f64,
    ) -> Self
    where
        G: Fn(NodeId) -> Option<&'r DiscreteDist>,
    {
        let nodes: Vec<NodeId> = sg.inputs.iter().chain(&sg.interior).copied().collect();
        let local: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let output_local = local[&sg.output];
        let fanin_locals: Vec<Vec<u32>> = nodes
            .iter()
            .enumerate()
            .map(|(li, &n)| {
                if li < sg.inputs.len() {
                    Vec::new()
                } else {
                    netlist.fanins(n).iter().map(|f| local[f] as u32).collect()
                }
            })
            .collect();
        let mut region = RegionEval {
            netlist,
            arcs,
            eval,
            sg,
            nodes,
            local,
            n_inputs: sg.inputs.len(),
            output_local,
            fanin_locals,
            base: Vec::new(),
            p_min,
            resolution: None,
        };
        let mut base: Vec<Cow<'r, DiscreteDist>> = Vec::with_capacity(region.nodes.len());
        for (li, &node) in region.nodes.iter().enumerate() {
            let g = if li < region.n_inputs {
                Cow::Borrowed(get(node).expect("supergate input groups must be available"))
            } else {
                match get(node) {
                    Some(g) => Cow::Borrowed(g),
                    None => {
                        Cow::Owned(region.eval_local(node, |f| base[region.local[&f]].as_ref()))
                    }
                }
            };
            base.push(g);
        }
        region.base = base;
        region
    }

    /// Sets the event-count cap for intermediate conditioned groups
    /// (see [`AnalysisConfig::conditioning_resolution`]). A cap of zero
    /// events is meaningless and is clamped to 1 (a single bucket — the
    /// coarsest valid resolution), mirroring the `coarsen` guard in the
    /// conditioning recursion.
    pub fn set_resolution(&mut self, resolution: Option<usize>) {
        self.resolution = resolution.map(|r| r.max(1));
    }

    /// The unconditioned group at the supergate output (what plain
    /// propagation — no reconvergence handling — would produce).
    pub fn base_output(&self) -> &DiscreteDist {
        self.base[self.output_local].as_ref()
    }

    /// Full heuristic evaluation per the configuration: stem filtering,
    /// effective-stem selection, then conditioning (or hybrid MC).
    ///
    /// The stem list is borrowed from the supergate unless a heuristic
    /// actually narrows it, and all conditioning temporaries come from
    /// `scratch`, so the steady-state path performs no heap allocation
    /// beyond the returned output group.
    pub fn evaluate(
        &self,
        config: &AnalysisConfig,
        scratch: &mut EvalScratch,
    ) -> (DiscreteDist, RegionOutcome) {
        self.evaluate_budgeted(config, &BudgetTracker::inert(), scratch)
    }

    /// [`evaluate`](Self::evaluate) under a resource budget: when a
    /// limit in `tracker` trips, the evaluation degrades along the
    /// paper's own knobs (cap/drop stems, coarsen stem events, fall
    /// back to topological propagation) and records each step in
    /// [`RegionOutcome::degradations`]. With an inert tracker the
    /// behavior — and the f64 accumulation order — is identical to the
    /// unbudgeted path.
    pub fn evaluate_budgeted(
        &self,
        config: &AnalysisConfig,
        tracker: &BudgetTracker,
        scratch: &mut EvalScratch,
    ) -> (DiscreteDist, RegionOutcome) {
        let mut outcome = RegionOutcome::default();
        let mut stems: Cow<'_, [NodeId]> = Cow::Borrowed(&self.sg.stems);
        if config.filter_stems {
            let kept = self.filter_stems(&stems, config.mode);
            outcome.stems_filtered += stems.len() - kept.len();
            if kept.len() != stems.len() {
                stems = Cow::Owned(kept);
            }
        }
        if let Some(k) = config.max_effective_stems {
            if stems.len() > k {
                let ranked = self.rank_stems(&stems, config, scratch);
                outcome.stems_filtered += stems.len() - k;
                let mut sel: Vec<NodeId> = ranked.into_iter().take(k).collect();
                // Conditioning order must stay topological. `sg.stems` is
                // sorted by global topological position at extraction, so
                // sorting the selection the same way reproduces the old
                // position-in-`sg.stems` order in O(k log k) instead of
                // O(k · stems).
                sel.sort_by_key(|&s| self.netlist.topo_position(s));
                stems = Cow::Owned(sel);
            }
        }
        if let Some(h) = config.hybrid_mc {
            if stems.len() > h.stem_threshold {
                outcome.used_hybrid = true;
                outcome.stems_conditioned = 0;
                return (self.hybrid_eval(h.runs, h.seed), outcome);
            }
        }
        // Stem cap: the budget's per-supergate limit, and in any case
        // the `u8` level-tag representation's ceiling (which used to be
        // an assert — a hostile/unbounded configuration now degrades
        // instead of panicking).
        let hard_cap = usize::from(u8::MAX) - 1;
        let cap = tracker
            .max_stems()
            .map_or(hard_cap, |c| c.clamp(1, hard_cap));
        if stems.len() > cap {
            let from = stems.len();
            let ranked = self.rank_stems(&stems, config, scratch);
            let mut sel: Vec<NodeId> = ranked.into_iter().take(cap).collect();
            sel.sort_by_key(|&s| self.netlist.topo_position(s));
            outcome.stems_filtered += from - cap;
            outcome
                .degradations
                .push(Degradation::StemCap { from, cap });
            stems = Cow::Owned(sel);
        }
        if let Some(reason) = tracker.stop_reason() {
            outcome
                .degradations
                .push(Degradation::TopologicalFallback { reason });
            return (self.base_output().clone(), outcome);
        }
        let mut coarsen = config.max_conditioning_events;
        if let Some(comb_cap) = tracker.max_combinations() {
            let factor = |s: NodeId, c: Option<usize>| -> u64 {
                let e = self.base[self.local[&s]].support_len().max(1) as u64;
                match c {
                    Some(c) => e.min(c as u64),
                    None => e,
                }
            };
            let estimate_for = |stems: &[NodeId], c: Option<usize>| -> u64 {
                stems
                    .iter()
                    .fold(1u64, |acc, &s| acc.saturating_mul(factor(s, c)))
            };
            let estimate0 = estimate_for(&stems, coarsen);
            if estimate0 > comb_cap {
                let from_coarsen = coarsen;
                // (a) Coarsen the enumerated stem events, halving down
                // to a floor of 4 buckets per stem.
                let mut c = coarsen
                    .unwrap_or_else(|| {
                        stems
                            .iter()
                            .map(|&s| self.base[self.local[&s]].support_len())
                            .max()
                            .unwrap_or(1)
                    })
                    .max(1);
                let mut estimate = estimate_for(&stems, Some(c));
                while estimate > comb_cap && c > 4 {
                    c = (c / 2).max(4);
                    estimate = estimate_for(&stems, Some(c));
                }
                // (b) Drop the least-effective stems (they revert to
                // independent combining).
                let mut dropped: Option<(usize, usize)> = None;
                if estimate > comb_cap && stems.len() > 1 {
                    let from = stems.len();
                    let ranked = self.rank_stems(&stems, config, scratch);
                    let mut keep = ranked.len();
                    while keep > 1 && estimate_for(&ranked[..keep], Some(c)) > comb_cap {
                        keep -= 1;
                    }
                    let mut sel: Vec<NodeId> = ranked.into_iter().take(keep).collect();
                    sel.sort_by_key(|&s| self.netlist.topo_position(s));
                    estimate = estimate_for(&sel, Some(c));
                    outcome.stems_filtered += from - keep;
                    dropped = Some((from, keep));
                    stems = Cow::Owned(sel);
                }
                // (c) Last resort before fallback: coarsen to a single
                // bucket per stem.
                while estimate > comb_cap && c > 1 {
                    c = (c / 2).max(1);
                    estimate = estimate_for(&stems, Some(c));
                }
                if Some(c) != from_coarsen {
                    coarsen = Some(c);
                    outcome.degradations.push(Degradation::Coarsened {
                        from: from_coarsen,
                        to: c,
                        estimate: estimate0,
                        cap: comb_cap,
                    });
                }
                if let Some((from, to)) = dropped {
                    outcome.degradations.push(Degradation::StemsDropped {
                        from,
                        to,
                        estimate: estimate0,
                        cap: comb_cap,
                    });
                }
                if estimate > comb_cap {
                    // A cap of zero combinations: no conditioning fits.
                    outcome.degradations.push(Degradation::TopologicalFallback {
                        reason: FallbackReason::Combinations,
                    });
                    return (self.base_output().clone(), outcome);
                }
            }
        }
        outcome.stems_conditioned = stems.len();
        if stems.is_empty() {
            return (self.base_output().clone(), outcome);
        }
        let mut out = DiscreteDist::empty();
        let limits = CondLimits::for_tracker(tracker);
        self.conditioned_eval_limited(&stems, coarsen, limits.as_ref(), &mut out, scratch);
        outcome.combinations = scratch.leaves;
        if limits.as_ref().is_some_and(|l| l.aborted()) {
            // The partial accumulation is discarded; the unconditioned
            // group is the degradation result.
            out.copy_from(self.base_output());
            outcome.stems_conditioned = 0;
            outcome.combinations = 0;
            outcome.degradations.push(Degradation::TopologicalFallback {
                reason: tracker
                    .stop_reason()
                    .unwrap_or(FallbackReason::Combinations),
            });
        }
        (out, outcome)
    }

    /// Evaluates one region node given a fanin-group lookup.
    fn eval_local<'g, F>(&self, node: NodeId, get: F) -> DiscreteDist
    where
        F: Fn(NodeId) -> &'g DiscreteDist,
    {
        let fanin_groups: Vec<&DiscreteDist> =
            self.netlist.fanins(node).iter().map(|&f| get(f)).collect();
        let mut g = self.eval.eval_node(node, &fanin_groups);
        if self.p_min > 0.0 {
            // Drop, then renormalize: event groups keep unit mass (§2.1's
            // invariant), so the filter compounds as a loss of resolution
            // rather than a loss of probability down deep paths.
            g.truncate_below(self.p_min);
            g.normalize();
        }
        g
    }

    /// The paper's sampling-evaluation, conditioning on `stems`
    /// (topologically ordered). `coarsen` limits each stem group to that
    /// many events (quantile bucketing) before enumeration.
    ///
    /// Allocating convenience wrapper around
    /// [`conditioned_eval_into`](Self::conditioned_eval_into).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn conditioned_eval(&self, stems: &[NodeId], coarsen: Option<usize>) -> DiscreteDist {
        let mut out = DiscreteDist::empty();
        let mut scratch = EvalScratch::new();
        self.conditioned_eval_into(stems, coarsen, &mut out, &mut scratch);
        out
    }

    /// [`conditioned_eval`](Self::conditioned_eval) into a caller-provided
    /// output buffer, drawing every temporary from `scratch`. `out` is
    /// cleared first. Once the scratch is warm (one evaluation of a
    /// same-shaped region), the enumeration performs no heap allocation.
    pub fn conditioned_eval_into(
        &self,
        stems: &[NodeId],
        coarsen: Option<usize>,
        out: &mut DiscreteDist,
        scratch: &mut EvalScratch,
    ) {
        self.conditioned_eval_limited(stems, coarsen, None, out, scratch);
    }

    /// [`conditioned_eval_into`](Self::conditioned_eval_into) under
    /// optional budget limits: the enumeration spends one allowance
    /// unit per leaf and polls the deadline periodically; when `limits`
    /// aborts, the accumulated `out` is partial and the caller must
    /// discard it (see [`CondLimits::aborted`]).
    pub fn conditioned_eval_limited(
        &self,
        stems: &[NodeId],
        coarsen: Option<usize>,
        limits: Option<&CondLimits<'_>>,
        out: &mut DiscreteDist,
        scratch: &mut EvalScratch,
    ) {
        out.clear();
        if stems.is_empty() {
            out.copy_from(self.base_output());
            return;
        }
        assert!(
            stems.len() < usize::from(u8::MAX),
            "too many conditioning stems"
        );
        let n = self.nodes.len();
        scratch.begin_region(n, stems.len());
        // tag[li] = first conditioning level whose stem reaches the node
        // (u8::MAX = unaffected); drives which nodes each enumeration
        // level must re-propagate.
        let tag = &mut scratch.tag;
        for (k, &stem) in stems.iter().enumerate() {
            let si = self.local[&stem];
            if tag[si] == u8::MAX {
                tag[si] = k as u8;
            }
            for li in self.n_inputs..n {
                if tag[li] != u8::MAX {
                    continue;
                }
                if self.fanin_locals[li]
                    .iter()
                    .any(|&fi| tag[fi as usize] != u8::MAX)
                {
                    tag[li] = k as u8;
                }
            }
        }
        self.cond_recurse(stems, scratch, 0, 1.0, coarsen, limits, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn cond_recurse(
        &self,
        stems: &[NodeId],
        scratch: &mut EvalScratch,
        level: usize,
        scale: f64,
        coarsen: Option<usize>,
        limits: Option<&CondLimits<'_>>,
        out: &mut DiscreteDist,
    ) {
        if limits.is_some_and(|l| l.aborted()) {
            return;
        }
        if level == stems.len() {
            if let Some(l) = limits {
                if !l.spend_leaf() {
                    return;
                }
            }
            let k = (stems.len() - 1) as u8;
            scratch.leaves += 1;
            self.propagate_affected(scratch, k, self.output_local);
            let EvalScratch {
                dist,
                tag,
                cur,
                ov,
                ov_set,
                live,
                ..
            } = scratch;
            let result = self.cond_value_at(tag, cur, ov, ov_set, live, self.output_local, k);
            let tok = dist.trace.begin_kernel();
            out.accumulate_scaled(result, scale, dist);
            dist.trace
                .end_kernel(tok, pep_obs::KernelKind::Accumulate, out.support_len());
            return;
        }
        let si = self.local[&stems[level]];
        if level > 0 {
            self.propagate_affected(scratch, (level - 1) as u8, si);
        }
        {
            // The stem's own group under the already-fixed shallower stems,
            // staged (and optionally coarsened) into this level's slot.
            let EvalScratch {
                dist,
                tag,
                cur,
                ov,
                ov_set,
                live,
                level_groups,
                ..
            } = scratch;
            let src = if level > 0 {
                let k = (level - 1) as u8;
                self.cond_value_at(tag, cur, ov, ov_set, live, si, k)
            } else {
                self.base[si].as_ref()
            };
            match coarsen {
                Some(k) => {
                    let tok = dist.trace.begin_kernel();
                    src.coarsen_into(k.max(1), &mut level_groups[level], dist);
                    let events = level_groups[level].support_len();
                    dist.trace
                        .end_kernel(tok, pep_obs::KernelKind::Coarsen, events);
                }
                None => level_groups[level].copy_from(src),
            }
        }
        // Enumerate the level's events by tick so no borrow of the level
        // slot is held across the recursion (deeper levels use their own
        // slots and never touch this one).
        if let (Some(lo), Some(hi)) = {
            let g = &scratch.level_groups[level];
            (g.min_tick(), g.max_tick())
        } {
            for t in lo..=hi {
                let p = scratch.level_groups[level].prob_at(t);
                if p > 0.0 {
                    scratch.ov[si].set_point(t);
                    scratch.ov_set[si] = true;
                    self.cond_recurse(stems, scratch, level + 1, scale * p, coarsen, limits, out);
                }
            }
        }
        scratch.ov_set[si] = false;
    }

    /// Recomputes every non-overridden interior node with `tag <= k`, in
    /// topological order, up to and including `target`. A node none of
    /// whose fanins currently deviate from base is skipped (its value is
    /// its base group), so each enumeration event only pays for the part
    /// of the cone it actually perturbs.
    fn propagate_affected(&self, scratch: &mut EvalScratch, k: u8, target: usize) {
        let EvalScratch {
            dist,
            tag,
            cur,
            ov,
            ov_set,
            live,
            ..
        } = scratch;
        for li in self.n_inputs..=target {
            if tag[li] > k {
                continue;
            }
            if ov_set[li] {
                live[li] = true;
                continue;
            }
            let fanin_live = self.fanin_locals[li].iter().any(|&fi| {
                let fi = fi as usize;
                ov_set[fi] || (tag[fi] <= k && live[fi])
            });
            if !fanin_live {
                live[li] = false;
                continue;
            }
            // Fanins of a region node always precede it topologically, so
            // splitting `cur` at `li` yields the node's output slot and a
            // head that covers every fanin.
            let (cur_head, cur_tail) = cur.split_at_mut(li);
            let slot = &mut cur_tail[0];
            let fanin_locals = &self.fanin_locals[li];
            with_refs(
                fanin_locals.len(),
                |pin| {
                    self.cond_value_at(
                        tag,
                        cur_head,
                        ov,
                        ov_set,
                        live,
                        fanin_locals[pin] as usize,
                        k,
                    )
                },
                |refs| self.eval.eval_node_into(self.nodes[li], refs, slot, dist),
            );
            if self.p_min > 0.0 {
                slot.truncate_below(self.p_min);
                slot.normalize();
            }
            if let Some(r) = self.resolution {
                let tok = dist.trace.begin_kernel();
                let mut tmp = dist.take();
                slot.coarsen_into(r, &mut tmp, dist);
                std::mem::swap(slot, &mut tmp);
                dist.put(tmp);
                dist.trace
                    .end_kernel(tok, pep_obs::KernelKind::Coarsen, slot.support_len());
            }
            // The slot is always freshly written; the live flag gates
            // whether readers see it or fall back to the base group.
            live[li] = *slot != *self.base[li].as_ref();
        }
    }

    /// The group currently in effect at a local node, at enumeration
    /// filter level `k` — expressed over [`EvalScratch`]'s split-out
    /// fields so callers can hold the node's own `cur` slot mutably —
    /// which is exactly why the argument list is this wide.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn cond_value_at<'s>(
        &'s self,
        tag: &[u8],
        cur: &'s [DiscreteDist],
        ov: &'s [DiscreteDist],
        ov_set: &[bool],
        live: &[bool],
        li: usize,
        k: u8,
    ) -> &'s DiscreteDist {
        if ov_set[li] {
            return &ov[li];
        }
        if tag[li] <= k && live[li] {
            &cur[li]
        } else {
            self.base[li].as_ref()
        }
    }

    /// Earliest/latest structural path delay, in ticks, from each region
    /// node to the output (∞-style sentinels where no path exists —
    /// impossible for well-formed regions, but kept defensive).
    fn delays_to_output(&self) -> (Vec<i64>, Vec<i64>) {
        let n = self.nodes.len();
        let mut dmin = vec![i64::MAX; n];
        let mut dmax = vec![i64::MIN; n];
        dmin[self.output_local] = 0;
        dmax[self.output_local] = 0;
        // Walk interior nodes in reverse topological order, relaxing their
        // fanin edges.
        for li in (self.n_inputs..n).rev() {
            if dmin[li] == i64::MAX {
                continue;
            }
            let node = self.nodes[li];
            for (pin, &f) in self.netlist.fanins(node).iter().enumerate() {
                let fi = self.local[&f];
                let (lo, hi) = self.arcs.arc_bounds(node, pin);
                dmin[fi] = dmin[fi].min(lo + dmin[li]);
                dmax[fi] = dmax[fi].max(hi + dmax[li]);
            }
        }
        (dmin, dmax)
    }

    /// The window of output arrival times the events of `stem` can cause.
    fn stem_window(&self, stem: NodeId, dmin: &[i64], dmax: &[i64]) -> Option<(i64, i64)> {
        let li = self.local[&stem];
        let g = self.base[li].as_ref();
        match (g.min_tick(), g.max_tick()) {
            (Some(lo), Some(hi)) if dmin[li] != i64::MAX => Some((lo + dmin[li], hi + dmax[li])),
            _ => None,
        }
    }

    /// The paper's "filtering out unnecessary stems" (§3.3): a stem whose
    /// events arrive "so early that they will never affect the arrival
    /// time at the output" is removed from the sampling-evaluation.
    ///
    /// Soundness: a stem `s` is dropped only when some *rival*
    /// contribution — an input none of whose region paths pass through
    /// `s` — is always at least as late (Latest mode; symmetric for
    /// Earliest) as anything `s` can deliver, so no `s`-branch event ever
    /// defines the output and the branch correlation cannot matter.
    fn filter_stems(&self, stems: &[NodeId], mode: CombineMode) -> Vec<NodeId> {
        if stems.is_empty() {
            return Vec::new();
        }
        let (dmin, dmax) = self.delays_to_output();
        stems
            .iter()
            .copied()
            .filter(|&s| {
                let Some((slo, shi)) = self.stem_window(s, &dmin, &dmax) else {
                    // No events or no path: the stem cannot matter.
                    return false;
                };
                // A stem's branch correlation can only matter if at
                // least two of its interior branch contributions can tie:
                // with pairwise-disjoint branch windows the max always has
                // a fixed winner and independent combining is exact.
                if !self.branches_can_tie(s, &dmin, &dmax) {
                    return false;
                }
                let ancestors = self.region_ancestors(s);
                let mut keep = true;
                for j in 0..self.n_inputs {
                    if ancestors[j] || self.nodes[j] == s || dmin[j] == i64::MAX {
                        continue;
                    }
                    let g = self.base[j].as_ref();
                    match mode {
                        CombineMode::Latest => {
                            if let Some(jlo) = g.min_tick() {
                                if jlo + dmin[j] > shi {
                                    keep = false;
                                    break;
                                }
                            }
                        }
                        CombineMode::Earliest => {
                            if let Some(jhi) = g.max_tick() {
                                if jhi + dmax[j] < slo {
                                    keep = false;
                                    break;
                                }
                            }
                        }
                    }
                }
                keep
            })
            .collect()
    }

    /// Whether two interior fanout branches of `stem` have overlapping
    /// output-arrival windows (the precondition for reconvergent
    /// interaction at the supergate output).
    fn branches_can_tie(&self, stem: NodeId, dmin: &[i64], dmax: &[i64]) -> bool {
        let sl = self.local[&stem];
        let g = self.base[sl].as_ref();
        let (Some(slo), Some(shi)) = (g.min_tick(), g.max_tick()) else {
            return false;
        };
        // One window per interior branch edge (a duplicated pin is two
        // edges, which trivially tie).
        let mut windows: Vec<(i64, i64)> = Vec::new();
        for &b in self.netlist.fanouts(stem) {
            let Some(&bi) = self.local.get(&b) else {
                continue;
            };
            if bi < self.n_inputs || dmin[bi] == i64::MAX {
                continue;
            }
            for (pin, &f) in self.netlist.fanins(b).iter().enumerate() {
                if f != stem {
                    continue;
                }
                let (alo, ahi) = self.arcs.arc_bounds(b, pin);
                windows.push((slo + alo + dmin[bi], shi + ahi + dmax[bi]));
            }
        }
        for (i, &(lo_a, hi_a)) in windows.iter().enumerate() {
            for &(lo_b, hi_b) in &windows[i + 1..] {
                if lo_a <= hi_b && lo_b <= hi_a {
                    return true;
                }
            }
        }
        false
    }

    /// Region nodes (by local index) from which `target` is reachable.
    fn region_ancestors(&self, target: NodeId) -> Vec<bool> {
        let mut reach = vec![false; self.nodes.len()];
        let ti = self.local[&target];
        reach[ti] = true;
        // Walk forward in local (topological) order: a node reaches the
        // target iff one of its region fanouts does; equivalently, walk
        // nodes in order and mark fanins of reached nodes — do it
        // backward over interior nodes.
        for li in (0..=ti).rev() {
            if !reach[li] {
                continue;
            }
            let node = self.nodes[li];
            for f in self.netlist.fanins(node) {
                if let Some(&fi) = self.local.get(f) {
                    reach[fi] = true;
                }
            }
        }
        reach
    }

    /// Ranks stems most-effective-first (§3.3, "choosing effective
    /// stems").
    fn rank_stems(
        &self,
        stems: &[NodeId],
        config: &AnalysisConfig,
        scratch: &mut EvalScratch,
    ) -> Vec<NodeId> {
        let mut scored: Vec<(f64, NodeId)> = match config.stem_ranking {
            StemRanking::Sensitivity => {
                let base_out = self.base_output();
                let events = config.ranking_events.max(1);
                let threads = config.effective_threads().min(stems.len());
                if threads <= 1 {
                    let mut tmp = scratch.dist.take();
                    let scored = stems
                        .iter()
                        .map(|&s| {
                            self.conditioned_eval_into(&[s], Some(events), &mut tmp, scratch);
                            (tmp.l1_distance(base_out), s)
                        })
                        .collect();
                    scratch.dist.put(tmp);
                    scored
                } else {
                    // Each single-stem sampling-evaluation is independent;
                    // fan the candidates out and write scores back by
                    // slot, so the scored order (and thus the stable sort
                    // below) is identical to the sequential pass. Workers
                    // carry their own scratch (the caller's is not Sync).
                    let mut scored: Vec<(f64, NodeId)> = stems.iter().map(|&s| (0.0, s)).collect();
                    let chunk = stems.len().div_ceil(threads);
                    std::thread::scope(|scope| {
                        for (slots, cands) in scored.chunks_mut(chunk).zip(stems.chunks(chunk)) {
                            scope.spawn(move || {
                                let mut scratch = EvalScratch::new();
                                let mut tmp = DiscreteDist::empty();
                                for (slot, &s) in slots.iter_mut().zip(cands) {
                                    self.conditioned_eval_into(
                                        &[s],
                                        Some(events),
                                        &mut tmp,
                                        &mut scratch,
                                    );
                                    *slot = (tmp.l1_distance(base_out), s);
                                }
                            });
                        }
                    });
                    scored
                }
            }
            StemRanking::Window => {
                let (dmin, dmax) = self.delays_to_output();
                let out_lo = self.base_output().min_tick().unwrap_or(i64::MIN);
                let out_hi = self.base_output().max_tick().unwrap_or(i64::MAX);
                stems
                    .iter()
                    .map(|&s| {
                        let score = match self.stem_window(s, &dmin, &dmax) {
                            Some((lo, hi)) => {
                                let overlap = (hi.min(out_hi) - lo.max(out_lo) + 1).max(0) as f64;
                                let branches = self
                                    .netlist
                                    .fanouts(s)
                                    .iter()
                                    .filter(|f| self.local.contains_key(f))
                                    .count();
                                overlap * branches as f64
                            }
                            None => 0.0,
                        };
                        (score, s)
                    })
                    .collect()
            }
        };
        // Highest score first; ties keep topological order (stable sort).
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
        scored.into_iter().map(|(_, s)| s).collect()
    }

    /// The paper's §4 hybrid: Monte Carlo sampling directly from the
    /// probabilistic events at the supergate inputs. Every interior stem's
    /// correlation is captured exactly (one sample per node per run); the
    /// error is pure sampling noise, which shrinks with `s/m` inside a
    /// supergate as the paper argues.
    pub fn hybrid_eval(&self, runs: usize, seed: u64) -> DiscreteDist {
        assert!(runs > 0, "need at least one hybrid run");
        let n = self.nodes.len();
        let mut rng = StdRng::seed_from_u64(seed ^ self.sg.output.index() as u64);
        let mut tally: HashMap<i64, u32> = HashMap::new();
        let mut ticks: Vec<Option<i64>> = vec![None; n];
        let mut input_mass = 1.0;
        for li in 0..self.n_inputs {
            input_mass *= self.base[li].total_mass();
        }
        // Input groups are wide; prebuilt cumulative samplers turn each
        // per-run draw from O(span) into O(log span).
        let samplers: Vec<Option<pep_dist::TickSampler>> = (0..self.n_inputs)
            .map(|li| self.base[li].sampler())
            .collect();
        let mut effective_runs = 0usize;
        let mut fanin_ticks: Vec<Option<i64>> = Vec::new();
        for _ in 0..runs {
            for (tick, sampler) in ticks.iter_mut().zip(&samplers) {
                *tick = sampler.as_ref().map(|s| s.sample(&mut rng));
            }
            for li in self.n_inputs..n {
                let node = self.nodes[li];
                fanin_ticks.clear();
                fanin_ticks.extend(
                    self.netlist
                        .fanins(node)
                        .iter()
                        .map(|f| ticks[self.local[f]]),
                );
                ticks[li] = self.eval.sample_node(node, &fanin_ticks, &mut rng);
            }
            if let Some(t) = ticks[self.output_local] {
                *tally.entry(t).or_insert(0) += 1;
                effective_runs += 1;
            }
        }
        if effective_runs == 0 {
            return DiscreteDist::empty();
        }
        let scale = input_mass / effective_runs as f64;
        DiscreteDist::from_pairs(tally.into_iter().map(|(t, c)| (t, c as f64 * scale)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_eval::StaticEval;
    use crate::CombineMode;
    use pep_celllib::Timing;
    use pep_dist::TimeStep;
    use pep_netlist::cone::SupportSets;
    use pep_netlist::{supergate, GateKind, NetlistBuilder};

    /// A diamond on stem `a`: y = AND(BUF(a), BUF(a)); with unit delays
    /// the two AND inputs are *identical*, so max(y) = a + 2 exactly —
    /// while independent combining squares the CDF and is wrong.
    fn diamond() -> Netlist {
        let mut b = NetlistBuilder::new("diamond");
        b.input("a").unwrap();
        b.gate("u", GateKind::Buf, &["a"]).unwrap();
        b.gate("v", GateKind::Buf, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["u", "v"]).unwrap();
        b.output("y").unwrap();
        b.build().unwrap()
    }

    fn setup(nl: &Netlist) -> (ArcPmfs, SupportSets, Supergate) {
        let t = Timing::uniform(nl, 1.0);
        let arcs = ArcPmfs::discretize_all(nl, &t, TimeStep::new(1.0).unwrap());
        let supports = SupportSets::compute(nl);
        let y = nl.node_id("y").unwrap();
        let sg = supergate::extract(nl, &supports, y, None);
        (arcs, supports, sg)
    }

    #[test]
    fn conditioning_corrects_diamond() {
        let nl = diamond();
        let (arcs, _supports, sg) = setup(&nl);
        let eval = StaticEval {
            arcs: &arcs,
            mode: CombineMode::Latest,
        };
        // Stem group: arrival 0 or 2, equally likely.
        let a_group = DiscreteDist::from_ratios([(0, 1), (2, 1)]);
        let a = nl.node_id("a").unwrap();
        let region = RegionEval::new(
            &nl,
            &arcs,
            &eval,
            &sg,
            |n| (n == a).then_some(&a_group),
            0.0,
        );

        // Naive (base) propagation treats the two branches as
        // independent: P(max = t+2) = squared CDF increments — wrong.
        let naive = region.base_output();
        assert!(
            (naive.prob_at(2) - 0.25).abs() < 1e-12,
            "naive squares the CDF"
        );

        // Conditioning on the stem restores the exact answer:
        // y = a + 2 with a's own distribution.
        let exact = region.conditioned_eval(&sg.stems, None);
        assert!((exact.prob_at(2) - 0.5).abs() < 1e-12);
        assert!((exact.prob_at(4) - 0.5).abs() < 1e-12);
        assert!((exact.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_with_default_config_conditions_single_stem() {
        let nl = diamond();
        let (arcs, _s, sg) = setup(&nl);
        let eval = StaticEval {
            arcs: &arcs,
            mode: CombineMode::Latest,
        };
        let a_group = DiscreteDist::from_ratios([(0, 1), (2, 1)]);
        let a = nl.node_id("a").unwrap();
        let region = RegionEval::new(
            &nl,
            &arcs,
            &eval,
            &sg,
            |n| (n == a).then_some(&a_group),
            0.0,
        );
        let (g, outcome) = region.evaluate(
            &AnalysisConfig {
                min_event_prob: 0.0,
                ..AnalysisConfig::default()
            },
            &mut EvalScratch::new(),
        );
        assert_eq!(outcome.stems_conditioned, 1);
        assert!(!outcome.used_hybrid);
        assert!((g.prob_at(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hybrid_matches_conditioning_on_diamond() {
        let nl = diamond();
        let (arcs, _s, sg) = setup(&nl);
        let eval = StaticEval {
            arcs: &arcs,
            mode: CombineMode::Latest,
        };
        let a_group = DiscreteDist::from_ratios([(0, 1), (2, 1)]);
        let a = nl.node_id("a").unwrap();
        let region = RegionEval::new(
            &nl,
            &arcs,
            &eval,
            &sg,
            |n| (n == a).then_some(&a_group),
            0.0,
        );
        let exact = region.conditioned_eval(&sg.stems, None);
        let mc = region.hybrid_eval(20_000, 7);
        assert!(
            exact.l1_distance(&mc) < 0.03,
            "hybrid MC within sampling noise of exact: {}",
            exact.l1_distance(&mc)
        );
    }

    #[test]
    fn zero_resolution_clamps_to_one_bucket() {
        // Regression: `set_resolution(Some(0))` used to panic inside
        // `propagate_affected` (`coarsened(0)`); it now behaves as the
        // coarsest valid setting.
        let nl = diamond();
        let (arcs, _s, sg) = setup(&nl);
        let eval = StaticEval {
            arcs: &arcs,
            mode: CombineMode::Latest,
        };
        let a_group = DiscreteDist::from_ratios([(0, 1), (2, 1)]);
        let a = nl.node_id("a").unwrap();
        let mut region = RegionEval::new(
            &nl,
            &arcs,
            &eval,
            &sg,
            |n| (n == a).then_some(&a_group),
            0.0,
        );
        region.set_resolution(Some(0));
        let zero = region.conditioned_eval(&sg.stems, None);
        region.set_resolution(Some(1));
        let one = region.conditioned_eval(&sg.stems, None);
        assert_eq!(zero, one);
        assert!((zero.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filter_keeps_single_stem() {
        let nl = diamond();
        let (arcs, _s, sg) = setup(&nl);
        let eval = StaticEval {
            arcs: &arcs,
            mode: CombineMode::Latest,
        };
        let a_group = DiscreteDist::point(0);
        let a = nl.node_id("a").unwrap();
        let region = RegionEval::new(
            &nl,
            &arcs,
            &eval,
            &sg,
            |n| (n == a).then_some(&a_group),
            0.0,
        );
        assert_eq!(
            region.filter_stems(&sg.stems, CombineMode::Latest),
            sg.stems
        );
    }
}
