//! Statistical criticality — performance-sensitivity applications of the
//! analyzer (the paper's conclusion: "performance sensitivity analysis
//! and target selection for delay fault testing").
//!
//! Everything here consumes the full arrival-time distributions a
//! [`PepAnalysis`] produces, which is precisely what point-valued STA
//! cannot offer: criticality becomes a probability, not a binary label.

use crate::{cell_eval, PepAnalysis};
use pep_celllib::Timing;
use pep_netlist::{GateKind, Netlist, NodeId};

/// Per-output probability of defining the circuit's latest arrival.
///
/// Computed from the output event groups under the analyzer's
/// independence treatment: output `o` is critical when its arrival
/// exceeds the max of the others, so
/// `P(o critical) = Σ_t p_o(t) · Π_{o'≠o} F_{o'}(t⁻·…)` — evaluated
/// exactly on the discrete groups (ties are split evenly across the tied
/// outputs, so the probabilities sum to one).
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, Timing};
/// use pep_core::{analyze, criticality, AnalysisConfig};
/// use pep_netlist::samples;
///
/// let nl = samples::c17();
/// let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
/// let analysis = analyze(&nl, &timing, &AnalysisConfig::default());
/// let crit = criticality::output_criticality(&nl, &analysis);
/// let total: f64 = crit.iter().map(|&(_, p)| p).sum();
/// assert!((total - 1.0).abs() < 1e-6);
/// ```
pub fn output_criticality(netlist: &Netlist, analysis: &PepAnalysis) -> Vec<(NodeId, f64)> {
    let outputs = netlist.primary_outputs();
    let mut result = Vec::with_capacity(outputs.len());
    for (i, &po) in outputs.iter().enumerate() {
        let g = analysis.group(po).normalized();
        if g.is_empty() {
            result.push((po, 0.0));
            continue;
        }
        let mut p_crit = 0.0;
        for (t, p) in g.iter() {
            // Probability that every other output arrives no later,
            // splitting exact ties evenly among the tied outputs.
            let mut p_others_leq = p;
            let mut tie_weight = 1.0;
            for (j, &other) in outputs.iter().enumerate() {
                if j == i {
                    continue;
                }
                let og = analysis.group(other).normalized();
                if og.is_empty() {
                    continue;
                }
                let mass = og.total_mass();
                let leq = og.cdf_at(t) / mass;
                let tie = og.prob_at(t) / mass;
                p_others_leq *= leq;
                // Expected share under an even split of ties: approximate
                // by halving each pairwise tie's weight.
                if tie > 0.0 && leq > 0.0 {
                    tie_weight *= 1.0 - 0.5 * tie / leq;
                }
            }
            p_crit += p_others_leq * tie_weight;
        }
        result.push((po, p_crit));
    }
    // The independence treatment plus tie-splitting is not exactly
    // measure-preserving; renormalize so the shares read as a profile.
    let total: f64 = result.iter().map(|&(_, p)| p).sum();
    if total > 0.0 {
        for (_, p) in &mut result {
            *p /= total;
        }
    }
    result
}

/// Per-node probability that an extra delay of `fault_time` at the node
/// makes some output violate `deadline` (both in physical time units) —
/// the ranking used for delay-fault test-target selection.
///
/// For node `n` with arrival distribution `A_n` and (mean) longest
/// residual path `r_n` to any output, the violation probability is
/// `P(A_n + δ + r_n > T)`, read directly off the node's event group.
///
/// # Panics
///
/// Panics if `deadline` or `fault_time` is not finite.
pub fn violation_probabilities(
    netlist: &Netlist,
    timing: &Timing,
    analysis: &PepAnalysis,
    deadline: f64,
    fault_time: f64,
) -> Vec<(NodeId, f64)> {
    assert!(
        deadline.is_finite() && fault_time.is_finite(),
        "deadline and fault size must be finite"
    );
    let step = analysis.step();
    let residual = mean_residual_ticks(netlist, timing, step);
    let deadline_tick = step.ticks_of(deadline);
    let fault_ticks = step.ticks_of(fault_time);
    let mut scored: Vec<(NodeId, f64)> = netlist
        .node_ids()
        .filter(|&n| netlist.kind(n) != GateKind::Input)
        .map(|n| {
            let g = analysis.group(n);
            if g.is_empty() {
                return (n, 0.0);
            }
            let cut = deadline_tick - fault_ticks - residual[n.index()];
            let p = 1.0 - g.cdf_at(cut) / g.total_mass();
            (n, p.clamp(0.0, 1.0))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
    scored
}

/// The latest arrival distribution over a *set* of nodes (e.g. a timing
/// group of outputs), max-combined under independence.
pub fn latest_of<'a, I>(analysis: &PepAnalysis, nodes: I) -> pep_dist::DiscreteDist
where
    I: IntoIterator<Item = &'a NodeId>,
{
    cell_eval::combine_latest(nodes.into_iter().map(|&n| analysis.group(n)))
}

/// Mean longest residual path (in ticks) from every node to any primary
/// output.
fn mean_residual_ticks(netlist: &Netlist, timing: &Timing, step: pep_dist::TimeStep) -> Vec<i64> {
    let mut residual = vec![0i64; netlist.node_count()];
    for &id in netlist.topo_order().iter().rev() {
        for (pin, &f) in netlist.fanins(id).iter().enumerate() {
            let through = step.ticks_of(timing.arc_mean(id, pin)) + residual[id.index()];
            if through > residual[f.index()] {
                residual[f.index()] = through;
            }
        }
    }
    residual
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use pep_celllib::DelayModel;
    use pep_netlist::{samples, GateKind, NetlistBuilder};

    #[test]
    fn output_criticality_sums_to_one() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let crit = output_criticality(&nl, &a);
        assert_eq!(crit.len(), 2);
        let total: f64 = crit.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for &(_, p) in &crit {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn dominant_output_gets_the_criticality() {
        // Two outputs: one a long chain, one a single gate. The chain
        // should be critical with probability ~1.
        let mut b = NetlistBuilder::new("dom");
        b.input("a").unwrap();
        b.gate("fast", GateKind::Not, &["a"]).unwrap();
        let mut prev = "a".to_owned();
        for i in 0..6 {
            let name = format!("s{i}");
            b.gate(&name, GateKind::Buf, &[&prev]).unwrap();
            prev = name;
        }
        b.output("fast").unwrap();
        b.output(&prev).unwrap();
        let nl = b.build().unwrap();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let crit = output_criticality(&nl, &a);
        let slow = nl.node_id("s5").unwrap();
        let &(_, p_slow) = crit
            .iter()
            .find(|&&(n, _)| n == slow)
            .expect("slow output present");
        assert!(p_slow > 0.99, "deep chain dominates: {p_slow}");
    }

    #[test]
    fn violation_probability_monotone_in_fault_size() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let deadline = a
            .quantile_time(nl.primary_outputs()[0], 0.999)
            .expect("non-empty")
            .max(
                a.quantile_time(nl.primary_outputs()[1], 0.999)
                    .expect("non-empty"),
            );
        let small = violation_probabilities(&nl, &t, &a, deadline, 0.5);
        let large = violation_probabilities(&nl, &t, &a, deadline, 5.0);
        let lookup = |v: &[(pep_netlist::NodeId, f64)], n| {
            v.iter().find(|&&(m, _)| m == n).expect("present").1
        };
        for id in nl.node_ids() {
            if nl.kind(id) == GateKind::Input {
                continue;
            }
            assert!(
                lookup(&large, id) + 1e-12 >= lookup(&small, id),
                "bigger faults can only violate more at {}",
                nl.node_name(id)
            );
        }
        // Results come back sorted most-critical-first.
        for w in small.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn latest_of_dominates_members() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let a = analyze(&nl, &t, &AnalysisConfig::default());
        let combined = latest_of(&a, nl.primary_outputs());
        for &po in nl.primary_outputs() {
            assert!(combined.mean_ticks() + 1e-9 >= a.group(po).mean_ticks());
        }
    }
}
