//! Signal arrival-time evaluation for a single cell (paper §2).
//!
//! These are the three primitive operations the whole analyzer is built
//! from, in the paper's vocabulary:
//!
//! * [`propagate_event`] — a single probabilistic event through a cell
//!   (Fig. 3): the cell-delay distribution shifted by the event time and
//!   scaled by its probability,
//! * [`propagate_group`] — an event group through a cell (Fig. 4):
//!   *shift with scaling* for every event, then *group* — i.e.
//!   convolution,
//! * [`combine_latest`] / [`combine_earliest`] — multiple event groups at
//!   a cell's output (Fig. 5): the statistical max/min over independent
//!   groups, where "the dominating events define the final transition".

use crate::CombineMode;
use pep_dist::{DiscreteDist, DistScratch};

/// Propagates a single probabilistic event `⟨tick, prob⟩` through a cell
/// with the given discretized delay (paper Fig. 3).
///
/// The output group is the cell delay shifted by the event's arrival time;
/// for a deterministic event (`prob = 1`) the output probabilities equal
/// the delay distribution's, exactly as the figure shows.
///
/// # Example
///
/// ```
/// use pep_core::cell_eval::propagate_event;
/// use pep_dist::DiscreteDist;
///
/// // Fig. 3: a deterministic event at t, cell delay {1:.1, 2:.3, 3:.4, 4:.2}.
/// let delay = DiscreteDist::from_pairs([(1, 0.1), (2, 0.3), (3, 0.4), (4, 0.2)]);
/// let out = propagate_event(10, 1.0, &delay);
/// assert!((out.prob_at(12) - 0.3).abs() < 1e-12);
/// assert_eq!(out.min_tick(), Some(11));
/// ```
pub fn propagate_event(tick: i64, prob: f64, cell_delay: &DiscreteDist) -> DiscreteDist {
    cell_delay.shifted(tick).scaled(prob)
}

/// Propagates an event group through a cell (paper Fig. 4): *shift with
/// scaling* applied per input event, then the *group* operation merging
/// events at equal arrival times.
///
/// Mathematically this is the convolution of the arrival-time and
/// cell-delay distributions.
///
/// # Example
///
/// ```
/// use pep_core::cell_eval::{propagate_event, propagate_group};
/// use pep_dist::DiscreteDist;
///
/// let group = DiscreteDist::from_ratios([(0, 1), (2, 1)]);
/// let delay = DiscreteDist::from_ratios([(1, 1), (2, 2), (3, 1)]);
/// let out = propagate_group(&group, &delay);
/// // Same result as per-event shift-with-scaling plus grouping:
/// let mut manual = propagate_event(0, 0.5, &delay);
/// manual.accumulate(&propagate_event(2, 0.5, &delay));
/// assert!(out.l1_distance(&manual) < 1e-12);
/// ```
pub fn propagate_group(group: &DiscreteDist, cell_delay: &DiscreteDist) -> DiscreteDist {
    group.convolve(cell_delay)
}

/// Combines per-input output groups into the final group when the *latest*
/// event dominates (e.g. a rising AND output): the statistical maximum.
///
/// Empty groups (signals carrying no events) are skipped; combining no
/// groups yields the empty group.
pub fn combine_latest<'a, I>(groups: I) -> DiscreteDist
where
    I: IntoIterator<Item = &'a DiscreteDist>,
{
    combine(groups, CombineMode::Latest)
}

/// Combines per-input output groups when the *earliest* event dominates
/// (the paper's falling-AND example, Fig. 5): the statistical minimum.
pub fn combine_earliest<'a, I>(groups: I) -> DiscreteDist
where
    I: IntoIterator<Item = &'a DiscreteDist>,
{
    combine(groups, CombineMode::Earliest)
}

/// Mode-parameterized combining.
pub fn combine<'a, I>(groups: I, mode: CombineMode) -> DiscreteDist
where
    I: IntoIterator<Item = &'a DiscreteDist>,
{
    let mut acc: Option<DiscreteDist> = None;
    for g in groups {
        if g.is_empty() {
            continue;
        }
        acc = Some(match acc {
            None => g.clone(),
            Some(a) => match mode {
                CombineMode::Latest => a.max(g),
                CombineMode::Earliest => a.min(g),
            },
        });
    }
    acc.unwrap_or_default()
}

/// Allocation-free mode-parameterized combining into a caller-provided
/// buffer: the k-ary statistical max walks every fanin CDF in one pass;
/// the min folds pairwise through two arena slabs. Both skip empty
/// groups and are bit-identical to [`combine`]'s pairwise fold.
pub fn combine_into(
    groups: &[&DiscreteDist],
    mode: CombineMode,
    out: &mut DiscreteDist,
    scratch: &mut DistScratch,
) {
    let tok = scratch.trace.begin_kernel();
    let kind = match mode {
        CombineMode::Latest => {
            DiscreteDist::max_k_into(groups, out, scratch);
            pep_obs::KernelKind::Max
        }
        CombineMode::Earliest => {
            DiscreteDist::min_k_into(groups, out, scratch);
            pep_obs::KernelKind::Min
        }
    };
    scratch.trace.end_kernel(tok, kind, out.support_len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    /// Paper Fig. 3: a single (deterministic) falling event at time t
    /// through an AND gate whose delay has four discrete points. The
    /// output events carry the same probabilities as the delay
    /// distribution, shifted by t.
    #[test]
    fn fig3_single_event() {
        let delay = DiscreteDist::from_ratios([(1, 1), (2, 3), (3, 3), (4, 1)]);
        let out = propagate_event(7, 1.0, &delay);
        assert!(close(out.prob_at(8), 1.0 / 8.0));
        assert!(close(out.prob_at(9), 3.0 / 8.0));
        assert!(close(out.prob_at(10), 3.0 / 8.0));
        assert!(close(out.prob_at(11), 1.0 / 8.0));
        assert!(close(out.total_mass(), 1.0));
    }

    /// Paper Fig. 4: an event group of two events through a cell with a
    /// four-point delay: shift-with-scaling gives 2 × 4 = 8 events,
    /// grouping merges same-time events down to 7 when the shifted copies
    /// overlap in one slot.
    #[test]
    fn fig4_group_propagation() {
        // Two events at 0 and 3 (probabilities ½ each); delay over 4
        // consecutive ticks 1..=4.
        let group = DiscreteDist::from_ratios([(0, 1), (3, 1)]);
        let delay = DiscreteDist::from_ratios([(1, 1), (2, 1), (3, 1), (4, 1)]);
        let out = propagate_group(&group, &delay);
        // Support 1..=7: 4 + 4 shifted events with exactly one overlap at 4.
        assert_eq!(out.support_len(), 7);
        assert!(close(out.prob_at(4), 2.0 / 8.0), "overlapping slot groups");
        assert!(close(out.prob_at(1), 1.0 / 8.0));
        assert!(close(out.total_mass(), 1.0));
    }

    /// Paper Fig. 5: two event groups at an AND gate whose output falls —
    /// the earliest event dominates, so groups combine with the minimum
    /// operation; each surviving event's probability is the product-sum
    /// over the dominating pairs.
    #[test]
    fn fig5_min_combine() {
        // Lower group has an event at t=1 that dominates everything in the
        // upper group (earliest arrival).
        let upper = DiscreteDist::from_ratios([(2, 2), (3, 1), (4, 1)]);
        let lower = DiscreteDist::from_ratios([(1, 1), (3, 2), (4, 1)]);
        let out = combine_earliest([&upper, &lower]);
        // P(min = 1) = P(lower = 1) = 1/4 — dominates all upper events.
        assert!(close(out.prob_at(1), 0.25));
        // P(min = 2) = P(upper = 2) * P(lower > 2) = 1/2 * 3/4.
        assert!(close(out.prob_at(2), 0.5 * 0.75));
        // P(min = 3): upper=3,lower>3 + lower=3,upper>3 + both=3.
        assert!(close(out.prob_at(3), 0.25 * 0.25 + 0.5 * 0.25 + 0.25 * 0.5));
        // P(min = 4): both must be 4.
        assert!(close(out.prob_at(4), 0.25 * 0.25));
        assert!(close(out.total_mass(), 1.0));
    }

    #[test]
    fn combine_latest_is_max() {
        let a = DiscreteDist::from_ratios([(1, 1), (5, 1)]);
        let b = DiscreteDist::from_ratios([(3, 1)]);
        let out = combine_latest([&a, &b]);
        assert!(close(out.prob_at(3), 0.5));
        assert!(close(out.prob_at(5), 0.5));
    }

    #[test]
    fn combine_skips_empty_groups() {
        let a = DiscreteDist::point(4);
        let e = DiscreteDist::empty();
        assert_eq!(combine_latest([&e, &a, &e]), a);
        assert!(combine_latest(std::iter::empty::<&DiscreteDist>()).is_empty());
    }

    #[test]
    fn combine_many_groups_associates() {
        let gs = [
            DiscreteDist::from_ratios([(0, 1), (2, 1)]),
            DiscreteDist::from_ratios([(1, 1), (3, 1)]),
            DiscreteDist::from_ratios([(2, 1), (4, 1)]),
        ];
        let left = combine_latest(gs.iter());
        let right = gs[0].max(&gs[1].max(&gs[2]));
        assert!(left.l1_distance(&right) < 1e-12);
    }
}
