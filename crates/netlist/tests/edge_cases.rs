//! Edge-case tests of the netlist public API: parser corner cases,
//! builder validation, generators at their smallest sizes, and supergate
//! extraction on degenerate structures.

use pep_netlist::cone::SupportSets;
use pep_netlist::generate::{array_multiplier, comb_tree, ripple_carry_adder};
use pep_netlist::supergate::{extract, SupergateExtractor};
use pep_netlist::{parse_bench, samples, to_bench, GateKind, NetlistBuilder, NetlistError};

#[test]
fn parser_rejects_duplicate_declarations() {
    let err = parse_bench("d", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n").unwrap_err();
    assert!(err.to_string().contains('a'));
    let err = parse_bench("d", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n").unwrap_err();
    assert!(err.to_string().contains('y'), "{err}");
}

#[test]
fn parser_accepts_output_of_an_input() {
    // Feed-through: an input that is directly an output.
    let nl = parse_bench("ft", "INPUT(a)\nOUTPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
    assert!(nl
        .primary_outputs()
        .contains(&nl.node_id("a").expect("declared")));
}

#[test]
fn parser_accepts_single_input_and() {
    // Some .bench files contain 1-input AND/OR; they act as buffers.
    let nl = parse_bench("s", "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n").unwrap();
    let y = nl.node_id("y").unwrap();
    assert_eq!(nl.kind(y), GateKind::And);
    assert_eq!(nl.fanins(y).len(), 1);
    assert!(nl.eval(&[true])[y.index()]);
}

#[test]
fn parser_handles_dff_forward_reference() {
    // The flop's data input is defined after the DFF line.
    let nl = parse_bench(
        "seq",
        "INPUT(a)\nOUTPUT(o)\nq = DFF(d)\no = NOT(q)\nd = AND(a, q)\n",
    )
    .unwrap();
    assert_eq!(nl.primary_inputs().len(), 2, "a plus pseudo-input q");
    assert!(nl
        .primary_outputs()
        .contains(&nl.node_id("d").expect("pseudo-output d")));
}

#[test]
fn parser_tolerates_crlf_and_tabs() {
    let nl = parse_bench("w", "INPUT(a)\r\nOUTPUT(y)\r\n\ty = NOT( a )\r\n").unwrap();
    assert_eq!(nl.gate_count(), 1);
}

#[test]
fn writer_escapes_nothing_but_round_trips_odd_names() {
    let mut b = NetlistBuilder::new("odd");
    b.input("sig.with.dots").unwrap();
    b.gate("out[3]", GateKind::Not, &["sig.with.dots"]).unwrap();
    b.output("out[3]").unwrap();
    let nl = b.build().unwrap();
    let back = parse_bench("odd", &to_bench(&nl)).unwrap();
    assert!(back.node_id("out[3]").is_some());
}

#[test]
#[should_panic(expected = "no logic function")]
fn evaluating_input_kind_panics() {
    GateKind::Input.eval(&[]);
}

#[test]
fn one_bit_adder_and_multiplier() {
    let add = ripple_carry_adder(1);
    // inputs: a0, b0, cin.
    let vals = add.eval(&[true, true, true]);
    let sum = add.node_id("sum0").unwrap();
    let cout = add.node_id("c0").unwrap();
    assert!(vals[sum.index()], "1+1+1 = 0b11");
    assert!(vals[cout.index()]);

    let mul = array_multiplier(1);
    let vals = mul.eval(&[true, true]);
    let p0 = mul.node_id("p0").unwrap();
    assert!(vals[p0.index()], "1*1 = 1");
}

#[test]
fn two_leaf_tree_is_one_gate() {
    let nl = comb_tree(GateKind::Xor, 2);
    assert_eq!(nl.gate_count(), 1);
    assert_eq!(nl.max_level(), 1);
}

#[test]
fn extract_on_non_reconvergent_gate_is_trivial() {
    // A plain AND of two independent inputs: the "supergate" is just the
    // gate itself with no stems.
    let mut b = NetlistBuilder::new("plain");
    b.input("a").unwrap();
    b.input("b").unwrap();
    b.gate("y", GateKind::And, &["a", "b"]).unwrap();
    b.output("y").unwrap();
    let nl = b.build().unwrap();
    let supports = SupportSets::compute(&nl);
    let y = nl.node_id("y").unwrap();
    assert!(!supports.is_reconvergent(&nl, y));
    let sg = extract(&nl, &supports, y, None);
    assert_eq!(sg.interior, vec![y]);
    assert_eq!(sg.inputs.len(), 2);
    assert!(sg.stems.is_empty());
    assert!(!sg.truncated);
}

#[test]
fn depth_one_supergates_never_expand() {
    let nl = samples::fig6();
    let supports = SupportSets::compute(&nl);
    let mut ex = SupergateExtractor::new(&nl, &supports, Some(1));
    let sg1 = nl.node_id("sg1").unwrap();
    let sg = ex.extract(sg1);
    assert_eq!(sg.interior, vec![sg1], "D=1 keeps only the output");
    assert!(sg.truncated, "fig6's sg1 inputs stay correlated at D=1");
}

#[test]
fn stems_list_matches_is_stem() {
    let nl = samples::c17();
    let stems = nl.stems();
    for id in nl.node_ids() {
        assert_eq!(stems.contains(&id), nl.is_stem(id));
    }
}

#[test]
fn support_of_input_is_self_iff_stem() {
    let nl = samples::c17();
    let s = SupportSets::compute(&nl);
    for &pi in nl.primary_inputs() {
        let sup = s.support(pi);
        if nl.is_stem(pi) {
            assert_eq!(sup.len(), 1);
            assert!(sup.contains(s.stem_ordinal(pi).expect("is a stem")));
        } else {
            assert!(sup.is_empty());
        }
    }
}

#[test]
fn builder_error_display_messages() {
    // Error Display strings are meaningful (C-GOOD-ERR).
    let e = NetlistError::DuplicateName { name: "x".into() };
    assert!(e.to_string().contains("declared more than once"));
    let e = NetlistError::Cycle {
        through: "loop".into(),
    };
    assert!(e.to_string().contains("cycle"));
    let e = NetlistError::Parse {
        line: 3,
        col: 0,
        message: "boom".into(),
    };
    assert!(e.to_string().contains("line 3"));
    let e = NetlistError::Parse {
        line: 3,
        col: 7,
        message: "boom".into(),
    };
    assert!(e.to_string().contains("line 3, column 7"));
}
