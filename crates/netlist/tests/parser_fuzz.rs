//! Property-based fuzz of the `.bench` parser on corrupted sources.
//!
//! Every corruption of a valid source — truncation, byte noise,
//! duplicated definitions, injected cycles, undefined fanins, huge
//! identifiers — must come back as a typed [`NetlistError`] (or still
//! parse, for benign corruptions). A panic anywhere in the parser
//! fails the property.

use pep_netlist::generate::{random_circuit, RandomCircuitSpec};
use pep_netlist::{parse_bench, to_bench, NetlistError};
use proptest::prelude::*;

/// A valid `.bench` source from the circuit generator (ASCII only, so
/// byte-level corruption keeps the string valid UTF-8).
fn arb_source() -> impl Strategy<Value = String> {
    (2usize..10, 8usize..60, 2usize..6, any::<u64>()).prop_map(|(inputs, gates, depth, seed)| {
        let nl = random_circuit(&RandomCircuitSpec {
            name: "fuzz".to_owned(),
            inputs,
            gates,
            depth: depth.min(gates),
            max_fanin: 3,
            level_reach: 2,
            window: 0.3,
            inverter_fraction: 0.4,
            seed,
        });
        to_bench(&nl)
    })
}

/// Parses and, on failure, checks the error is well-formed: line/column
/// context inside the source, non-empty messages.
fn parse_and_audit(source: &str) -> Result<(), NetlistError> {
    match parse_bench("fuzz", source) {
        Ok(_) => Ok(()),
        Err(e) => {
            let lines = source.lines().count().max(1);
            match &e {
                NetlistError::Parse { line, message, .. } => {
                    assert!((1..=lines).contains(line), "line {line} of {lines}: {e}");
                    assert!(!message.is_empty());
                }
                NetlistError::UnsupportedGate { line, function } => {
                    assert!((1..=lines).contains(line), "line {line} of {lines}: {e}");
                    assert!(!function.is_empty());
                }
                NetlistError::DuplicateName { name }
                | NetlistError::UnknownSignal { name }
                | NetlistError::Cycle { through: name }
                | NetlistError::BadArity { name, .. } => assert!(!name.is_empty()),
                NetlistError::NoOutputs | NetlistError::TooManyNodes => {}
            }
            Err(e)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_sources_never_panic(src in arb_source(), cut in 0usize..4096) {
        // Generator output is ASCII, so any byte offset is a char
        // boundary.
        let cut = cut.min(src.len());
        let _ = parse_and_audit(&src[..cut]);
    }

    #[test]
    fn byte_noise_never_panics(
        src in arb_source(),
        edits in prop::collection::vec((0usize..4096, 0u8..0x80), 1..12),
    ) {
        let mut bytes = src.into_bytes();
        for (pos, b) in edits {
            let len = bytes.len();
            if len == 0 { break; }
            bytes[pos % len] = b;
        }
        let noisy = String::from_utf8(bytes).expect("ASCII edits keep UTF-8");
        let _ = parse_and_audit(&noisy);
    }

    #[test]
    fn truncated_lines_never_panic(src in arb_source(), line in 0usize..80, keep in 0usize..12) {
        // Cut one line short (e.g. `w = NAND(a,` …) — the classic
        // half-written-file corruption.
        let mut lines: Vec<&str> = src.lines().collect();
        let n = lines.len();
        let i = line % n;
        let trunc = &lines[i][..keep.min(lines[i].len())];
        lines[i] = trunc;
        let _ = parse_and_audit(&lines.join("\n"));
    }

    #[test]
    fn duplicated_definitions_are_typed_errors(src in arb_source(), pick in 0usize..1024) {
        // Re-append an existing gate-definition line verbatim.
        let defs: Vec<&str> = src.lines().filter(|l| l.contains('=')).collect();
        prop_assume!(!defs.is_empty());
        let dup = defs[pick % defs.len()];
        let corrupted = format!("{src}\n{dup}\n");
        let err = parse_and_audit(&corrupted).expect_err("duplicate definition must error");
        // The parser reports builder failures with line context.
        let typed = matches!(err, NetlistError::DuplicateName { .. })
            || matches!(&err, NetlistError::Parse { message, .. }
                if message.contains("declared more than once"));
        prop_assert!(typed, "got {err}");
    }

    #[test]
    fn undefined_fanins_are_typed_errors(src in arb_source(), suffix in 0u32..1_000_000) {
        let corrupted = format!("{src}\nzz_out = AND(ghost_{suffix}, ghost_{suffix}b)\n");
        let err = parse_and_audit(&corrupted).expect_err("undefined fanin must error");
        let typed = matches!(&err, NetlistError::UnknownSignal { name }
                if name.starts_with("ghost_"))
            || matches!(&err, NetlistError::Parse { message, .. }
                if message.contains("ghost_") && message.contains("never declared"));
        prop_assert!(typed, "got {err}");
    }

    #[test]
    fn injected_cycles_are_typed_errors(src in arb_source()) {
        let corrupted = format!(
            "{src}\ncyc_a = AND(cyc_b, cyc_b)\ncyc_b = NOT(cyc_a)\nOUTPUT(cyc_a)\n"
        );
        let err = parse_and_audit(&corrupted).expect_err("cycle must error");
        prop_assert!(matches!(err, NetlistError::Cycle { .. }), "got {err}");
    }

    #[test]
    fn huge_identifiers_are_typed_errors(src in arb_source(), extra in 1usize..4096) {
        let bomb = "a".repeat(1024 + extra);
        let corrupted = format!("{src}\nINPUT({bomb})\n");
        let err = parse_and_audit(&corrupted).expect_err("identifier bomb must error");
        match err {
            NetlistError::Parse { line, message, .. } => {
                prop_assert_eq!(line, corrupted.lines().count());
                prop_assert!(message.contains("exceeds"), "{message}");
            }
            other => prop_assert!(false, "expected Parse error, got {other}"),
        }
    }

    #[test]
    fn shuffled_and_repeated_lines_never_panic(
        src in arb_source(),
        order in prop::collection::vec(0usize..128, 4..96),
    ) {
        // Arbitrary re-ordering with repetition: exercises duplicate
        // detection, forward references and cycle checking together.
        let lines: Vec<&str> = src.lines().collect();
        let shuffled: Vec<&str> = order.iter().map(|&i| lines[i % lines.len()]).collect();
        let _ = parse_and_audit(&shuffled.join("\n"));
    }
}
