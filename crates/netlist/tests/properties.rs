//! Property-based tests of netlist structure, generators, parsing and
//! supergate extraction.

use pep_netlist::cone::{fanin_cone, fanout_cone, SupportSets};
use pep_netlist::generate::{random_circuit, RandomCircuitSpec};
use pep_netlist::supergate::SupergateExtractor;
use pep_netlist::{parse_bench, to_bench, GateKind};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = RandomCircuitSpec> {
    (
        2usize..24,   // inputs
        10usize..120, // gates
        2usize..10,   // depth
        2usize..5,    // max_fanin
        1usize..4,    // level_reach
        0.0f64..=1.0, // window
        0.0f64..0.7,  // inverter fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(inputs, gates, depth, max_fanin, level_reach, window, inv, seed)| RandomCircuitSpec {
                name: "prop".into(),
                inputs,
                gates,
                depth: depth.min(gates),
                max_fanin,
                level_reach,
                window,
                inverter_fraction: inv,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_circuits_are_structurally_sound(spec in arb_spec()) {
        let nl = random_circuit(&spec);
        prop_assert_eq!(nl.gate_count(), spec.gates);
        prop_assert_eq!(nl.primary_inputs().len(), spec.inputs);
        prop_assert_eq!(nl.max_level() as usize, spec.depth);
        // Topological order respects edges; levels are consistent.
        for id in nl.node_ids() {
            for &f in nl.fanins(id) {
                prop_assert!(nl.topo_position(f) < nl.topo_position(id));
                prop_assert!(nl.level(f) < nl.level(id));
            }
            if nl.kind(id) != GateKind::Input {
                let max_fanin_level = nl
                    .fanins(id)
                    .iter()
                    .map(|&f| nl.level(f))
                    .max()
                    .expect("gates have fanins");
                prop_assert_eq!(nl.level(id), max_fanin_level + 1);
            }
        }
        // No dangling logic.
        let po: std::collections::HashSet<_> = nl.primary_outputs().iter().copied().collect();
        for id in nl.node_ids() {
            prop_assert!(nl.fanout_count(id) > 0 || po.contains(&id));
        }
    }

    #[test]
    fn bench_round_trip_preserves_everything(spec in arb_spec()) {
        let nl = random_circuit(&spec);
        let text = to_bench(&nl);
        let back = parse_bench(nl.name(), &text).expect("own output parses");
        prop_assert_eq!(back.node_count(), nl.node_count());
        prop_assert_eq!(back.primary_outputs().len(), nl.primary_outputs().len());
        for id in nl.node_ids() {
            let other = back.node_id(nl.node_name(id)).expect("names preserved");
            prop_assert_eq!(back.kind(other), nl.kind(id));
            let fanins: Vec<&str> =
                nl.fanins(id).iter().map(|&f| nl.node_name(f)).collect();
            let back_fanins: Vec<&str> =
                back.fanins(other).iter().map(|&f| back.node_name(f)).collect();
            prop_assert_eq!(fanins, back_fanins);
        }
    }

    #[test]
    fn supports_match_cone_membership(spec in arb_spec()) {
        let nl = random_circuit(&spec);
        let supports = SupportSets::compute(&nl);
        // For a sample of nodes, the support equals the stems found by an
        // explicit cone walk.
        for id in nl.node_ids().step_by(7) {
            let cone: std::collections::HashSet<_> =
                fanin_cone(&nl, id).into_iter().collect();
            for (ord, &stem) in supports.stems().iter().enumerate() {
                let in_support = supports.support(id).contains(ord);
                let expected = cone.contains(&stem);
                prop_assert_eq!(
                    in_support, expected,
                    "stem {} vs node {}", nl.node_name(stem), nl.node_name(id)
                );
            }
        }
    }

    #[test]
    fn cones_are_duals(spec in arb_spec()) {
        let nl = random_circuit(&spec);
        // b in fanin_cone(a) <=> a in fanout_cone(b), spot-checked.
        let nodes: Vec<_> = nl.node_ids().step_by(11).collect();
        for &a in &nodes {
            let fic: std::collections::HashSet<_> = fanin_cone(&nl, a).into_iter().collect();
            for &b in &nodes {
                let foc_b: std::collections::HashSet<_> =
                    fanout_cone(&nl, b).into_iter().collect();
                prop_assert_eq!(fic.contains(&b), foc_b.contains(&a));
            }
        }
    }

    #[test]
    fn supergates_are_well_formed(spec in arb_spec(), depth in prop::option::of(1u32..8)) {
        let nl = random_circuit(&spec);
        let supports = SupportSets::compute(&nl);
        let mut extractor = SupergateExtractor::new(&nl, &supports, depth);
        for &g in nl.topo_order() {
            if nl.kind(g) == GateKind::Input || !supports.is_reconvergent(&nl, g) {
                continue;
            }
            let sg = extractor.extract(g);
            prop_assert_eq!(sg.output, g);
            let interior: std::collections::HashSet<_> = sg.interior.iter().copied().collect();
            let inputs: std::collections::HashSet<_> = sg.inputs.iter().copied().collect();
            prop_assert!(interior.contains(&g));
            prop_assert!(interior.is_disjoint(&inputs));
            // Region closure: interior fanins stay inside the region.
            for &n in &sg.interior {
                for &f in nl.fanins(n) {
                    prop_assert!(interior.contains(&f) || inputs.contains(&f));
                }
            }
            // Interior and stems are topologically sorted.
            for w in sg.interior.windows(2) {
                prop_assert!(nl.topo_position(w[0]) < nl.topo_position(w[1]));
            }
            for w in sg.stems.windows(2) {
                prop_assert!(nl.topo_position(w[0]) < nl.topo_position(w[1]));
            }
            // Untruncated supergates have pairwise-independent inputs.
            if !sg.truncated {
                for (i, &a) in sg.inputs.iter().enumerate() {
                    for &b in &sg.inputs[i + 1..] {
                        prop_assert!(!supports.correlated(a, b));
                    }
                }
            }
            // Every stem fans out at least twice into the interior.
            for &s in &sg.stems {
                let branches = nl
                    .fanouts(s)
                    .iter()
                    .filter(|f| interior.contains(f))
                    .count();
                prop_assert!(branches >= 2, "stem {} has {branches} branches", nl.node_name(s));
            }
        }
    }

    #[test]
    fn extractor_reuse_is_stateless(spec in arb_spec()) {
        // Reusing one extractor must give the same result as fresh ones.
        let nl = random_circuit(&spec);
        let supports = SupportSets::compute(&nl);
        let mut shared = SupergateExtractor::new(&nl, &supports, Some(5));
        for &g in nl.topo_order() {
            if nl.kind(g) == GateKind::Input || !supports.is_reconvergent(&nl, g) {
                continue;
            }
            let a = shared.extract(g);
            let b = SupergateExtractor::new(&nl, &supports, Some(5)).extract(g);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn logic_eval_respects_gate_semantics(spec in arb_spec(), bits in any::<u64>()) {
        let nl = random_circuit(&spec);
        let inputs: Vec<bool> = (0..nl.primary_inputs().len())
            .map(|i| bits >> (i % 64) & 1 == 1)
            .collect();
        let values = nl.eval(&inputs);
        for id in nl.node_ids() {
            if nl.kind(id) == GateKind::Input {
                continue;
            }
            let fanin_vals: Vec<bool> =
                nl.fanins(id).iter().map(|f| values[f.index()]).collect();
            prop_assert_eq!(values[id.index()], nl.kind(id).eval(&fanin_vals));
        }
    }
}
