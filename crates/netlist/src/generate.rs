//! Deterministic synthetic circuit generators.
//!
//! The paper evaluates on the combinational parts of six ISCAS89
//! benchmarks. Those netlists are not redistributable inside this
//! repository, so [`iscas_profile`] generates seeded random circuits whose
//! *structural* parameters (gate count, input count, fanin width, logic
//! depth and reconvergence density) track the published characteristics of
//! each benchmark — which is what the paper's run-time/error trends depend
//! on. Real `.bench` files can be dropped in through
//! [`parse_bench`](crate::parse_bench) unchanged.
//!
//! Also provides classic structured circuits (adders, multipliers,
//! reduction trees) used by examples and tests.

use crate::{GateKind, Netlist, NetlistBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for [`random_circuit`].
///
/// # Example
///
/// ```
/// use pep_netlist::generate::{random_circuit, RandomCircuitSpec};
///
/// let spec = RandomCircuitSpec {
///     name: "r100".into(),
///     inputs: 10,
///     gates: 100,
///     depth: 8,
///     seed: 42,
///     ..RandomCircuitSpec::default()
/// };
/// let nl = random_circuit(&spec);
/// assert_eq!(nl.gate_count(), 100);
/// assert_eq!(nl.max_level(), 8);
/// // Deterministic: the same spec regenerates the same circuit.
/// assert_eq!(pep_netlist::to_bench(&nl), pep_netlist::to_bench(&random_circuit(&spec)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomCircuitSpec {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates to create.
    pub gates: usize,
    /// Target logic depth; gates are distributed evenly across levels
    /// `1..=depth`, so `gates / depth` sets the circuit's width. Real
    /// benchmark circuits are wide and shallow (depth 10–50).
    pub depth: usize,
    /// Largest gate fanin (at least 2).
    pub max_fanin: usize,
    /// How many levels back non-leading fanins may reach (1 = strictly
    /// the previous level). Longer reach spreads reconvergent regions over
    /// more levels, producing larger supergates.
    pub level_reach: usize,
    /// Spatial locality of fanin selection, as a fraction of a level's
    /// width: a gate at relative position `x` draws its extra fanins from
    /// positions `x ± window` of the reachable levels. Real (placed)
    /// netlists are local — cones stay sparse and two distant signals
    /// share little ancestry. `1.0` disables locality.
    pub window: f64,
    /// Fraction of single-input gates (inverters/buffers).
    pub inverter_fraction: f64,
    /// RNG seed; the generator is fully deterministic given the spec.
    pub seed: u64,
}

impl Default for RandomCircuitSpec {
    fn default() -> Self {
        RandomCircuitSpec {
            name: "random".into(),
            inputs: 16,
            gates: 200,
            depth: 12,
            max_fanin: 3,
            level_reach: 2,
            window: 0.2,
            inverter_fraction: 0.40,
            seed: 1,
        }
    }
}

/// Generates a random level-structured combinational DAG.
///
/// Gates are placed on levels `1..=depth`; each gate's first fanin comes
/// from the previous level (pinning its logic level) and the rest from the
/// preceding `level_reach` levels. Because a level holds many fewer
/// signals than the gates drawing from it, signals fan out and reconverge
/// the way real netlists do. Every node with no fanout becomes a primary
/// output, so no logic dangles.
///
/// # Panics
///
/// Panics if `inputs`, `gates` or `depth` is zero, `depth > gates`, or
/// `max_fanin < 2`.
pub fn random_circuit(spec: &RandomCircuitSpec) -> Netlist {
    assert!(spec.inputs > 0, "need at least one primary input");
    assert!(spec.gates > 0, "need at least one gate");
    assert!(
        spec.depth > 0 && spec.depth <= spec.gates,
        "depth must be in 1..=gates"
    );
    assert!(spec.max_fanin >= 2, "max_fanin must be at least 2");
    // invariant: generated names (`pi{i}`, `g{i}`) are unique by
    // construction and fanins come from already-built levels, so no
    // builder call below can fail.
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = NetlistBuilder::new(spec.name.clone());
    // levels[l] holds the node ids whose logic level is exactly l.
    let mut levels: Vec<Vec<NodeId>> = vec![Vec::new()];
    let mut names: Vec<String> = Vec::new();
    let mut used: Vec<bool> = Vec::new();
    for i in 0..spec.inputs {
        let name = format!("pi{i}");
        levels[0].push(b.input(&name).expect("fresh input name"));
        names.push(name);
        used.push(false);
    }
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    let per_level = spec.gates / spec.depth;
    let remainder = spec.gates % spec.depth;
    let mut gate_no = 0usize;
    for level in 1..=spec.depth {
        let count = per_level + usize::from(level <= remainder);
        let mut this_level = Vec::with_capacity(count);
        // Leading fanins walk the previous level in order, so most nets
        // have fanout one (as in real netlists), stems arise from the
        // extra fanins only, and columns stay spatially aligned.
        let rotation: Vec<NodeId> = levels[level - 1].clone();
        let mut next_lead = 0usize;
        for _ in 0..count {
            let name = format!("g{gate_no}");
            gate_no += 1;
            // The leading fanin pins the gate to this level.
            let lead = if rotation.is_empty() {
                pick_from_level(&mut rng, &levels, level - 1)
            } else {
                let l = rotation[next_lead % rotation.len()];
                next_lead += 1;
                l
            };
            // The gate's relative position within its row anchors the
            // locality window of its extra fanins.
            let position = next_lead as f64 / count.max(1) as f64;
            let (kind, fanins) = if rng.random::<f64>() < spec.inverter_fraction {
                let kind = if rng.random::<f64>() < 0.8 {
                    GateKind::Not
                } else {
                    GateKind::Buf
                };
                (kind, vec![lead])
            } else {
                let arity = rng.random_range(2..=spec.max_fanin);
                let mut fanins = vec![lead];
                let reach_lo = level.saturating_sub(spec.level_reach.max(1));
                let mut guard = 0;
                while fanins.len() < arity && guard < 64 {
                    let l = rng.random_range(reach_lo..level);
                    let f = pick_near(&mut rng, &levels, l, position, spec.window);
                    if !fanins.contains(&f) {
                        fanins.push(f);
                    }
                    guard += 1;
                }
                (kinds[rng.random_range(0..kinds.len())], fanins)
            };
            for &f in &fanins {
                // Node ids are dense and assigned in creation order.
                used[f.index()] = true;
            }
            let id = b.gate_ids(&name, kind, &fanins).expect("valid gate");
            this_level.push(id);
            names.push(name);
            used.push(false);
        }
        levels.push(this_level);
    }
    // Sinks become primary outputs so nothing dangles.
    for (i, &is_used) in used.iter().enumerate() {
        if !is_used {
            b.output(&names[i]).expect("declared signal");
        }
    }
    b.build().expect("generated circuit is a valid DAG")
}

/// Picks a node near relative position `x` of the given level (wrapping
/// falls back toward the inputs when a level is empty).
fn pick_near(
    rng: &mut StdRng,
    levels: &[Vec<NodeId>],
    level: usize,
    x: f64,
    window: f64,
) -> NodeId {
    let mut l = level;
    loop {
        let row = &levels[l];
        if !row.is_empty() {
            let n = row.len() as f64;
            let half = (window.clamp(0.0, 1.0) * n).max(1.0);
            let center = x * n;
            let lo = (center - half).floor().max(0.0) as usize;
            let hi = ((center + half).ceil() as usize).min(row.len() - 1);
            return row[rng.random_range(lo..=hi)];
        }
        // invariant: level 0 is populated with the primary inputs before
        // any gate is placed, so the walk terminates before underflow.
        l = l.checked_sub(1).expect("level 0 holds the primary inputs");
    }
}

fn pick_from_level(rng: &mut StdRng, levels: &[Vec<NodeId>], level: usize) -> NodeId {
    // Levels below `level_reach` of the first gate rows may be sparse;
    // fall back toward the inputs if a level is empty (cannot happen for
    // level 0).
    let mut l = level;
    loop {
        if !levels[l].is_empty() {
            return levels[l][rng.random_range(0..levels[l].len())];
        }
        // invariant: level 0 is populated with the primary inputs before
        // any gate is placed, so the walk terminates before underflow.
        l = l.checked_sub(1).expect("level 0 holds the primary inputs");
    }
}

/// Builds an `n`-bit ripple-carry adder (`a[i]`, `b[i]`, `cin` →
/// `sum[i]`, `cout`).
///
/// Each full-adder slice contains reconvergent fanout on `a[i]`, `b[i]`
/// and the incoming carry, making this a structured stress test for
/// supergate handling with a long critical path.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn ripple_carry_adder(bits: usize) -> Netlist {
    // invariant: statically unique generated names with fanins declared
    // before use — the builder expects below cannot fail.
    assert!(bits > 0, "need at least one bit");
    let mut b = NetlistBuilder::new(format!("rca{bits}"));
    for i in 0..bits {
        b.input(&format!("a{i}")).expect("fresh name");
        b.input(&format!("b{i}")).expect("fresh name");
    }
    b.input("cin").expect("fresh name");
    let mut carry = "cin".to_owned();
    for i in 0..bits {
        let a = format!("a{i}");
        let bb = format!("b{i}");
        let x = format!("x{i}");
        let s = format!("sum{i}");
        let g1 = format!("fa{i}_g1");
        let g2 = format!("fa{i}_g2");
        let c = format!("c{i}");
        b.gate(&x, GateKind::Xor, &[&a, &bb]).expect("valid");
        b.gate(&s, GateKind::Xor, &[&x, &carry]).expect("valid");
        b.gate(&g1, GateKind::And, &[&x, &carry]).expect("valid");
        b.gate(&g2, GateKind::And, &[&a, &bb]).expect("valid");
        b.gate(&c, GateKind::Or, &[&g1, &g2]).expect("valid");
        b.output(&s).expect("declared");
        carry = c;
    }
    b.output(&carry).expect("declared");
    b.build().expect("adder is a valid DAG")
}

/// Builds an `n`×`n` array multiplier from AND partial products and
/// ripple-carry rows — a quadratically growing circuit with heavy
/// reconvergence, useful for scaling studies.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn array_multiplier(bits: usize) -> Netlist {
    // invariant: statically unique generated names with fanins declared
    // before use — the builder expects below cannot fail.
    assert!(bits > 0, "need at least one bit");
    let mut b = NetlistBuilder::new(format!("mul{bits}"));
    for i in 0..bits {
        b.input(&format!("a{i}")).expect("fresh name");
    }
    for j in 0..bits {
        b.input(&format!("b{j}")).expect("fresh name");
    }
    // Partial products.
    for i in 0..bits {
        for j in 0..bits {
            b.gate(
                &format!("pp{i}_{j}"),
                GateKind::And,
                &[&format!("a{i}"), &format!("b{j}")],
            )
            .expect("valid");
        }
    }
    // Row-by-row carry-save reduction with half/full adder cells.
    // `acc[k]` holds the current partial-sum signal for output bit k.
    let mut acc: Vec<Option<String>> = vec![None; 2 * bits];
    let mut cell = 0usize;
    for i in 0..bits {
        let mut carry: Option<String> = None;
        for j in 0..bits {
            let k = i + j;
            let pp = format!("pp{i}_{j}");
            let mut addends: Vec<String> = vec![pp];
            if let Some(prev) = acc[k].take() {
                addends.push(prev);
            }
            if let Some(c) = carry.take() {
                addends.push(c);
            }
            // Reduce the addends pairwise into a sum and carry chain.
            while addends.len() > 1 {
                let x = addends.remove(0);
                let y = addends.remove(0);
                let s = format!("s{cell}");
                let c = format!("k{cell}");
                cell += 1;
                b.gate(&s, GateKind::Xor, &[&x, &y]).expect("valid");
                b.gate(&c, GateKind::And, &[&x, &y]).expect("valid");
                addends.insert(0, s);
                carry = Some(match carry.take() {
                    None => c,
                    Some(prev) => {
                        let merged = format!("kc{cell}");
                        cell += 1;
                        b.gate(&merged, GateKind::Or, &[&prev, &c]).expect("valid");
                        merged
                    }
                });
            }
            acc[k] = Some(addends.remove(0));
        }
        if let Some(c) = carry {
            let k = i + bits;
            acc[k] = Some(match acc[k].take() {
                None => c,
                Some(prev) => {
                    let merged = format!("m{cell}");
                    cell += 1;
                    b.gate(&merged, GateKind::Xor, &[&prev, &c]).expect("valid");
                    merged
                }
            });
        }
    }
    for (k, slot) in acc.iter().enumerate() {
        if let Some(sig) = slot {
            let p = format!("p{k}");
            b.gate(&p, GateKind::Buf, &[sig]).expect("valid");
            b.output(&p).expect("declared");
        }
    }
    b.build().expect("multiplier is a valid DAG")
}

/// Builds a balanced reduction tree of `kind` gates over `inputs` leaves —
/// a reconvergence-free circuit (every signal has fanout one), on which
/// plain event propagation is already exact.
///
/// # Panics
///
/// Panics if `inputs < 2` or the kind cannot take two fanins.
pub fn comb_tree(kind: GateKind, inputs: usize) -> Netlist {
    // invariant: statically unique generated names with fanins declared
    // before use — the builder expects below cannot fail.
    assert!(inputs >= 2, "a tree needs at least two leaves");
    assert!(kind.accepts_arity(2), "tree gates are two-input");
    let mut b = NetlistBuilder::new(format!("tree_{}{}", kind.bench_name(), inputs));
    let mut layer: Vec<String> = (0..inputs)
        .map(|i| {
            let name = format!("i{i}");
            b.input(&name).expect("fresh name");
            name
        })
        .collect();
    let mut next_id = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.chunks(2);
        for chunk in &mut it {
            match chunk {
                [a, b_sig] => {
                    let name = format!("t{next_id}");
                    next_id += 1;
                    b.gate(&name, kind, &[a, b_sig]).expect("valid");
                    next.push(name);
                }
                [solo] => next.push(solo.clone()),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        layer = next;
    }
    b.output(&layer[0]).expect("declared");
    b.build().expect("tree is a valid DAG")
}

/// The six ISCAS89 benchmarks of the paper's evaluation (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IscasProfile {
    /// s5378 — 2 779 combinational gates.
    S5378,
    /// s9234 — 5 597 combinational gates.
    S9234,
    /// s13207 — 7 951 combinational gates.
    S13207,
    /// s15850 — 9 772 combinational gates; the paper's Table 1 shows it has
    /// the largest and stem-densest supergates (and the lowest speedup).
    S15850,
    /// s35932 — 16 065 combinational gates, wide and shallow.
    S35932,
    /// s38584 — 19 253 combinational gates.
    S38584,
}

impl IscasProfile {
    /// All profiles in the paper's presentation order.
    pub fn all() -> [IscasProfile; 6] {
        [
            IscasProfile::S5378,
            IscasProfile::S9234,
            IscasProfile::S13207,
            IscasProfile::S15850,
            IscasProfile::S35932,
            IscasProfile::S38584,
        ]
    }

    /// The benchmark's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            IscasProfile::S5378 => "s5378",
            IscasProfile::S9234 => "s9234",
            IscasProfile::S13207 => "s13207",
            IscasProfile::S15850 => "s15850",
            IscasProfile::S35932 => "s35932",
            IscasProfile::S38584 => "s38584",
        }
    }

    /// The generator parameters standing in for the real netlist.
    ///
    /// Inputs count PIs plus cut flip-flops (the combinational part's
    /// pseudo-inputs); gate counts match the published combinational gate
    /// counts; depths track the published critical-path lengths. Fanin
    /// width and level reach are tuned per circuit so supergate statistics
    /// vary the way Table 1 reports: largest and stem-densest for s15850,
    /// smallest for the wide, shallow s35932.
    pub fn spec(self) -> RandomCircuitSpec {
        // (inputs, gates, depth, max_fanin, reach, window, inverters, seed)
        // Inverter fractions track the published netlists — the ISCAS89
        // benchmarks are famously inverter-heavy (s9234: ~64% NOT/BUF).
        let (inputs, gates, depth, max_fanin, level_reach, window, inv, seed) = match self {
            IscasProfile::S5378 => (214, 2_779, 25, 3, 2, 0.15, 0.60, 0x5378),
            IscasProfile::S9234 => (247, 5_597, 38, 3, 2, 0.15, 0.64, 0x9234),
            IscasProfile::S13207 => (700, 7_951, 32, 3, 2, 0.15, 0.60, 0x13207),
            IscasProfile::S15850 => (611, 9_772, 47, 4, 5, 0.35, 0.50, 0x15850),
            IscasProfile::S35932 => (1_763, 16_065, 12, 2, 1, 0.03, 0.30, 0x35932),
            IscasProfile::S38584 => (1_464, 19_253, 30, 3, 2, 0.10, 0.45, 0x38584),
        };
        RandomCircuitSpec {
            name: self.name().to_owned(),
            inputs,
            gates,
            depth,
            max_fanin,
            level_reach,
            window,
            inverter_fraction: inv,
            seed,
        }
    }
}

/// Generates the profile circuit standing in for an ISCAS89 benchmark.
///
/// # Example
///
/// ```
/// use pep_netlist::generate::{iscas_profile, IscasProfile};
///
/// let nl = iscas_profile(IscasProfile::S5378);
/// assert_eq!(nl.name(), "s5378");
/// assert_eq!(nl.gate_count(), 2779);
/// ```
pub fn iscas_profile(profile: IscasProfile) -> Netlist {
    random_circuit(&profile.spec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::SupportSets;

    #[test]
    fn random_circuit_is_deterministic() {
        let spec = RandomCircuitSpec {
            gates: 150,
            depth: 10,
            seed: 9,
            ..RandomCircuitSpec::default()
        };
        let a = random_circuit(&spec);
        let b = random_circuit(&spec);
        assert_eq!(crate::to_bench(&a), crate::to_bench(&b));
        let c = random_circuit(&RandomCircuitSpec { seed: 10, ..spec });
        assert_ne!(crate::to_bench(&a), crate::to_bench(&c));
    }

    #[test]
    fn random_circuit_has_reconvergence() {
        let nl = random_circuit(&RandomCircuitSpec::default());
        let s = SupportSets::compute(&nl);
        assert!(!s.stems().is_empty());
        let reconv = nl
            .topo_order()
            .iter()
            .filter(|&&g| nl.kind(g) != GateKind::Input && s.is_reconvergent(&nl, g))
            .count();
        assert!(reconv > 0, "default spec should produce reconvergent gates");
    }

    #[test]
    fn random_circuit_no_dangling_nodes() {
        let nl = random_circuit(&RandomCircuitSpec::default());
        let po: std::collections::HashSet<_> = nl.primary_outputs().iter().copied().collect();
        for id in nl.node_ids() {
            assert!(
                nl.fanout_count(id) > 0 || po.contains(&id),
                "node {} dangles",
                nl.node_name(id)
            );
        }
    }

    #[test]
    fn adder_logic() {
        let bits = 4;
        let nl = ripple_carry_adder(bits);
        // Inputs ordered a0,b0,a1,b1,...,cin.
        for a in 0..16u32 {
            for bv in [0u32, 5, 9, 15] {
                for cin in [0u32, 1] {
                    let mut inputs = Vec::new();
                    for i in 0..bits {
                        inputs.push(a >> i & 1 == 1);
                        inputs.push(bv >> i & 1 == 1);
                    }
                    inputs.push(cin == 1);
                    let vals = nl.eval(&inputs);
                    let mut got = 0u32;
                    for i in 0..bits {
                        let s = nl.node_id(&format!("sum{i}")).expect("sum bit");
                        if vals[s.index()] {
                            got |= 1 << i;
                        }
                    }
                    let cout = nl.node_id(&format!("c{}", bits - 1)).expect("carry out");
                    if vals[cout.index()] {
                        got |= 1 << bits;
                    }
                    assert_eq!(got, a + bv + cin, "{a} + {bv} + {cin}");
                }
            }
        }
    }

    #[test]
    fn multiplier_logic() {
        let bits = 3;
        let nl = array_multiplier(bits);
        for a in 0..8u32 {
            for bv in 0..8u32 {
                let mut inputs = Vec::new();
                for i in 0..bits {
                    inputs.push(a >> i & 1 == 1);
                }
                for j in 0..bits {
                    inputs.push(bv >> j & 1 == 1);
                }
                let vals = nl.eval(&inputs);
                let mut got = 0u32;
                for k in 0..2 * bits {
                    if let Some(p) = nl.node_id(&format!("p{k}")) {
                        if vals[p.index()] {
                            got |= 1 << k;
                        }
                    }
                }
                assert_eq!(got, a * bv, "{a} * {bv}");
            }
        }
    }

    #[test]
    fn tree_has_no_stems() {
        let nl = comb_tree(GateKind::And, 16);
        let s = SupportSets::compute(&nl);
        assert!(s.stems().is_empty());
        assert_eq!(nl.gate_count(), 15);
        assert_eq!(nl.max_level(), 4);
    }

    #[test]
    fn tree_with_odd_leaves() {
        let nl = comb_tree(GateKind::Or, 5);
        assert_eq!(nl.gate_count(), 4);
        let vals = nl.eval(&[false, false, false, false, true]);
        let y = nl.primary_outputs()[0];
        assert!(vals[y.index()]);
    }

    #[test]
    fn profiles_have_published_sizes() {
        // Only the two smallest in unit tests; the rest are exercised by
        // the benches.
        let nl = iscas_profile(IscasProfile::S5378);
        assert_eq!(nl.gate_count(), 2_779);
        assert_eq!(nl.primary_inputs().len(), 214);
        let s = SupportSets::compute(&nl);
        assert!(s.stems().len() > 100, "profile must be stem-rich");
    }
}
