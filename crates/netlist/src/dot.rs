//! Graphviz DOT export for circuit visualization.

use crate::{GateKind, Netlist, NodeId};
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Highlight these nodes (e.g. a critical path or a supergate).
    pub highlight: Vec<NodeId>,
    /// Rank nodes left-to-right by logic level.
    pub rank_by_level: bool,
}

/// Serializes the netlist as a Graphviz DOT digraph.
///
/// Primary inputs render as boxes, gates as ellipses labelled with their
/// function, primary outputs with a double border; highlighted nodes are
/// filled.
///
/// # Example
///
/// ```
/// use pep_netlist::{dot, samples};
///
/// let nl = samples::mux2();
/// let text = dot::to_dot(&nl, &dot::DotOptions::default());
/// assert!(text.starts_with("digraph mux2"));
/// assert!(text.contains("\"s\" -> \"ns\""));
/// ```
pub fn to_dot(netlist: &Netlist, options: &DotOptions) -> String {
    let highlighted: std::collections::HashSet<NodeId> =
        options.highlight.iter().copied().collect();
    let outputs: std::collections::HashSet<NodeId> =
        netlist.primary_outputs().iter().copied().collect();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(netlist.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    for id in netlist.node_ids() {
        let name = netlist.node_name(id);
        let mut attrs: Vec<String> = Vec::new();
        match netlist.kind(id) {
            GateKind::Input => attrs.push("shape=box".to_owned()),
            kind => attrs.push(format!("label=\"{}\\n{}\"", escape(name), kind)),
        }
        if outputs.contains(&id) {
            attrs.push("peripheries=2".to_owned());
        }
        if highlighted.contains(&id) {
            attrs.push("style=filled".to_owned());
            attrs.push("fillcolor=lightgoldenrod".to_owned());
        }
        let _ = writeln!(out, "  \"{}\" [{}];", escape(name), attrs.join(", "));
    }
    for id in netlist.node_ids() {
        for &f in netlist.fanins(id) {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                escape(netlist.node_name(f)),
                escape(netlist.node_name(id))
            );
        }
    }
    if options.rank_by_level {
        for level in 0..=netlist.max_level() {
            let names: Vec<String> = netlist
                .node_ids()
                .filter(|&n| netlist.level(n) == level)
                .map(|n| format!("\"{}\"", escape(netlist.node_name(n))))
                .collect();
            if names.len() > 1 {
                let _ = writeln!(out, "  {{ rank=same; {} }}", names.join("; "));
            }
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else if cleaned.is_empty() {
        "circuit".to_owned()
    } else {
        cleaned
    }
}

fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let nl = samples::c17();
        let text = to_dot(&nl, &DotOptions::default());
        for id in nl.node_ids() {
            assert!(text.contains(&format!("\"{}\"", nl.node_name(id))));
        }
        let edges = nl.node_ids().map(|n| nl.fanins(n).len()).sum::<usize>();
        assert_eq!(text.matches(" -> ").count(), edges);
    }

    #[test]
    fn outputs_double_bordered_and_inputs_boxed() {
        let nl = samples::mux2();
        let text = to_dot(&nl, &DotOptions::default());
        assert!(text.contains("\"y\" [label=\"y\\nOR\", peripheries=2]"));
        assert!(text.contains("\"a\" [shape=box]"));
    }

    #[test]
    fn highlights_and_ranks() {
        let nl = samples::mux2();
        let y = nl.node_id("y").unwrap();
        let text = to_dot(
            &nl,
            &DotOptions {
                highlight: vec![y],
                rank_by_level: true,
            },
        );
        assert!(text.contains("fillcolor=lightgoldenrod"));
        assert!(text.contains("rank=same"));
    }

    #[test]
    fn numeric_names_sanitized() {
        let nl = samples::c17(); // circuit name "c17", node names numeric
        let text = to_dot(&nl, &DotOptions::default());
        assert!(text.starts_with("digraph c17 {"));
    }
}
