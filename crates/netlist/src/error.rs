use std::fmt;

/// Errors from netlist construction and `.bench` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal name was declared more than once.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A referenced signal was never declared.
    UnknownSignal {
        /// The undeclared name.
        name: String,
    },
    /// A gate received the wrong number of fanins for its kind.
    BadArity {
        /// The gate's output-signal name.
        name: String,
        /// The gate kind as text.
        kind: &'static str,
        /// How many fanins were supplied.
        got: usize,
    },
    /// The netlist contains a combinational cycle.
    Cycle {
        /// Name of one node on the cycle.
        through: String,
    },
    /// The netlist has no primary outputs.
    NoOutputs,
    /// The netlist exceeds the `u32` node-index space.
    TooManyNodes,
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column where the problem starts (0 when the
        /// position within the line is unknown).
        col: usize,
        /// Human-readable reason.
        message: String,
    },
    /// A gate function in a `.bench` file is not supported.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The unrecognized function name.
        function: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { name } => {
                write!(f, "signal `{name}` declared more than once")
            }
            NetlistError::UnknownSignal { name } => {
                write!(f, "signal `{name}` referenced but never declared")
            }
            NetlistError::BadArity { name, kind, got } => {
                write!(f, "gate `{name}` of kind {kind} cannot take {got} fanins")
            }
            NetlistError::Cycle { through } => {
                write!(f, "combinational cycle through `{through}`")
            }
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::TooManyNodes => {
                write!(f, "netlist exceeds the u32::MAX node limit")
            }
            NetlistError::Parse {
                line,
                col: 0,
                message,
            } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Parse { line, col, message } => {
                write!(f, "parse error at line {line}, column {col}: {message}")
            }
            NetlistError::UnsupportedGate { line, function } => {
                write!(f, "unsupported gate function `{function}` at line {line}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
