use serde::{Deserialize, Serialize};

/// A fixed-universe bit set used for stem-support bookkeeping.
///
/// Supergate extraction needs thousands of "do these two cones share a
/// stem?" queries; a dense `u64`-word bit set answers each in a handful of
/// word operations.
///
/// # Example
///
/// ```
/// use pep_netlist::BitSet;
///
/// let mut a = BitSet::new(100);
/// let mut b = BitSet::new(100);
/// a.insert(3);
/// a.insert(64);
/// b.insert(64);
/// assert!(a.intersects(&b));
/// assert_eq!(a.len(), 2);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set able to hold elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Inserts an element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds the capacity chosen at construction.
    #[inline]
    pub fn insert(&mut self, idx: usize) {
        self.words[idx / 64] |= 1 << (idx % 64);
    }

    /// Removes an element (no-op if absent or out of range).
    #[inline]
    pub fn remove(&mut self, idx: usize) {
        if let Some(w) = self.words.get_mut(idx / 64) {
            *w &= !(1 << (idx % 64));
        }
    }

    /// Whether `idx` is present.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    /// Whether the two sets share any element.
    #[inline]
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether the two sets share any element other than `skip`.
    #[inline]
    pub fn intersects_except(&self, other: &BitSet, skip: Option<usize>) -> bool {
        match skip {
            None => self.intersects(other),
            Some(idx) => {
                let (sw, sb) = (idx / 64, idx % 64);
                self.words
                    .iter()
                    .zip(&other.words)
                    .enumerate()
                    .any(|(wi, (a, b))| {
                        let mut w = a & b;
                        if wi == sw {
                            w &= !(1u64 << sb);
                        }
                        w != 0
                    })
            }
        }
    }

    /// Adds every element of `other` to `self`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of elements present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over present elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Elements present in both sets (word-wise, so cost scales with the
    /// intersection size plus one AND per word).
    pub fn intersection<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        let words = self.words.len().min(other.words.len());
        (0..words).flat_map(move |wi| {
            let mut bits = self.words[wi] & other.words[wi];
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(199);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn out_of_range_queries_are_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(500));
        let mut t = s.clone();
        t.remove(500); // no-op, no panic
        assert!(t.is_empty());
    }

    #[test]
    fn intersects_and_union() {
        let a: BitSet = [1, 5, 70].into_iter().collect();
        let b: BitSet = [2, 6, 71].into_iter().collect();
        assert!(!a.intersects(&b));
        let c: BitSet = [70, 200].into_iter().collect();
        assert!(a.intersects(&c));
        let mut u = a.clone();
        u.union_with(&c);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 70, 200]);
        assert_eq!(u.intersection(&c).collect::<Vec<_>>(), vec![70, 200]);
    }

    #[test]
    fn intersects_except_skips_the_named_bit() {
        let a: BitSet = [5, 70].into_iter().collect();
        let b: BitSet = [5, 200].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects_except(&b, Some(5)));
        assert!(a.intersects_except(&b, None));
        let c: BitSet = [5, 70, 200].into_iter().collect();
        assert!(a.intersects_except(&c, Some(5)), "70 still shared");
    }

    #[test]
    fn iter_order() {
        let s: BitSet = [64, 3, 128, 0].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 128]);
    }

    #[test]
    fn clear_empties() {
        let mut s: BitSet = [1, 2, 3].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
