use crate::{GateKind, Netlist, NetlistBuilder, NetlistError};
use std::collections::HashMap;

/// Longest accepted signal identifier, in bytes. Real `.bench` names are
/// tens of bytes; anything past this is a corrupt or hostile file, and
/// rejecting it bounds parser memory against identifier-bomb inputs.
const MAX_IDENT_LEN: usize = 1024;

/// Parses an ISCAS-85/89 `.bench` netlist.
///
/// Supported syntax:
///
/// * `INPUT(x)` / `OUTPUT(y)` declarations,
/// * gate assignments `y = AND(a, b, ...)` with the functions `AND`,
///   `NAND`, `OR`, `NOR`, `XOR`, `XNOR`, `NOT`/`INV`, `BUF`/`BUFF`,
/// * `q = DFF(d)` sequential elements, which are *cut*: `q` becomes a
///   pseudo primary input and `d` a pseudo primary output — yielding the
///   "combinational part" of the circuit exactly as the paper's ISCAS89
///   experiments require (§4),
/// * `#` comments and blank lines.
///
/// Signals may be referenced before they are defined (as real `.bench`
/// files do).
///
/// # Errors
///
/// Returns a [`NetlistError`] describing the first malformed line,
/// unsupported function, undefined signal or combinational cycle.
///
/// # Example
///
/// ```
/// use pep_netlist::parse_bench;
///
/// let src = "\
/// INPUT(a)   # toy circuit
/// INPUT(b)
/// OUTPUT(y)
/// w = NAND(a, b)
/// y = NOT(w)
/// ";
/// let nl = parse_bench("toy", src)?;
/// assert_eq!(nl.gate_count(), 2);
/// # Ok::<(), pep_netlist::NetlistError>(())
/// ```
pub fn parse_bench(name: &str, source: &str) -> Result<Netlist, NetlistError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    // output signal -> (kind, fanin names, defining line)
    let mut defs: Vec<(String, GateKind, Vec<String>, usize)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let stripped = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = stripped.trim();
        if line.is_empty() {
            continue;
        }
        // 1-based byte column of the first significant character, for
        // error context.
        let base_col = stripped.len() - stripped.trim_start().len() + 1;
        // Column of a substring of `line` (by its byte offset).
        let col_of = |off: usize| base_col + off;
        let check_ident = |ident: &str, off: usize| {
            if ident.len() > MAX_IDENT_LEN {
                return Err(NetlistError::Parse {
                    line: lineno,
                    col: col_of(off),
                    message: format!(
                        "identifier of {} bytes exceeds the {MAX_IDENT_LEN}-byte limit",
                        ident.len()
                    ),
                });
            }
            Ok(())
        };
        if let Some(inner) = parse_call(line, "INPUT") {
            let ident = inner.trim();
            check_ident(ident, 0)?;
            inputs.push(ident.to_owned());
            continue;
        }
        if let Some(inner) = parse_call(line, "OUTPUT") {
            let ident = inner.trim();
            check_ident(ident, 0)?;
            outputs.push(ident.to_owned());
            continue;
        }
        let (lhs_raw, rhs_raw) = line.split_once('=').ok_or_else(|| NetlistError::Parse {
            line: lineno,
            col: base_col,
            message: format!("expected `signal = FUNC(...)`, got `{line}`"),
        })?;
        // Byte offset of the right-hand side within `line`.
        let rhs_off = lhs_raw.len() + 1 + (rhs_raw.len() - rhs_raw.trim_start().len());
        let lhs = lhs_raw.trim().to_owned();
        check_ident(&lhs, 0)?;
        let rhs = rhs_raw.trim();
        let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
            line: lineno,
            col: col_of(rhs_off),
            message: "missing `(` in gate definition".to_owned(),
        })?;
        if !rhs.ends_with(')') {
            return Err(NetlistError::Parse {
                line: lineno,
                col: col_of(rhs_off + rhs.len().saturating_sub(1)),
                message: "missing `)` in gate definition".to_owned(),
            });
        }
        let func = rhs[..open].trim();
        let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();
        for a in &args {
            check_ident(a, rhs_off + open + 1)?;
        }
        if func.eq_ignore_ascii_case("DFF") {
            // Cut the flop: q is a pseudo-PI, d a pseudo-PO.
            if args.len() != 1 {
                return Err(NetlistError::Parse {
                    line: lineno,
                    col: col_of(rhs_off),
                    message: "DFF takes exactly one input".to_owned(),
                });
            }
            inputs.push(lhs);
            outputs.push(args[0].clone());
            continue;
        }
        let kind =
            GateKind::from_bench_name(func).ok_or_else(|| NetlistError::UnsupportedGate {
                line: lineno,
                function: func.to_owned(),
            })?;
        defs.push((lhs, kind, args, lineno));
    }

    let mut builder = NetlistBuilder::new(name);
    for i in &inputs {
        builder.input(i)?;
    }

    // Definitions may reference later signals; insert in dependency order.
    let mut pending: HashMap<usize, usize> = HashMap::new(); // def idx -> unresolved count
    let mut waiters: HashMap<String, Vec<usize>> = HashMap::new(); // fanin name -> defs waiting on it
    let mut ready: Vec<usize> = Vec::new();
    for (i, (_, _, fanins, _)) in defs.iter().enumerate() {
        let unresolved = fanins.iter().filter(|f| !builder.contains(f)).count();
        if unresolved == 0 {
            ready.push(i);
        } else {
            pending.insert(i, unresolved);
            for f in fanins {
                if !builder.contains(f) {
                    waiters.entry(f.clone()).or_default().push(i);
                }
            }
        }
    }
    let mut placed = 0;
    while let Some(i) = ready.pop() {
        let (lhs, kind, fanins, lineno) = &defs[i];
        let fanin_refs: Vec<&str> = fanins.iter().map(String::as_str).collect();
        builder
            .gate(lhs, *kind, &fanin_refs)
            .map_err(|e| locate(e, *lineno))?;
        placed += 1;
        if let Some(ws) = waiters.remove(lhs.as_str()) {
            for w in ws {
                let cnt = pending.get_mut(&w).expect("waiter is pending");
                *cnt -= 1;
                if *cnt == 0 {
                    pending.remove(&w);
                    ready.push(w);
                }
            }
        }
    }
    if placed != defs.len() {
        // Some definition never became ready: an undefined fanin or a cycle.
        let (lhs, _, fanins, lineno) = defs
            .iter()
            .find(|(lhs, ..)| !builder.contains(lhs))
            .expect("unplaced definition exists");
        let undefined = fanins
            .iter()
            .find(|f| !defs.iter().any(|(l, ..)| l == *f) && !inputs.contains(f));
        return Err(match undefined {
            Some(f) => locate(
                NetlistError::UnknownSignal {
                    name: f.to_string(),
                },
                *lineno,
            ),
            None => NetlistError::Cycle {
                through: lhs.clone(),
            },
        });
    }

    for o in &outputs {
        builder.output(o)?;
    }
    builder.build()
}

/// Attaches a line number to errors that lack one.
fn locate(e: NetlistError, line: usize) -> NetlistError {
    match e {
        NetlistError::Parse { .. } | NetlistError::UnsupportedGate { .. } => e,
        other => NetlistError::Parse {
            line,
            col: 0,
            message: other.to_string(),
        },
    }
}

/// Matches `KEYWORD( inner )` case-insensitively, returning `inner`.
fn parse_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line
        .len()
        .checked_sub(keyword.len())
        .and_then(|_| {
            line.get(..keyword.len())
                .filter(|head| head.eq_ignore_ascii_case(keyword))
        })
        .map(|_| line[keyword.len()..].trim())?;
    rest.strip_prefix('(')?.strip_suffix(')')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_circuit() {
        let nl = parse_bench("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.kind(nl.node_id("y").unwrap()), GateKind::And);
    }

    #[test]
    fn forward_references_allowed() {
        let nl = parse_bench("fwd", "INPUT(a)\nOUTPUT(y)\ny = NOT(w)\nw = BUF(a)\n").unwrap();
        assert_eq!(nl.gate_count(), 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nl = parse_bench(
            "c",
            "# header\n\nINPUT(a) # trailing\nOUTPUT(q)\nq = NOT(a)\n",
        )
        .unwrap();
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn dff_is_cut() {
        let nl = parse_bench(
            "seq",
            "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = AND(a, q)\ny = NOT(q)\n",
        )
        .unwrap();
        // q became a pseudo-PI, d a pseudo-PO: no cycle remains.
        assert_eq!(nl.primary_inputs().len(), 2);
        assert!(nl.primary_outputs().contains(&nl.node_id("d").unwrap()));
        assert_eq!(nl.kind(nl.node_id("q").unwrap()), GateKind::Input);
    }

    #[test]
    fn unsupported_function_reported() {
        let err = parse_bench("bad", "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::UnsupportedGate { line: 3, .. }));
    }

    #[test]
    fn missing_signal_reported() {
        let err = parse_bench("bad", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        match err {
            NetlistError::Parse { message, .. } => assert!(message.contains("ghost")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn combinational_cycle_reported() {
        let err =
            parse_bench("cyc", "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = BUF(x)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Cycle { .. }), "got {err:?}");
    }

    #[test]
    fn malformed_lines_reported() {
        assert!(matches!(
            parse_bench("m", "INPUT(a)\nOUTPUT(a)\nnonsense line\n"),
            Err(NetlistError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_bench("m", "INPUT(a)\nOUTPUT(y)\ny = AND a, b\n"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn case_insensitive_keywords() {
        let nl = parse_bench("k", "input(a)\noutput(y)\ny = nand(a, a)\n").unwrap();
        assert_eq!(nl.kind(nl.node_id("y").unwrap()), GateKind::Nand);
    }

    #[test]
    fn parse_errors_carry_byte_columns() {
        // The malformed line is indented: the column points past the
        // leading spaces, at the first significant byte.
        let err = parse_bench("m", "INPUT(a)\nOUTPUT(a)\n   nonsense line\n").unwrap_err();
        match err {
            NetlistError::Parse { line, col, .. } => {
                assert_eq!(line, 3);
                assert_eq!(col, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Missing `(`: the column points at the right-hand side.
        let err = parse_bench("m", "INPUT(a)\nOUTPUT(y)\ny = AND a, a\n").unwrap_err();
        match err {
            NetlistError::Parse { line: 3, col, .. } => assert_eq!(col, 5),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn huge_identifiers_rejected() {
        let big = "x".repeat(MAX_IDENT_LEN + 1);
        for src in [
            format!("INPUT({big})\nOUTPUT(y)\ny = NOT(a)\n"),
            format!("INPUT(a)\nOUTPUT({big})\ny = NOT(a)\n"),
            format!("INPUT(a)\nOUTPUT(y)\n{big} = NOT(a)\n"),
            format!("INPUT(a)\nOUTPUT(y)\ny = NOT({big})\n"),
        ] {
            let err = parse_bench("big", &src).unwrap_err();
            match err {
                NetlistError::Parse { message, .. } => {
                    assert!(message.contains("exceeds"), "got {message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
        // A name exactly at the limit still parses.
        let ok = "x".repeat(MAX_IDENT_LEN);
        let nl = parse_bench("ok", &format!("INPUT({ok})\nOUTPUT(y)\ny = NOT({ok})\n"));
        assert!(nl.is_ok());
    }
}
