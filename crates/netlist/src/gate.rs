use serde::{Deserialize, Serialize};

/// The logic function of a netlist node.
///
/// `Input` marks primary inputs (and the pseudo-inputs created when
/// sequential elements are cut); the rest are combinational gates.
///
/// # Example
///
/// ```
/// use pep_netlist::GateKind;
///
/// assert_eq!(GateKind::Nand.eval(&[true, true]), false);
/// assert_eq!(GateKind::Xor.eval(&[true, false, true]), false);
/// assert_eq!(GateKind::And.controlling_value(), Some(false));
/// assert!(GateKind::Nor.is_inverting());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary (or pseudo) input; no fanins.
    Input,
    /// Logical AND.
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Odd parity.
    Xor,
    /// Even parity.
    Xnor,
    /// Inverter (single fanin).
    Not,
    /// Buffer (single fanin).
    Buf,
}

impl GateKind {
    /// Evaluates the gate on concrete input values.
    ///
    /// # Panics
    ///
    /// Panics if called on [`GateKind::Input`] or with an arity the kind
    /// does not accept (guarded by netlist validation in normal use).
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Input => panic!("primary inputs have no logic function"),
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "NOT takes exactly one input");
                !inputs[0]
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes exactly one input");
                inputs[0]
            }
        }
    }

    /// The *controlling value* of the gate's inputs: the value that alone
    /// determines the output (AND/NAND: 0, OR/NOR: 1). Parity gates and
    /// single-input gates have none.
    ///
    /// Used by the dynamic (transition-aware) propagation mode to decide
    /// whether the earliest or the latest input event dominates, as in the
    /// paper's falling-AND example (Fig. 5).
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate inverts (output falls when the deciding input
    /// rises). Parity gates report `false`; their polarity depends on the
    /// other inputs and is resolved during simulation.
    pub fn is_inverting(self) -> bool {
        matches!(self, GateKind::Nand | GateKind::Nor | GateKind::Not)
    }

    /// Whether this kind accepts `n` fanins.
    pub fn accepts_arity(self, n: usize) -> bool {
        match self {
            GateKind::Input => n == 0,
            GateKind::Not | GateKind::Buf => n == 1,
            _ => n >= 1,
        }
    }

    /// Canonical upper-case name (as written in `.bench` files).
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }

    /// Parses a `.bench` function name (case-insensitive; `BUF`/`BUFF`
    /// both accepted).
    pub fn from_bench_name(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            "NOT" | "INV" => Some(GateKind::Not),
            "BUF" | "BUFF" => Some(GateKind::Buf),
            _ => None,
        }
    }

    /// All combinational gate kinds (everything except [`GateKind::Input`]).
    pub fn all_combinational() -> &'static [GateKind] {
        &[
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ]
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.bench_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_two_inputs() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            let v = [a, b];
            assert_eq!(GateKind::And.eval(&v), a && b);
            assert_eq!(GateKind::Nand.eval(&v), !(a && b));
            assert_eq!(GateKind::Or.eval(&v), a || b);
            assert_eq!(GateKind::Nor.eval(&v), !(a || b));
            assert_eq!(GateKind::Xor.eval(&v), a ^ b);
            assert_eq!(GateKind::Xnor.eval(&v), !(a ^ b));
        }
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
    }

    #[test]
    fn multi_input_parity() {
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Input.accepts_arity(0));
        assert!(!GateKind::Input.accepts_arity(1));
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(0));
    }

    #[test]
    fn bench_name_round_trip() {
        for &k in GateKind::all_combinational() {
            assert_eq!(GateKind::from_bench_name(k.bench_name()), Some(k));
        }
        assert_eq!(GateKind::from_bench_name("nand"), Some(GateKind::Nand));
        assert_eq!(GateKind::from_bench_name("INV"), Some(GateKind::Not));
        assert_eq!(GateKind::from_bench_name("DFF"), None);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Buf.controlling_value(), None);
    }
}
