use crate::{GateKind, Netlist};
use std::fmt::Write as _;

/// Serializes a netlist to ISCAS `.bench` text.
///
/// The output round-trips through [`parse_bench`](crate::parse_bench)
/// (sequential elements never appear because [`Netlist`] is purely
/// combinational).
///
/// # Example
///
/// ```
/// use pep_netlist::{parse_bench, to_bench};
///
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let nl = parse_bench("t", src)?;
/// let round = parse_bench("t", &to_bench(&nl))?;
/// assert_eq!(round.gate_count(), nl.gate_count());
/// # Ok::<(), pep_netlist::NetlistError>(())
/// ```
pub fn to_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &pi in netlist.primary_inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node_name(pi));
    }
    for &po in netlist.primary_outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.node_name(po));
    }
    for &id in netlist.topo_order() {
        let kind = netlist.kind(id);
        if kind == GateKind::Input {
            continue;
        }
        let fanins: Vec<&str> = netlist
            .fanins(id)
            .iter()
            .map(|&f| netlist.node_name(f))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            netlist.node_name(id),
            kind.bench_name(),
            fanins.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{parse_bench, to_bench, GateKind, NetlistBuilder};

    #[test]
    fn round_trip_preserves_structure() {
        let mut b = NetlistBuilder::new("rt");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("w", GateKind::Nand, &["a", "b"]).unwrap();
        b.gate("y", GateKind::Xor, &["w", "a"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();

        let text = to_bench(&nl);
        let back = parse_bench("rt", &text).unwrap();
        assert_eq!(back.node_count(), nl.node_count());
        assert_eq!(back.primary_inputs().len(), nl.primary_inputs().len());
        assert_eq!(back.primary_outputs().len(), nl.primary_outputs().len());
        for id in nl.node_ids() {
            let other = back.node_id(nl.node_name(id)).expect("same names");
            assert_eq!(back.kind(other), nl.kind(id));
            assert_eq!(back.fanins(other).len(), nl.fanins(id).len());
        }
    }

    #[test]
    fn output_contains_expected_lines() {
        let mut b = NetlistBuilder::new("lines");
        b.input("x").unwrap();
        b.gate("q", GateKind::Buf, &["x"]).unwrap();
        b.output("q").unwrap();
        let text = to_bench(&b.build().unwrap());
        assert!(text.contains("INPUT(x)"));
        assert!(text.contains("OUTPUT(q)"));
        assert!(text.contains("q = BUFF(x)"));
    }
}
