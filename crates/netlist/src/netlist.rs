use crate::{GateKind, NetlistError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a netlist node (a primary input or a gate).
///
/// Every node drives exactly one signal, so nodes and signals are
/// interchangeable: the "signal `x`" is the output of node `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// The node's dense index (valid for indexing per-node side tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn new(index: usize) -> Self {
        // invariant: NetlistBuilder::add_node rejects the u32::MAX-th
        // node with NetlistError::TooManyNodes, so every index that
        // reaches here fits in u32.
        NodeId(u32::try_from(index).expect("netlist larger than u32::MAX nodes"))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    kind: GateKind,
    fanins: Vec<NodeId>,
}

/// An immutable, validated combinational gate-level circuit.
///
/// Built through [`NetlistBuilder`] (or [`parse_bench`]); construction
/// validates arity, rejects cycles, and precomputes fanout lists, a
/// topological order and logic levels so analyses never re-derive them.
///
/// # Example
///
/// ```
/// use pep_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("demo");
/// b.input("a")?;
/// b.gate("q", GateKind::Not, &["a"])?;
/// b.output("q")?;
/// let nl = b.build()?;
/// let q = nl.node_id("q").expect("declared above");
/// assert_eq!(nl.level(q), 1);
/// assert_eq!(nl.fanouts(nl.node_id("a").expect("declared")), &[q]);
/// # Ok::<(), pep_netlist::NetlistError>(())
/// ```
///
/// [`parse_bench`]: crate::parse_bench
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    primary_inputs: Vec<NodeId>,
    primary_outputs: Vec<NodeId>,
    fanouts: Vec<Vec<NodeId>>,
    topo: Vec<NodeId>,
    topo_pos: Vec<u32>,
    levels: Vec<u32>,
    max_level: u32,
}

impl Netlist {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (primary inputs + gates).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of combinational gates (nodes that are not primary inputs).
    pub fn gate_count(&self) -> usize {
        self.nodes.len() - self.primary_inputs.len()
    }

    /// Primary inputs, in declaration order.
    pub fn primary_inputs(&self) -> &[NodeId] {
        &self.primary_inputs
    }

    /// Primary outputs, in declaration order (the nodes driving them).
    pub fn primary_outputs(&self) -> &[NodeId] {
        &self.primary_outputs
    }

    /// The gate kind of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.nodes[id.index()].kind
    }

    /// The fanin signals of a node (empty for primary inputs).
    #[inline]
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].fanins
    }

    /// The gates this node feeds. A node feeding the same gate through two
    /// pins appears twice; being a primary output adds no entry.
    #[inline]
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Number of fanout branches (edges into gates).
    #[inline]
    pub fn fanout_count(&self, id: NodeId) -> usize {
        self.fanouts[id.index()].len()
    }

    /// Whether the node is a *fanout stem* — it drives two or more gate
    /// input pins, so its signal can reconverge downstream (paper §3.1).
    #[inline]
    pub fn is_stem(&self, id: NodeId) -> bool {
        self.fanouts[id.index()].len() >= 2
    }

    /// All fanout stems, in topological order.
    pub fn stems(&self) -> Vec<NodeId> {
        self.topo
            .iter()
            .copied()
            .filter(|&n| self.is_stem(n))
            .collect()
    }

    /// The node's declared name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a node up by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// The nodes in a topological order (fanins before fanouts).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// A node's position in [`topo_order`](Netlist::topo_order) — usable
    /// as a sort key that respects dependencies.
    #[inline]
    pub fn topo_position(&self, id: NodeId) -> usize {
        self.topo_pos[id.index()] as usize
    }

    /// Logic level: 0 for primary inputs, `1 + max(fanin levels)` for gates.
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// The deepest logic level in the circuit.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Evaluates the whole circuit on concrete input values, returning one
    /// value per node (indexed by [`NodeId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not provide one value per primary input.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.primary_inputs.len(),
            "need one value per primary input"
        );
        let mut values = vec![false; self.nodes.len()];
        for (&pi, &v) in self.primary_inputs.iter().zip(inputs) {
            values[pi.index()] = v;
        }
        let mut buf = Vec::with_capacity(8);
        for &n in &self.topo {
            let node = &self.nodes[n.index()];
            if node.kind == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(node.fanins.iter().map(|f| values[f.index()]));
            values[n.index()] = node.kind.eval(&buf);
        }
        values
    }
}

/// Incremental constructor for [`Netlist`].
///
/// Declare inputs and gates in any order that references only
/// already-declared signals, mark outputs, then call
/// [`build`](NetlistBuilder::build) to validate and freeze.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    nodes: Vec<Node>,
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    primary_inputs: Vec<NodeId>,
    output_names: Vec<String>,
}

impl NetlistBuilder {
    /// Starts an empty netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nodes: Vec::new(),
            names: Vec::new(),
            name_index: HashMap::new(),
            primary_inputs: Vec::new(),
            output_names: Vec::new(),
        }
    }

    fn add_node(&mut self, name: &str, node: Node) -> Result<NodeId, NetlistError> {
        if self.name_index.contains_key(name) {
            return Err(NetlistError::DuplicateName {
                name: name.to_owned(),
            });
        }
        if self.nodes.len() >= u32::MAX as usize {
            return Err(NetlistError::TooManyNodes);
        }
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(node);
        self.names.push(name.to_owned());
        self.name_index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Fails if the name is already taken.
    pub fn input(&mut self, name: &str) -> Result<NodeId, NetlistError> {
        let id = self.add_node(
            name,
            Node {
                kind: GateKind::Input,
                fanins: Vec::new(),
            },
        )?;
        self.primary_inputs.push(id);
        Ok(id)
    }

    /// Declares a gate whose fanins are referenced *by name*.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, unknown fanins, or an arity the kind
    /// rejects.
    pub fn gate(
        &mut self,
        name: &str,
        kind: GateKind,
        fanins: &[&str],
    ) -> Result<NodeId, NetlistError> {
        let ids = fanins
            .iter()
            .map(|f| {
                self.name_index
                    .get(*f)
                    .copied()
                    .ok_or_else(|| NetlistError::UnknownSignal {
                        name: (*f).to_owned(),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.gate_ids(name, kind, &ids)
    }

    /// Declares a gate whose fanins are referenced by id.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or an arity the kind rejects.
    pub fn gate_ids(
        &mut self,
        name: &str,
        kind: GateKind,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        if kind == GateKind::Input || !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::BadArity {
                name: name.to_owned(),
                kind: kind.bench_name(),
                got: fanins.len(),
            });
        }
        self.add_node(
            name,
            Node {
                kind,
                fanins: fanins.to_vec(),
            },
        )
    }

    /// Marks a declared signal as a primary output. The same signal may be
    /// marked repeatedly; duplicates collapse.
    ///
    /// # Errors
    ///
    /// Unknown names are rejected at [`build`](NetlistBuilder::build) time,
    /// not here, so outputs may be declared before their drivers (as
    /// `.bench` files do). This method itself never fails.
    pub fn output(&mut self, name: &str) -> Result<(), NetlistError> {
        if !self.output_names.iter().any(|n| n == name) {
            self.output_names.push(name.to_owned());
        }
        Ok(())
    }

    /// Whether a signal with this name has been declared.
    pub fn contains(&self, name: &str) -> bool {
        self.name_index.contains_key(name)
    }

    /// Number of nodes declared so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Fails if an output references an undeclared signal, the circuit has
    /// no outputs, or (defensively — the by-name API cannot create one) a
    /// combinational cycle exists.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        if self.output_names.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        let primary_outputs = self
            .output_names
            .iter()
            .map(|n| {
                self.name_index
                    .get(n)
                    .copied()
                    .ok_or_else(|| NetlistError::UnknownSignal { name: n.clone() })
            })
            .collect::<Result<Vec<_>, _>>()?;

        let n = self.nodes.len();
        let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut indegree: Vec<u32> = vec![0; n];
        for (i, node) in self.nodes.iter().enumerate() {
            indegree[i] = node.fanins.len() as u32;
            for &f in &node.fanins {
                fanouts[f.index()].push(NodeId::new(i));
            }
        }

        // Kahn's algorithm; queue seeded with in-degree-zero nodes in index
        // order so the topological order is deterministic.
        let mut topo = Vec::with_capacity(n);
        let mut levels = vec![0u32; n];
        let mut queue: std::collections::VecDeque<NodeId> = (0..n)
            .map(NodeId::new)
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        while let Some(id) = queue.pop_front() {
            topo.push(id);
            for &out in &fanouts[id.index()] {
                let oi = out.index();
                levels[oi] = levels[oi].max(levels[id.index()] + 1);
                indegree[oi] -= 1;
                if indegree[oi] == 0 {
                    queue.push_back(out);
                }
            }
        }
        if topo.len() != n {
            // invariant: Kahn's algorithm placed fewer than n nodes, so
            // at least one node still has unresolved fanins — a node
            // with nonzero residual in-degree must exist.
            let on_cycle = (0..n)
                .find(|&i| indegree[i] > 0)
                .expect("some node keeps nonzero in-degree on a cycle");
            return Err(NetlistError::Cycle {
                through: self.names[on_cycle].clone(),
            });
        }
        let max_level = levels.iter().copied().max().unwrap_or(0);
        let mut topo_pos = vec![0u32; n];
        for (i, id) in topo.iter().enumerate() {
            topo_pos[id.index()] = i as u32;
        }

        Ok(Netlist {
            name: self.name,
            nodes: self.nodes,
            names: self.names,
            name_index: self.name_index,
            primary_inputs: self.primary_inputs,
            primary_outputs,
            fanouts,
            topo,
            topo_pos,
            levels,
            max_level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("full_adder");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.input("cin").unwrap();
        b.gate("x1", GateKind::Xor, &["a", "b"]).unwrap();
        b.gate("sum", GateKind::Xor, &["x1", "cin"]).unwrap();
        b.gate("g1", GateKind::And, &["x1", "cin"]).unwrap();
        b.gate("g2", GateKind::And, &["a", "b"]).unwrap();
        b.gate("cout", GateKind::Or, &["g1", "g2"]).unwrap();
        b.output("sum").unwrap();
        b.output("cout").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let nl = full_adder();
        assert_eq!(nl.node_count(), 8);
        assert_eq!(nl.gate_count(), 5);
        assert_eq!(nl.primary_inputs().len(), 3);
        assert_eq!(nl.primary_outputs().len(), 2);
        assert_eq!(nl.name(), "full_adder");
    }

    #[test]
    fn levels_and_topo() {
        let nl = full_adder();
        let a = nl.node_id("a").unwrap();
        let x1 = nl.node_id("x1").unwrap();
        let sum = nl.node_id("sum").unwrap();
        let cout = nl.node_id("cout").unwrap();
        assert_eq!(nl.level(a), 0);
        assert_eq!(nl.level(x1), 1);
        assert_eq!(nl.level(sum), 2);
        // cout goes through g1 = AND(x1, cin) at level 2.
        assert_eq!(nl.level(cout), 3);
        assert_eq!(nl.max_level(), 3);
        // Topological: each node appears after all its fanins.
        let pos: std::collections::HashMap<NodeId, usize> = nl
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for id in nl.node_ids() {
            for &f in nl.fanins(id) {
                assert!(pos[&f] < pos[&id]);
            }
        }
    }

    #[test]
    fn fanouts_and_stems() {
        let nl = full_adder();
        let a = nl.node_id("a").unwrap();
        let x1 = nl.node_id("x1").unwrap();
        let sum = nl.node_id("sum").unwrap();
        assert!(nl.is_stem(a), "a feeds x1 and g2");
        assert!(nl.is_stem(x1), "x1 feeds sum and g1");
        assert!(!nl.is_stem(sum), "sum only feeds a PO");
        assert_eq!(nl.fanout_count(sum), 0);
        let stems = nl.stems();
        assert!(stems.contains(&a) && stems.contains(&x1));
    }

    #[test]
    fn eval_full_adder_truth_table() {
        let nl = full_adder();
        let sum = nl.node_id("sum").unwrap();
        let cout = nl.node_id("cout").unwrap();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let vals = nl.eval(&[a, b, c]);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(vals[sum.index()], total % 2 == 1);
                    assert_eq!(vals[cout.index()], total >= 2);
                }
            }
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a").unwrap();
        assert_eq!(
            b.input("a"),
            Err(NetlistError::DuplicateName { name: "a".into() })
        );
        assert!(matches!(
            b.gate("a", GateKind::Not, &["a"]),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn unknown_fanin_rejected() {
        let mut b = NetlistBuilder::new("unk");
        b.input("a").unwrap();
        assert!(matches!(
            b.gate("g", GateKind::And, &["a", "ghost"]),
            Err(NetlistError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn arity_rejected() {
        let mut b = NetlistBuilder::new("arity");
        b.input("a").unwrap();
        b.input("b").unwrap();
        assert!(matches!(
            b.gate("g", GateKind::Not, &["a", "b"]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn missing_output_driver_rejected() {
        let mut b = NetlistBuilder::new("noout");
        b.input("a").unwrap();
        b.output("ghost").unwrap();
        assert!(matches!(b.build(), Err(NetlistError::UnknownSignal { .. })));
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = NetlistBuilder::new("noout");
        b.input("a").unwrap();
        assert_eq!(b.build().err(), Some(NetlistError::NoOutputs));
    }

    #[test]
    fn duplicate_outputs_collapse() {
        let mut b = NetlistBuilder::new("dupout");
        b.input("a").unwrap();
        b.gate("q", GateKind::Buf, &["a"]).unwrap();
        b.output("q").unwrap();
        b.output("q").unwrap();
        let nl = b.build().unwrap();
        assert_eq!(nl.primary_outputs().len(), 1);
    }

    #[test]
    fn node_names_round_trip() {
        let nl = full_adder();
        for id in nl.node_ids() {
            assert_eq!(nl.node_id(nl.node_name(id)), Some(id));
        }
        assert_eq!(nl.node_id("nope"), None);
    }
}
