//! Small embedded circuits used by tests, examples and documentation.

use crate::{parse_bench, GateKind, Netlist, NetlistBuilder};

/// The ISCAS-85 `c17` benchmark (six NAND gates), embedded verbatim.
const C17_BENCH: &str = "\
# c17 — ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// The ISCAS-85 `c17` circuit.
///
/// The smallest classic benchmark with real reconvergent fanout (stems
/// `3`, `11` and `16`), handy as a fully-checkable example.
///
/// # Example
///
/// ```
/// use pep_netlist::samples;
///
/// let nl = samples::c17();
/// assert_eq!(nl.gate_count(), 6);
/// assert_eq!(nl.primary_inputs().len(), 5);
/// assert_eq!(nl.primary_outputs().len(), 2);
/// ```
pub fn c17() -> Netlist {
    // invariant: C17_BENCH is a compile-time constant that parses; the
    // crate's tests exercise this exact call.
    parse_bench("c17", C17_BENCH).expect("embedded c17 netlist is valid")
}

/// A circuit realizing the structure of the paper's Fig. 6.
///
/// Two primary-input stems `s1` and `s2`; `s3` and `s4` are internal stems
/// in the fanout cone of `s1`. Supergate `sg1` contains all four stems;
/// supergate `sg2` (nested inside `sg1`'s cone) contains `s1`, `s3` and
/// `s4`. The two supergates overlap, as the paper notes.
///
/// # Example
///
/// ```
/// use pep_netlist::{cone::SupportSets, samples, supergate};
///
/// let nl = samples::fig6();
/// let supports = SupportSets::compute(&nl);
/// let sg1 = supergate::extract(
///     &nl,
///     &supports,
///     nl.node_id("sg1").expect("present"),
///     None,
/// );
/// assert_eq!(sg1.stem_count(), 4);
/// ```
pub fn fig6() -> Netlist {
    // invariant: every name below is declared exactly once and every
    // fanin is declared before use, so no builder call can fail.
    let mut b = NetlistBuilder::new("fig6");
    b.input("s1").expect("fresh name");
    b.input("s2").expect("fresh name");
    // s1's three branches: x1 direct, and the internal stems s3, s4.
    b.gate("x1", GateKind::Buf, &["s1"]).expect("valid");
    b.gate("s3", GateKind::Not, &["s1"]).expect("valid");
    b.gate("s4", GateKind::Buf, &["s1"]).expect("valid");
    // s3 and s4 each fan out twice.
    b.gate("c1", GateKind::Buf, &["s3"]).expect("valid");
    b.gate("c2", GateKind::Not, &["s3"]).expect("valid");
    b.gate("d1", GateKind::Buf, &["s4"]).expect("valid");
    b.gate("d2", GateKind::Not, &["s4"]).expect("valid");
    // s2's two branches.
    b.gate("b1", GateKind::Buf, &["s2"]).expect("valid");
    b.gate("b2", GateKind::Not, &["s2"]).expect("valid");
    // sg2: reconvergence of s3/s4 (and transitively s1).
    b.gate("m1", GateKind::And, &["c1", "d1"]).expect("valid");
    b.gate("m2", GateKind::And, &["c2", "d2"]).expect("valid");
    b.gate("sg2", GateKind::Or, &["m1", "m2"]).expect("valid");
    // sg1: reconvergence of everything, through inputs a and b as in the
    // paper's figure.
    b.gate("a", GateKind::And, &["sg2", "b1"]).expect("valid");
    b.gate("b", GateKind::Or, &["x1", "b2"]).expect("valid");
    b.gate("sg1", GateKind::Nand, &["a", "b"]).expect("valid");
    b.output("sg1").expect("declared");
    b.build().expect("fig6 netlist is a valid DAG")
}

/// A 2:1 multiplexer — the smallest reconvergent circuit
/// (`y = (a AND s) OR (b AND NOT s)`, stem `s`).
pub fn mux2() -> Netlist {
    // invariant: static unique names, fanins declared before use — the
    // builder calls cannot fail.
    let mut b = NetlistBuilder::new("mux2");
    b.input("a").expect("fresh name");
    b.input("b").expect("fresh name");
    b.input("s").expect("fresh name");
    b.gate("ns", GateKind::Not, &["s"]).expect("valid");
    b.gate("t0", GateKind::And, &["a", "s"]).expect("valid");
    b.gate("t1", GateKind::And, &["b", "ns"]).expect("valid");
    b.gate("y", GateKind::Or, &["t0", "t1"]).expect("valid");
    b.output("y").expect("declared");
    b.build().expect("mux2 netlist is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::SupportSets;

    #[test]
    fn c17_structure() {
        let nl = c17();
        assert_eq!(nl.gate_count(), 6);
        assert_eq!(nl.max_level(), 3);
        let supports = SupportSets::compute(&nl);
        // Stems of c17: inputs 3, and gates 11, 16.
        let stem_names: Vec<&str> = supports.stems().iter().map(|&s| nl.node_name(s)).collect();
        assert_eq!(stem_names, vec!["3", "11", "16"]);
    }

    #[test]
    fn c17_logic() {
        let nl = c17();
        let g22 = nl.node_id("22").unwrap();
        let g23 = nl.node_id("23").unwrap();
        // Inputs ordered 1, 2, 3, 6, 7.
        let vals = nl.eval(&[true, true, true, true, true]);
        // 10 = !(1&3) = 0; 11 = !(3&6) = 0; 16 = !(2&11) = 1;
        // 19 = !(11&7) = 1; 22 = !(10&16) = 1; 23 = !(16&19) = 0.
        assert!(vals[g22.index()]);
        assert!(!vals[g23.index()]);
    }

    #[test]
    fn mux2_logic() {
        let nl = mux2();
        let y = nl.node_id("y").unwrap();
        // Inputs ordered a, b, s.
        for a in [false, true] {
            for b in [false, true] {
                for s in [false, true] {
                    let vals = nl.eval(&[a, b, s]);
                    assert_eq!(vals[y.index()], if s { a } else { b });
                }
            }
        }
    }

    #[test]
    fn fig6_stems() {
        let nl = fig6();
        let supports = SupportSets::compute(&nl);
        let stem_names: Vec<&str> = supports.stems().iter().map(|&s| nl.node_name(s)).collect();
        assert_eq!(stem_names, vec!["s1", "s2", "s3", "s4"]);
    }
}
