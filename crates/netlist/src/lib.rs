//! Gate-level netlist substrate for statistical timing analysis.
//!
//! Provides everything the probabilistic-event-propagation analyzer (crate
//! `pep-core`) needs to know about circuit *structure*:
//!
//! * [`Netlist`] — an immutable, validated combinational gate-level circuit
//!   built through [`NetlistBuilder`], with topological order and logic
//!   levels precomputed,
//! * [`parse_bench`] / [`to_bench`] — the ISCAS-85/89 `.bench` format
//!   (sequential elements are cut into pseudo-PI/PO pairs, matching the
//!   paper's use of the "combinational parts of ISCAS89"),
//! * [`cone`] — fanin/fanout cones and per-node stem-support sets,
//! * [`supergate`] — reconvergence detection and Seth–Agrawal-style
//!   supergate extraction with the paper's depth limit `D` (§3.1, §3.3),
//! * [`generate`] — deterministic synthetic circuit generators, including
//!   ISCAS89-profile circuits standing in for the paper's benchmarks,
//! * [`samples`] — small embedded circuits (c17, the paper's Fig. 6).
//!
//! # Example
//!
//! ```
//! use pep_netlist::{GateKind, NetlistBuilder};
//!
//! let mut b = NetlistBuilder::new("half_adder");
//! b.input("a")?;
//! b.input("b")?;
//! b.gate("sum", GateKind::Xor, &["a", "b"])?;
//! b.gate("carry", GateKind::And, &["a", "b"])?;
//! b.output("sum")?;
//! b.output("carry")?;
//! let nl = b.build()?;
//! assert_eq!(nl.gate_count(), 2);
//! assert_eq!(nl.primary_inputs().len(), 2);
//! # Ok::<(), pep_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod cone;
pub mod dot;
mod error;
mod gate;
pub mod generate;
mod netlist;
mod parser;
pub mod samples;
pub mod supergate;
mod writer;

pub use bitset::BitSet;
pub use error::NetlistError;
pub use gate::GateKind;
pub use netlist::{Netlist, NetlistBuilder, NodeId};
pub use parser::parse_bench;
pub use writer::to_bench;
