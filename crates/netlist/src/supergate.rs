//! Supergate extraction (paper §3.1, §3.3).
//!
//! A *supergate* is a single-output subcircuit whose inputs are mutually
//! independent signals [Seth–Agrawal]. Events propagated from a fanout stem
//! reconverge *inside* a supergate, so arrival-time evaluation at the
//! supergate's output gate must condition on the stem events
//! (sampling-evaluation, implemented in `pep-core`) instead of combining
//! fanin groups with a plain min/max.
//!
//! Extraction grows the region backward from a reconvergent output gate
//! until the input frontier is pairwise support-disjoint. The paper's
//! approximation knob `D` limits how many logic levels the region may span;
//! a truncated supergate has (weakly) correlated inputs, trading accuracy
//! for run time (§3.3, Fig. 9).

use crate::cone::SupportSets;
use crate::{BitSet, GateKind, Netlist, NodeId};
use serde::{Deserialize, Serialize};

/// A single-output subcircuit with (ideally) independent inputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Supergate {
    /// The reconvergent output gate this supergate was grown from.
    pub output: NodeId,
    /// Input frontier signals, deduplicated, in topological order. Their
    /// arrival-time groups come from the surrounding analysis.
    pub inputs: Vec<NodeId>,
    /// Interior nodes (every gate strictly inside, including `output`),
    /// in topological order — the re-propagation schedule.
    pub interior: Vec<NodeId>,
    /// Stems whose fanout branches reconverge within this supergate
    /// (frontier stems with ≥2 interior branches and interior stems),
    /// in topological order — the sampling-evaluation schedule.
    pub stems: Vec<NodeId>,
    /// Whether the depth limit stopped expansion before the frontier became
    /// independent (inputs may be weakly correlated).
    pub truncated: bool,
}

impl Supergate {
    /// Number of interior gates (the paper's `N_g` of Table 1).
    pub fn gate_count(&self) -> usize {
        self.interior.len()
    }

    /// Number of stems to condition on (the paper's `N_s` of Table 1).
    pub fn stem_count(&self) -> usize {
        self.stems.len()
    }
}

/// Grows the supergate of `output`.
///
/// `depth_limit` is the paper's `D`: a frontier node more than `D` logic
/// levels above the deepest point may not be expanded further; `None` means
/// exact (unbounded) extraction.
///
/// The returned region is *well-formed*: every interior node's fanins are
/// interior or frontier, and (when not truncated) frontier supports are
/// pairwise disjoint.
///
/// Convenience wrapper over [`SupergateExtractor`]; callers extracting
/// many supergates should hold an extractor to reuse its scratch buffers.
///
/// # Panics
///
/// Panics if `output` is a primary input.
pub fn extract(
    netlist: &Netlist,
    supports: &SupportSets,
    output: NodeId,
    depth_limit: Option<u32>,
) -> Supergate {
    SupergateExtractor::new(netlist, supports, depth_limit).extract(output)
}

/// Reusable supergate extraction engine.
///
/// Holds per-circuit scratch buffers so that extracting thousands of
/// (heavily overlapping) supergates allocates nothing per call and tracks
/// stem conflicts incrementally.
#[derive(Debug)]
pub struct SupergateExtractor<'a> {
    netlist: &'a Netlist,
    supports: &'a SupportSets,
    depth_limit: Option<u32>,
    in_frontier: Vec<bool>,
    in_interior: Vec<bool>,
    /// How many current frontier nodes carry each (tracked) stem.
    counts: Vec<u16>,
    /// Stems carried by two or more frontier nodes.
    conflicted: BitSet,
    /// `level_masks[l]` = stems whose logic level is at least `l`; the
    /// active mask makes the depth cut-off a word-wise AND instead of a
    /// per-bit level test.
    level_masks: Vec<BitSet>,
    /// Stems below this level are ignored during the current extraction:
    /// the depth limit makes their conflicts unresolvable anyway, so
    /// chasing them would only inflate the region.
    level_floor: u32,
    frontier: Vec<NodeId>,
    interior: Vec<NodeId>,
}

impl<'a> SupergateExtractor<'a> {
    /// Creates an extractor for the circuit with the paper's depth limit
    /// `D` (`None` = exact extraction).
    pub fn new(netlist: &'a Netlist, supports: &'a SupportSets, depth_limit: Option<u32>) -> Self {
        let n = netlist.node_count();
        let n_stems = supports.stems().len();
        let max_level = netlist.max_level() as usize;
        let mut level_masks = vec![BitSet::new(n_stems); max_level + 2];
        for (ord, &s) in supports.stems().iter().enumerate() {
            // Insert into every mask with threshold <= the stem's level.
            for mask in level_masks.iter_mut().take(netlist.level(s) as usize + 1) {
                mask.insert(ord);
            }
        }
        SupergateExtractor {
            netlist,
            supports,
            depth_limit,
            in_frontier: vec![false; n],
            in_interior: vec![false; n],
            counts: vec![0; n_stems],
            conflicted: BitSet::new(n_stems),
            level_masks,
            level_floor: 0,
            frontier: Vec::new(),
            interior: Vec::new(),
        }
    }

    fn add_frontier(&mut self, f: NodeId) {
        self.in_frontier[f.index()] = true;
        self.frontier.push(f);
        let mask = &self.level_masks[self.level_floor as usize];
        for ord in self.supports.support(f).intersection(mask) {
            self.counts[ord] += 1;
            if self.counts[ord] == 2 {
                self.conflicted.insert(ord);
            }
        }
    }

    fn remove_frontier(&mut self, idx: usize) -> NodeId {
        let f = self.frontier.swap_remove(idx);
        self.in_frontier[f.index()] = false;
        let mask = &self.level_masks[self.level_floor as usize];
        for ord in self.supports.support(f).intersection(mask) {
            self.counts[ord] -= 1;
            if self.counts[ord] == 1 {
                self.conflicted.remove(ord);
            }
        }
        f
    }

    /// Extracts the supergate of `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is a primary input.
    pub fn extract(&mut self, output: NodeId) -> Supergate {
        assert!(
            self.netlist.kind(output) != GateKind::Input,
            "a primary input cannot be a supergate output"
        );
        let netlist = self.netlist;
        let out_level = netlist.level(output);
        // A stem deeper than the depth budget cannot be surfaced by
        // expansion (the nodes just above it are unexpandable), so its
        // conflicts are ignored rather than chased to the D-boundary.
        self.level_floor = match self.depth_limit {
            Some(d) => out_level.saturating_sub(d),
            None => 0,
        };
        self.in_interior[output.index()] = true;
        self.interior.push(output);
        for fi in 0..netlist.fanins(output).len() {
            let f = netlist.fanins(output)[fi];
            if !self.in_frontier[f.index()] {
                self.add_frontier(f);
            }
        }

        let truncated = loop {
            // A frontier node is a *carrier* of a conflicted stem `s` if
            // `s` lies strictly inside its cone; carriers are the nodes to
            // expand. (The stem itself, when on the frontier, is kept: it
            // becomes an input stem of the supergate.)
            let mut best: Option<(usize, u32)> = None;
            let mut blocked = false;
            for (i, &f) in self.frontier.iter().enumerate() {
                let own = self.supports.stem_ordinal(f);
                if !self
                    .supports
                    .support(f)
                    .intersects_except(&self.conflicted, own)
                {
                    continue;
                }
                // Primary inputs never carry foreign stems (their support
                // is at most themselves), so `f` is a gate here.
                debug_assert!(netlist.kind(f) != GateKind::Input);
                let depth_ok = self
                    .depth_limit
                    .is_none_or(|d| out_level.saturating_sub(netlist.level(f)) < d);
                if !depth_ok {
                    blocked = true;
                    continue;
                }
                let level = netlist.level(f);
                if best.is_none_or(|(_, bl)| level > bl) {
                    best = Some((i, level));
                }
            }
            match best {
                None => {
                    // With a level floor active, unresolvable deep-stem
                    // correlation may remain between frontier signals even
                    // when no tracked conflict is blocked.
                    if !blocked && self.level_floor > 0 {
                        'outer: for (i, &a) in self.frontier.iter().enumerate() {
                            for &b in &self.frontier[i + 1..] {
                                if self.supports.correlated(a, b) {
                                    blocked = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                    break blocked;
                }
                Some((i, _)) => {
                    // Expand: f moves from frontier to interior, its fanins
                    // join the frontier unless already inside the region.
                    let f = self.remove_frontier(i);
                    self.in_interior[f.index()] = true;
                    self.interior.push(f);
                    for gi in 0..netlist.fanins(f).len() {
                        let g = netlist.fanins(f)[gi];
                        if !self.in_interior[g.index()] && !self.in_frontier[g.index()] {
                            self.add_frontier(g);
                        }
                    }
                }
            }
        };

        // Order inputs and interior topologically.
        let mut inputs = self.frontier.clone();
        inputs.sort_unstable_by_key(|&n| netlist.topo_position(n));
        let mut interior_sorted = std::mem::take(&mut self.interior);
        interior_sorted.sort_unstable_by_key(|&n| netlist.topo_position(n));

        // Stems of the supergate: any node (frontier or interior, except
        // the output) with two or more fanout branches into the interior.
        // Inputs and interior are each sorted, but interleave in global
        // topological position, so the collected stems are re-sorted.
        let mut stems = Vec::new();
        for &id in inputs.iter().chain(&interior_sorted) {
            if id == output {
                continue;
            }
            let branches = netlist
                .fanouts(id)
                .iter()
                .filter(|f| self.in_interior[f.index()])
                .count();
            if branches >= 2 {
                stems.push(id);
            }
        }
        stems.sort_unstable_by_key(|&n| netlist.topo_position(n));

        // Reset scratch state for the next call.
        while !self.frontier.is_empty() {
            self.remove_frontier(self.frontier.len() - 1);
        }
        for &id in &interior_sorted {
            self.in_interior[id.index()] = false;
        }
        debug_assert!(self.conflicted.is_empty());
        debug_assert!(self.counts.iter().all(|&c| c == 0));

        Supergate {
            output,
            inputs,
            interior: interior_sorted,
            stems,
            truncated,
        }
    }
}

/// Aggregate supergate statistics for a circuit — the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupergateStats {
    /// Number of reconvergent gates (= number of supergates).
    pub count: usize,
    /// Average interior gate count per supergate (`N_g`).
    pub avg_gates: f64,
    /// Average stem count per supergate (`N_s`).
    pub avg_stems: f64,
    /// Largest interior gate count seen.
    pub max_gates: usize,
    /// Largest stem count seen.
    pub max_stems: usize,
}

/// Extracts every supergate of the circuit (one per reconvergent gate) and
/// reports the Table 1 statistics.
pub fn stats(
    netlist: &Netlist,
    supports: &SupportSets,
    depth_limit: Option<u32>,
) -> SupergateStats {
    let mut count = 0usize;
    let mut total_gates = 0usize;
    let mut total_stems = 0usize;
    let mut max_gates = 0usize;
    let mut max_stems = 0usize;
    let mut extractor = SupergateExtractor::new(netlist, supports, depth_limit);
    for &id in netlist.topo_order() {
        if netlist.kind(id) == GateKind::Input || !supports.is_reconvergent(netlist, id) {
            continue;
        }
        let sg = extractor.extract(id);
        count += 1;
        total_gates += sg.gate_count();
        total_stems += sg.stem_count();
        max_gates = max_gates.max(sg.gate_count());
        max_stems = max_stems.max(sg.stem_count());
    }
    SupergateStats {
        count,
        avg_gates: if count == 0 {
            0.0
        } else {
            total_gates as f64 / count as f64
        },
        avg_stems: if count == 0 {
            0.0
        } else {
            total_stems as f64 / count as f64
        },
        max_gates,
        max_stems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples, GateKind, NetlistBuilder};

    fn diamond() -> Netlist {
        let mut b = NetlistBuilder::new("diamond");
        b.input("a").unwrap();
        b.gate("inv1", GateKind::Not, &["a"]).unwrap();
        b.gate("buf1", GateKind::Buf, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["inv1", "buf1"]).unwrap();
        b.output("y").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_supergate() {
        let nl = diamond();
        let s = SupportSets::compute(&nl);
        let y = nl.node_id("y").unwrap();
        let sg = extract(&nl, &s, y, None);
        assert_eq!(sg.output, y);
        assert!(!sg.truncated);
        // The frontier collapses to the stem `a` itself.
        assert_eq!(sg.inputs, vec![nl.node_id("a").unwrap()]);
        // Interior: inv1, buf1, y.
        assert_eq!(sg.interior.len(), 3);
        // One stem: `a` (a frontier stem with two interior branches).
        assert_eq!(sg.stems, vec![nl.node_id("a").unwrap()]);
    }

    #[test]
    fn region_is_well_formed() {
        let nl = samples::fig6();
        let s = SupportSets::compute(&nl);
        for &g in nl.topo_order() {
            if nl.kind(g) == GateKind::Input || !s.is_reconvergent(&nl, g) {
                continue;
            }
            let sg = extract(&nl, &s, g, None);
            let interior: std::collections::HashSet<_> = sg.interior.iter().copied().collect();
            let frontier: std::collections::HashSet<_> = sg.inputs.iter().copied().collect();
            // Every interior node's fanins stay inside the region.
            for &n in &sg.interior {
                for &f in nl.fanins(n) {
                    assert!(
                        interior.contains(&f) || frontier.contains(&f),
                        "fanin {} of interior {} escapes the region of {}",
                        nl.node_name(f),
                        nl.node_name(n),
                        nl.node_name(g),
                    );
                }
            }
            // Inputs are pairwise independent (not truncated here).
            assert!(!sg.truncated);
            for (i, &a) in sg.inputs.iter().enumerate() {
                for &b in &sg.inputs[i + 1..] {
                    assert!(
                        !s.correlated(a, b),
                        "supergate inputs {} and {} correlated",
                        nl.node_name(a),
                        nl.node_name(b)
                    );
                }
            }
        }
    }

    #[test]
    fn fig6_supergates() {
        // The paper's Fig. 6: SG1 contains stems S1..S4, SG2 contains
        // S2, S3, S4; the supergates overlap.
        let nl = samples::fig6();
        let s = SupportSets::compute(&nl);
        let sg1_out = nl.node_id("sg1").unwrap();
        let sg2_out = nl.node_id("sg2").unwrap();
        assert!(s.is_reconvergent(&nl, sg1_out));
        assert!(s.is_reconvergent(&nl, sg2_out));

        let sg1 = extract(&nl, &s, sg1_out, None);
        let sg2 = extract(&nl, &s, sg2_out, None);
        let stem_names =
            |sg: &Supergate| -> Vec<&str> { sg.stems.iter().map(|&n| nl.node_name(n)).collect() };
        assert_eq!(stem_names(&sg1), vec!["s1", "s2", "s3", "s4"]);
        assert_eq!(stem_names(&sg2), vec!["s1", "s3", "s4"]);
        // Overlap: both supergates contain the gates driving s3/s4's
        // reconvergence.
        let i1: std::collections::HashSet<_> = sg1.interior.iter().copied().collect();
        assert!(sg2.interior.iter().any(|n| i1.contains(n)));
    }

    #[test]
    fn depth_limit_truncates() {
        // A long diamond: stem at distance 4 from the reconvergent gate.
        let mut b = NetlistBuilder::new("deep");
        b.input("a").unwrap();
        b.gate("u1", GateKind::Buf, &["a"]).unwrap();
        b.gate("u2", GateKind::Buf, &["u1"]).unwrap();
        b.gate("u3", GateKind::Buf, &["u2"]).unwrap();
        b.gate("v1", GateKind::Not, &["a"]).unwrap();
        b.gate("v2", GateKind::Buf, &["v1"]).unwrap();
        b.gate("v3", GateKind::Buf, &["v2"]).unwrap();
        b.gate("y", GateKind::And, &["u3", "v3"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        let s = SupportSets::compute(&nl);
        let y = nl.node_id("y").unwrap();

        let exact = extract(&nl, &s, y, None);
        assert!(!exact.truncated);
        assert_eq!(exact.stems.len(), 1);
        assert_eq!(exact.interior.len(), 7);

        let limited = extract(&nl, &s, y, Some(2));
        assert!(limited.truncated);
        assert!(limited.interior.len() < exact.interior.len());
        // Truncated frontier stays correlated.
        assert!(limited
            .inputs
            .iter()
            .enumerate()
            .any(|(i, &a)| limited.inputs[i + 1..].iter().any(|&b| s.correlated(a, b))));

        // A generous limit reproduces the exact supergate.
        let wide = extract(&nl, &s, y, Some(10));
        assert_eq!(wide, exact);
    }

    #[test]
    fn duplicated_fanin_supergate() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a").unwrap();
        b.gate("y", GateKind::And, &["a", "a"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        let s = SupportSets::compute(&nl);
        let sg = extract(&nl, &s, nl.node_id("y").unwrap(), None);
        assert_eq!(sg.inputs, vec![nl.node_id("a").unwrap()]);
        assert_eq!(sg.stems, vec![nl.node_id("a").unwrap()]);
        assert!(!sg.truncated);
    }

    #[test]
    fn stats_on_fig6() {
        let nl = samples::fig6();
        let s = SupportSets::compute(&nl);
        let st = stats(&nl, &s, None);
        assert!(st.count >= 2);
        assert!(st.avg_gates >= 1.0);
        assert!(st.avg_stems >= 1.0);
        assert!(st.max_stems >= 3);
    }
}
