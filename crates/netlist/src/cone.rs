//! Fanin/fanout cones and stem-support analysis.
//!
//! Signal correlation in a combinational circuit is entirely mediated by
//! *fanout stems* (signals driving two or more gate pins): two signals are
//! correlated exactly when some stem reaches both of them. The
//! [`SupportSets`] table precomputes, for every node, the set of stems in
//! its fanin cone, making "are these signals independent?" a constant-ish
//! time bit-set intersection — the workhorse query of supergate extraction
//! (paper §3.1).

use crate::{BitSet, Netlist, NodeId};

/// All nodes in the fanin cone of `root`, including `root` itself,
/// in topological (fanins-first) order.
///
/// # Example
///
/// ```
/// use pep_netlist::{cone, GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.input("a")?;
/// b.input("b")?;
/// b.gate("y", GateKind::And, &["a", "b"])?;
/// b.output("y")?;
/// let nl = b.build()?;
/// let y = nl.node_id("y").expect("declared");
/// assert_eq!(cone::fanin_cone(&nl, y).len(), 3);
/// # Ok::<(), pep_netlist::NetlistError>(())
/// ```
pub fn fanin_cone(netlist: &Netlist, root: NodeId) -> Vec<NodeId> {
    let mut in_cone = vec![false; netlist.node_count()];
    in_cone[root.index()] = true;
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        for &f in netlist.fanins(n) {
            if !in_cone[f.index()] {
                in_cone[f.index()] = true;
                stack.push(f);
            }
        }
    }
    netlist
        .topo_order()
        .iter()
        .copied()
        .filter(|n| in_cone[n.index()])
        .collect()
}

/// All nodes in the fanout cone of `root`, including `root` itself,
/// in topological order.
pub fn fanout_cone(netlist: &Netlist, root: NodeId) -> Vec<NodeId> {
    let mut in_cone = vec![false; netlist.node_count()];
    in_cone[root.index()] = true;
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        for &f in netlist.fanouts(n) {
            if !in_cone[f.index()] {
                in_cone[f.index()] = true;
                stack.push(f);
            }
        }
    }
    netlist
        .topo_order()
        .iter()
        .copied()
        .filter(|n| in_cone[n.index()])
        .collect()
}

/// Per-node stem-support sets.
///
/// For each node `n`, `support(n)` contains every fanout stem in the fanin
/// cone of `n`, *including `n` itself if `n` is a stem*. Two signals are
/// correlated (share randomness) iff their supports intersect, because any
/// common ancestry must pass through a node that fans out.
///
/// # Example
///
/// ```
/// use pep_netlist::{cone::SupportSets, GateKind, NetlistBuilder};
///
/// // s fans out to g1 and g2, which reconverge at y.
/// let mut b = NetlistBuilder::new("diamond");
/// b.input("s")?;
/// b.gate("g1", GateKind::Not, &["s"])?;
/// b.gate("g2", GateKind::Buf, &["s"])?;
/// b.gate("y", GateKind::And, &["g1", "g2"])?;
/// b.output("y")?;
/// let nl = b.build()?;
/// let supports = SupportSets::compute(&nl);
/// let g1 = nl.node_id("g1").expect("declared");
/// let g2 = nl.node_id("g2").expect("declared");
/// assert!(supports.correlated(g1, g2));
/// # Ok::<(), pep_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SupportSets {
    /// Stems in topological order.
    stems: Vec<NodeId>,
    /// Map node index -> stem ordinal (dense), `u32::MAX` if not a stem.
    stem_ordinal: Vec<u32>,
    /// Per node, the set of stem ordinals in its support.
    supports: Vec<BitSet>,
}

impl SupportSets {
    /// Computes the support of every node in one topological sweep.
    pub fn compute(netlist: &Netlist) -> Self {
        let n = netlist.node_count();
        let stems = netlist.stems();
        let mut stem_ordinal = vec![u32::MAX; n];
        for (i, &s) in stems.iter().enumerate() {
            stem_ordinal[s.index()] = i as u32;
        }
        let mut supports = vec![BitSet::new(stems.len()); n];
        for &id in netlist.topo_order() {
            // Own stem bit first, then inherit every fanin's support.
            let ord = stem_ordinal[id.index()];
            if ord != u32::MAX {
                supports[id.index()].insert(ord as usize);
            }
            for fi in 0..netlist.fanins(id).len() {
                let f = netlist.fanins(id)[fi];
                if f != id {
                    let (a, b) = borrow_two(&mut supports, id.index(), f.index());
                    a.union_with(b);
                }
            }
        }
        SupportSets {
            stems,
            stem_ordinal,
            supports,
        }
    }

    /// The circuit's stems, in topological order (ordinal = position).
    pub fn stems(&self) -> &[NodeId] {
        &self.stems
    }

    /// The stem ordinal of a node, if it is a stem.
    pub fn stem_ordinal(&self, id: NodeId) -> Option<usize> {
        match self.stem_ordinal[id.index()] {
            u32::MAX => None,
            ord => Some(ord as usize),
        }
    }

    /// The stem with the given ordinal.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal` is out of range.
    pub fn stem(&self, ordinal: usize) -> NodeId {
        self.stems[ordinal]
    }

    /// The support set of a node (stem ordinals).
    pub fn support(&self, id: NodeId) -> &BitSet {
        &self.supports[id.index()]
    }

    /// Whether two signals share randomness (their supports intersect).
    /// A signal is always correlated with itself if its cone contains any
    /// stem.
    pub fn correlated(&self, a: NodeId, b: NodeId) -> bool {
        self.supports[a.index()].intersects(&self.supports[b.index()])
    }

    /// Whether the fanins of `gate` are mutually correlated — i.e. the gate
    /// is *reconvergent* and naive min/max combining would mix dependent
    /// events (paper §3.1).
    pub fn is_reconvergent(&self, netlist: &Netlist, gate: NodeId) -> bool {
        let fanins = netlist.fanins(gate);
        for (i, &a) in fanins.iter().enumerate() {
            for &b in &fanins[i + 1..] {
                if a == b || self.correlated(a, b) {
                    return true;
                }
            }
        }
        false
    }
}

/// Splits two distinct mutable borrows out of a slice.
fn borrow_two<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &T) {
    // invariant: callers pass a node index and one of its fanins; a
    // validated netlist has no self-loop, so i != j always holds.
    debug_assert_ne!(i, j);
    if i < j {
        let (lo, hi) = v.split_at_mut(j);
        (&mut lo[i], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(i);
        (&mut hi[0], &lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, NetlistBuilder};

    /// Builds: a -> inv1 -> y(and) <- buf1 <- a   (diamond on stem a),
    /// plus an independent input b -> z(not).
    fn diamond() -> Netlist {
        let mut b = NetlistBuilder::new("diamond");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("inv1", GateKind::Not, &["a"]).unwrap();
        b.gate("buf1", GateKind::Buf, &["a"]).unwrap();
        b.gate("y", GateKind::And, &["inv1", "buf1"]).unwrap();
        b.gate("z", GateKind::Not, &["b"]).unwrap();
        b.output("y").unwrap();
        b.output("z").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fanin_cone_contents() {
        let nl = diamond();
        let y = nl.node_id("y").unwrap();
        let cone: Vec<&str> = fanin_cone(&nl, y)
            .into_iter()
            .map(|n| nl.node_name(n))
            .collect();
        assert_eq!(cone, vec!["a", "inv1", "buf1", "y"]);
    }

    #[test]
    fn fanout_cone_contents() {
        let nl = diamond();
        let a = nl.node_id("a").unwrap();
        let cone: Vec<&str> = fanout_cone(&nl, a)
            .into_iter()
            .map(|n| nl.node_name(n))
            .collect();
        assert_eq!(cone, vec!["a", "inv1", "buf1", "y"]);
    }

    #[test]
    fn supports_track_stems() {
        let nl = diamond();
        let s = SupportSets::compute(&nl);
        let a = nl.node_id("a").unwrap();
        let inv1 = nl.node_id("inv1").unwrap();
        let buf1 = nl.node_id("buf1").unwrap();
        let z = nl.node_id("z").unwrap();
        // `a` is the only stem.
        assert_eq!(s.stems(), &[a]);
        assert_eq!(s.stem_ordinal(a), Some(0));
        assert_eq!(s.stem_ordinal(inv1), None);
        assert!(s.support(inv1).contains(0));
        assert!(s.support(buf1).contains(0));
        assert!(s.support(a).contains(0), "stems include themselves");
        assert!(s.support(z).is_empty());
        assert!(s.correlated(inv1, buf1));
        assert!(!s.correlated(inv1, z));
    }

    #[test]
    fn reconvergence_detection() {
        let nl = diamond();
        let s = SupportSets::compute(&nl);
        assert!(s.is_reconvergent(&nl, nl.node_id("y").unwrap()));
        assert!(!s.is_reconvergent(&nl, nl.node_id("z").unwrap()));
        assert!(!s.is_reconvergent(&nl, nl.node_id("inv1").unwrap()));
    }

    #[test]
    fn duplicated_fanin_is_reconvergent() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a").unwrap();
        b.gate("y", GateKind::And, &["a", "a"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        let s = SupportSets::compute(&nl);
        assert!(s.is_reconvergent(&nl, nl.node_id("y").unwrap()));
    }

    #[test]
    fn tree_circuit_has_no_reconvergence() {
        let mut b = NetlistBuilder::new("tree");
        for i in 0..4 {
            b.input(&format!("i{i}")).unwrap();
        }
        b.gate("l", GateKind::And, &["i0", "i1"]).unwrap();
        b.gate("r", GateKind::Or, &["i2", "i3"]).unwrap();
        b.gate("y", GateKind::Xor, &["l", "r"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        let s = SupportSets::compute(&nl);
        assert!(s.stems().is_empty());
        for id in nl.node_ids() {
            assert!(!s.is_reconvergent(&nl, id));
        }
    }
}
