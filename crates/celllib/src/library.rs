//! A small text format for custom statistical cell libraries.
//!
//! The built-in [`DelayModel`] rule (mean from pin
//! counts) matches the paper's experiments, but real users carry per-cell
//! characterization. `Library` holds per-gate-kind delay rules, parsed
//! from a simple line-oriented format:
//!
//! ```text
//! # kind   base  per_fanin  per_fanout  sigma_lo  sigma_hi
//! default  2.0   1.0        0.5         0.04      0.10
//! NAND     1.6   0.9        0.45        0.05      0.08
//! XOR      3.2   1.4        0.5         0.06      0.10
//! ```
//!
//! Unlisted kinds fall back to the `default` row. The library lowers to a
//! per-netlist [`Timing`] through
//! [`Library::annotate`].

use crate::{DelayModel, DelayShape, Timing};
use pep_netlist::{GateKind, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One cell kind's delay rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellRule {
    /// Constant part of the mean delay.
    pub base: f64,
    /// Mean-delay increment per input pin.
    pub per_fanin: f64,
    /// Mean-delay increment per fanout branch.
    pub per_fanout: f64,
    /// Lower bound of the per-cell σ/mean draw.
    pub sigma_lo: f64,
    /// Upper bound of the per-cell σ/mean draw.
    pub sigma_hi: f64,
}

impl CellRule {
    fn validate(&self) -> Result<(), String> {
        if ![
            self.base,
            self.per_fanin,
            self.per_fanout,
            self.sigma_lo,
            self.sigma_hi,
        ]
        .iter()
        .all(|v| v.is_finite())
        {
            return Err("all rule fields must be finite".to_owned());
        }
        if self.base + self.per_fanin <= 0.0 {
            return Err("smallest cells would get a non-positive mean".to_owned());
        }
        if !(0.0 < self.sigma_lo && self.sigma_lo <= self.sigma_hi && self.sigma_hi < 1.0) {
            return Err("need 0 < sigma_lo <= sigma_hi < 1".to_owned());
        }
        Ok(())
    }
}

/// Errors from parsing a library file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibraryError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "library parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseLibraryError {}

/// A statistical cell library: per-gate-kind delay rules plus a default.
///
/// # Example
///
/// ```
/// use pep_celllib::library::Library;
/// use pep_netlist::samples;
///
/// let lib = Library::parse(
///     "default 2.0 1.0 0.5 0.04 0.10\n\
///      NAND    1.6 0.9 0.45 0.05 0.08\n",
/// )?;
/// let nl = samples::c17(); // all NANDs
/// let timing = lib.annotate(&nl, 7);
/// let g = nl.node_id("10").expect("c17 gate");
/// // NAND with 2 fanins, 1 fanout: 1.6 + 2*0.9 + 1*0.45.
/// assert!((timing.cell_arc(g, 0).mean() - 3.85).abs() < 1e-12);
/// # Ok::<(), pep_celllib::library::ParseLibraryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    default: CellRule,
    rules: HashMap<GateKind, CellRule>,
    shape: DelayShape,
}

impl Library {
    /// A library in which every kind uses the paper's default rule.
    pub fn dac2001() -> Self {
        Library {
            default: CellRule {
                base: 2.0,
                per_fanin: 1.0,
                per_fanout: 0.5,
                sigma_lo: 0.04,
                sigma_hi: 0.10,
            },
            rules: HashMap::new(),
            shape: DelayShape::Normal,
        }
    }

    /// Parses the line-oriented library format (see the module docs).
    ///
    /// # Errors
    ///
    /// Reports the first malformed line, unknown gate kind, invalid rule,
    /// or a missing `default` row.
    pub fn parse(source: &str) -> Result<Self, ParseLibraryError> {
        let mut default = None;
        let mut rules = HashMap::new();
        for (lineno, raw) in source.lines().enumerate() {
            let lineno = lineno + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 6 {
                return Err(ParseLibraryError {
                    line: lineno,
                    message: format!(
                        "expected `kind base per_fanin per_fanout sigma_lo sigma_hi`, got {} fields",
                        fields.len()
                    ),
                });
            }
            let nums: Vec<f64> = fields[1..]
                .iter()
                .map(|f| {
                    f.parse::<f64>().map_err(|_| ParseLibraryError {
                        line: lineno,
                        message: format!("`{f}` is not a number"),
                    })
                })
                .collect::<Result<_, _>>()?;
            let rule = CellRule {
                base: nums[0],
                per_fanin: nums[1],
                per_fanout: nums[2],
                sigma_lo: nums[3],
                sigma_hi: nums[4],
            };
            rule.validate().map_err(|message| ParseLibraryError {
                line: lineno,
                message,
            })?;
            if fields[0].eq_ignore_ascii_case("default") {
                default = Some(rule);
            } else {
                let kind =
                    GateKind::from_bench_name(fields[0]).ok_or_else(|| ParseLibraryError {
                        line: lineno,
                        message: format!("unknown gate kind `{}`", fields[0]),
                    })?;
                rules.insert(kind, rule);
            }
        }
        let default = default.ok_or(ParseLibraryError {
            line: 0,
            message: "missing `default` row".to_owned(),
        })?;
        Ok(Library {
            default,
            rules,
            shape: DelayShape::Normal,
        })
    }

    /// Replaces the pdf shape (normal by default).
    #[must_use]
    pub fn with_shape(mut self, shape: DelayShape) -> Self {
        self.shape = shape;
        self
    }

    /// The rule in effect for a gate kind.
    pub fn rule(&self, kind: GateKind) -> &CellRule {
        self.rules.get(&kind).unwrap_or(&self.default)
    }

    /// Serializes back to the text format (kinds sorted for stability).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# kind base per_fanin per_fanout sigma_lo sigma_hi\n");
        let fmt_rule = |name: &str, r: &CellRule| {
            format!(
                "{name} {} {} {} {} {}\n",
                r.base, r.per_fanin, r.per_fanout, r.sigma_lo, r.sigma_hi
            )
        };
        out.push_str(&fmt_rule("default", &self.default));
        let mut kinds: Vec<_> = self.rules.keys().copied().collect();
        kinds.sort_by_key(|k| k.bench_name());
        for k in kinds {
            out.push_str(&fmt_rule(k.bench_name(), &self.rules[&k]));
        }
        out
    }

    /// Annotates a netlist: each gate draws its σ fraction from its kind's
    /// rule, keyed on `(seed, node name)` exactly like
    /// [`Timing::annotate`].
    pub fn annotate(&self, netlist: &Netlist, seed: u64) -> Timing {
        Timing::annotate_with(netlist, seed, self.shape, |kind, fanins, fanouts| {
            let r = self.rule(kind);
            let mean = r.base + r.per_fanin * fanins as f64 + r.per_fanout * fanouts as f64;
            (mean, r.sigma_lo, r.sigma_hi)
        })
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::dac2001()
    }
}

impl From<&DelayModel> for Library {
    /// Lifts the uniform pin-count model into a single-rule library.
    fn from(model: &DelayModel) -> Self {
        let (sigma_lo, sigma_hi) = model.sigma_range();
        Library {
            default: CellRule {
                base: model.mean_delay(0, 0),
                per_fanin: model.mean_delay(1, 0) - model.mean_delay(0, 0),
                per_fanout: model.mean_delay(0, 1) - model.mean_delay(0, 0),
                sigma_lo,
                sigma_hi,
            },
            rules: HashMap::new(),
            shape: model.shape(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_netlist::samples;

    const SAMPLE: &str = "\
# demo library
default 2.0 1.0 0.5 0.04 0.10
NAND    1.6 0.9 0.45 0.05 0.08
XOR     3.2 1.4 0.5  0.06 0.10
";

    #[test]
    fn parses_and_selects_rules() {
        let lib = Library::parse(SAMPLE).unwrap();
        assert_eq!(lib.rule(GateKind::Nand).base, 1.6);
        assert_eq!(lib.rule(GateKind::Xor).per_fanin, 1.4);
        // Unlisted kinds fall back to default.
        assert_eq!(lib.rule(GateKind::Or).base, 2.0);
    }

    #[test]
    fn text_round_trip() {
        let lib = Library::parse(SAMPLE).unwrap();
        let again = Library::parse(&lib.to_text()).unwrap();
        assert_eq!(lib, again);
    }

    #[test]
    fn parse_errors_located() {
        let err = Library::parse("default 2.0 1.0 0.5 0.04\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = Library::parse("default 2.0 1.0 0.5 0.04 0.10\nMAJ 1 1 1 .05 .06\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("MAJ"));
        let err = Library::parse("NAND 2.0 1.0 0.5 0.04 0.10\n").unwrap_err();
        assert!(err.message.contains("default"));
        let err = Library::parse("default 2.0 1.0 0.5 0.4 0.1\n").unwrap_err();
        assert!(err.message.contains("sigma"));
        let err = Library::parse("default x 1.0 0.5 0.04 0.10\n").unwrap_err();
        assert!(err.message.contains("not a number"));
    }

    #[test]
    fn annotation_uses_per_kind_rules() {
        let lib = Library::parse(SAMPLE).unwrap();
        let nl = samples::mux2(); // NOT, two ANDs, one OR
        let t = lib.annotate(&nl, 5);
        let ns = nl.node_id("ns").unwrap(); // NOT: 1 fanin, 1 fanout
        assert!((t.cell_arc(ns, 0).mean() - (2.0 + 1.0 + 0.5)).abs() < 1e-12);
        // σ fractions respect the default rule's range.
        let frac = t.cell_arc(ns, 0).std_dev() / t.cell_arc(ns, 0).mean();
        assert!((0.04..=0.10).contains(&frac));
    }

    #[test]
    fn library_from_model_matches_model_annotation() {
        let model = DelayModel::dac2001(9);
        let lib = Library::from(&model);
        let nl = samples::c17();
        let a = model_annotate(&nl, &model);
        let b = lib.annotate(&nl, model.seed());
        for id in nl.node_ids() {
            for pin in 0..nl.fanins(id).len() {
                assert_eq!(a.cell_arc(id, pin), b.cell_arc(id, pin));
            }
        }
    }

    fn model_annotate(nl: &Netlist, model: &DelayModel) -> Timing {
        Timing::annotate(nl, model)
    }
}
