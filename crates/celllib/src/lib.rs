//! Cell library and statistical delay annotation.
//!
//! The DAC 2001 experiments model every cell delay as a random variable
//! whose *mean is a function of the cell's number of inputs and outputs*
//! and whose standard deviation is a fixed, per-cell fraction of the mean
//! drawn from (4%, 10%) (§4). [`DelayModel`] encodes that rule (and lets a
//! user change every parameter); [`Timing`] applies it to a
//! [`Netlist`](pep_netlist::Netlist), producing one pin-to-pin delay
//! distribution per timing arc plus optional wire delays per fanout
//! branch.
//!
//! # Example
//!
//! ```
//! use pep_celllib::{DelayModel, Timing};
//! use pep_netlist::samples;
//!
//! let nl = samples::c17();
//! let timing = Timing::annotate(&nl, &DelayModel::dac2001(7));
//! let g10 = nl.node_id("10").expect("c17 gate");
//! let arc = timing.cell_arc(g10, 0);
//! assert!(arc.mean() > 0.0);
//! let frac = arc.std_dev() / arc.mean();
//! assert!((0.04..=0.10).contains(&frac));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod library;
mod model;
mod timing;

pub use library::Library;
pub use model::{DelayModel, DelayShape};
pub use timing::Timing;
