use crate::{DelayModel, DelayShape};
use pep_dist::{ContinuousDist, TimeStep};
use pep_netlist::{GateKind, Netlist, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A netlist's complete statistical timing annotation: one pin-to-pin cell
/// delay per timing arc and one wire delay per arc (a point mass at zero
/// when the model's wire fraction is zero).
///
/// Arcs are addressed as `(gate, fanin pin index)`; pin ordering follows
/// [`Netlist::fanins`].
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, Timing};
/// use pep_netlist::samples;
///
/// let nl = samples::mux2();
/// let t = Timing::annotate(&nl, &DelayModel::dac2001(3));
/// let y = nl.node_id("y").expect("present");
/// // Arcs from both fanins of the OR gate exist and share the cell's σ.
/// let a0 = t.cell_arc(y, 0);
/// let a1 = t.cell_arc(y, 1);
/// assert_eq!(a0.std_dev(), a1.std_dev());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timing {
    /// `cell[n][pin]`: pin-to-pin delay of gate `n` from fanin `pin`.
    cell: Vec<Vec<ContinuousDist>>,
    /// `wire[n][pin]`: delay of the wire feeding gate `n`'s fanin `pin`.
    wire: Vec<Vec<ContinuousDist>>,
    has_wire_delays: bool,
}

impl Timing {
    /// Annotates `netlist` according to `model`.
    ///
    /// Per cell: mean from the model's pin-count rule, σ a per-cell
    /// fraction of the mean drawn (seeded, deterministic) from the model's
    /// range; every input pin of the same cell shares the cell's
    /// distribution, matching the paper's per-cell σ statement. Wire
    /// delays, when enabled, get the same relative σ as their driver.
    ///
    /// The per-cell draw is keyed on the model seed and the *node name*,
    /// so the annotation is independent of declaration order: a netlist
    /// that round-trips through `.bench` text gets identical timing.
    pub fn annotate(netlist: &Netlist, model: &DelayModel) -> Self {
        let (slo, shi) = model.sigma_range();
        let n = netlist.node_count();
        let mut cell = Vec::with_capacity(n);
        let mut wire = Vec::with_capacity(n);
        let zero = ContinuousDist::point(0.0).expect("0.0 is finite");
        // Per-driver wire parameters must be drawn deterministically even
        // though arcs are stored per-sink, so precompute them first.
        let mut wire_dist: Vec<ContinuousDist> = Vec::with_capacity(n);
        for id in netlist.node_ids() {
            let fanins = netlist.fanins(id).len();
            let fanouts = netlist.fanout_count(id);
            let mut rng = StdRng::seed_from_u64(model.seed() ^ fnv1a(netlist.node_name(id)));
            let (cell_dist, sigma_frac) = if netlist.kind(id) == GateKind::Input {
                (zero, rng.random_range(slo..=shi))
            } else {
                let mean = model.mean_delay(fanins, fanouts.max(1));
                let frac = rng.random_range(slo..=shi);
                (make_dist(model.shape(), mean, mean * frac), frac)
            };
            cell.push(vec![cell_dist; fanins]);
            let w = if model.wire_fraction() > 0.0 {
                let wmean = model.wire_fraction() * model.mean_delay(fanins.max(1), fanouts.max(1));
                make_dist(model.shape(), wmean, wmean * sigma_frac)
            } else {
                zero
            };
            wire_dist.push(w);
            wire.push(Vec::new());
        }
        for id in netlist.node_ids() {
            let arcs: Vec<ContinuousDist> = netlist
                .fanins(id)
                .iter()
                .map(|&f| wire_dist[f.index()])
                .collect();
            wire[id.index()] = arcs;
        }
        Timing {
            cell,
            wire,
            has_wire_delays: model.wire_fraction() > 0.0,
        }
    }

    /// Annotates `netlist` with a caller-supplied delay rule — the
    /// lowering path for custom [`Library`](crate::library::Library)
    /// rules.
    ///
    /// `rule(kind, fanins, fanouts)` returns `(mean, sigma_lo, sigma_hi)`
    /// for a cell; the per-cell σ fraction is drawn from that range,
    /// keyed on `(seed, node name)` exactly like
    /// [`annotate`](Timing::annotate). No wire delays are produced.
    pub fn annotate_with<F>(netlist: &Netlist, seed: u64, shape: DelayShape, rule: F) -> Self
    where
        F: Fn(GateKind, usize, usize) -> (f64, f64, f64),
    {
        let n = netlist.node_count();
        let mut cell = Vec::with_capacity(n);
        let mut wire = Vec::with_capacity(n);
        let zero = ContinuousDist::point(0.0).expect("0.0 is finite");
        for id in netlist.node_ids() {
            let fanins = netlist.fanins(id).len();
            let fanouts = netlist.fanout_count(id);
            let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(netlist.node_name(id)));
            let dist = if netlist.kind(id) == GateKind::Input {
                // Keep the RNG stream aligned with `annotate`.
                let _ = rng.random_range(0.0f64..=1.0);
                zero
            } else {
                let (mean, slo, shi) = rule(netlist.kind(id), fanins, fanouts.max(1));
                assert!(
                    mean > 0.0 && 0.0 < slo && slo <= shi && shi < 1.0,
                    "delay rule returned invalid parameters for {}",
                    netlist.node_name(id)
                );
                let frac = rng.random_range(slo..=shi);
                make_dist(shape, mean, mean * frac)
            };
            cell.push(vec![dist; fanins]);
            wire.push(vec![zero; fanins]);
        }
        Timing {
            cell,
            wire,
            has_wire_delays: false,
        }
    }

    /// A unit-delay annotation (every gate delay is a point mass at
    /// `delay`, no wires) — handy for tests with exactly known answers.
    pub fn uniform(netlist: &Netlist, delay: f64) -> Self {
        let d = ContinuousDist::point(delay).expect("caller supplies finite delay");
        let zero = ContinuousDist::point(0.0).expect("0.0 is finite");
        let mut cell = Vec::with_capacity(netlist.node_count());
        let mut wire = Vec::with_capacity(netlist.node_count());
        for id in netlist.node_ids() {
            let fanins = netlist.fanins(id).len();
            let arc = if netlist.kind(id) == GateKind::Input {
                zero
            } else {
                d
            };
            cell.push(vec![arc; fanins]);
            wire.push(vec![zero; fanins]);
        }
        Timing {
            cell,
            wire,
            has_wire_delays: false,
        }
    }

    /// The pin-to-pin delay of `gate` from its `pin`-th fanin.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the gate.
    #[inline]
    pub fn cell_arc(&self, gate: NodeId, pin: usize) -> &ContinuousDist {
        &self.cell[gate.index()][pin]
    }

    /// The wire delay feeding `gate`'s `pin`-th fanin (a zero point mass
    /// when wire delays are disabled).
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the gate.
    #[inline]
    pub fn wire_arc(&self, gate: NodeId, pin: usize) -> &ContinuousDist {
        &self.wire[gate.index()][pin]
    }

    /// Whether the annotation carries non-trivial wire delays.
    pub fn has_wire_delays(&self) -> bool {
        self.has_wire_delays
    }

    /// The mean total delay through an arc (cell + wire).
    pub fn arc_mean(&self, gate: NodeId, pin: usize) -> f64 {
        self.cell_arc(gate, pin).mean() + self.wire_arc(gate, pin).mean()
    }

    /// A discretization step sized so the *average* cell-delay
    /// distribution spans about `n_samples` grid points — the paper's
    /// `N_s` knob (§4, Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if `n_samples` is zero or the netlist has no gates with
    /// positive-width delay distributions.
    pub fn step_for_samples(&self, n_samples: usize) -> TimeStep {
        assert!(n_samples > 0, "need at least one sample");
        let mut total_width = 0.0;
        let mut count = 0usize;
        for arcs in &self.cell {
            for arc in arcs {
                let (lo, hi) = arc.discretization_range();
                if hi > lo {
                    total_width += hi - lo;
                    count += 1;
                }
            }
        }
        assert!(count > 0, "no statistical delays to discretize");
        TimeStep::new(total_width / count as f64 / n_samples as f64)
            .expect("positive width yields a positive step")
    }
}

/// FNV-1a hash of a node name, keying the per-cell σ draw.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn make_dist(shape: DelayShape, mean: f64, sigma: f64) -> ContinuousDist {
    if sigma <= 0.0 {
        return ContinuousDist::point(mean).expect("finite mean");
    }
    match shape {
        DelayShape::Normal => ContinuousDist::normal(mean, sigma).expect("positive sigma"),
        DelayShape::Triangular => {
            // A symmetric triangle with std σ spans mean ± √6·σ.
            let half = 6.0f64.sqrt() * sigma;
            ContinuousDist::triangular(mean - half, mean, mean + half).expect("ordered bounds")
        }
        DelayShape::Uniform => {
            // A uniform with std σ spans mean ± √3·σ.
            let half = 3.0f64.sqrt() * sigma;
            ContinuousDist::uniform(mean - half, mean + half).expect("ordered bounds")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_netlist::samples;

    #[test]
    fn annotation_is_deterministic() {
        let nl = samples::c17();
        let m = DelayModel::dac2001(11);
        let a = Timing::annotate(&nl, &m);
        let b = Timing::annotate(&nl, &m);
        for id in nl.node_ids() {
            for pin in 0..nl.fanins(id).len() {
                assert_eq!(a.cell_arc(id, pin), b.cell_arc(id, pin));
            }
        }
        let c = Timing::annotate(&nl, &m.with_seed(12));
        let g = nl.node_id("22").expect("c17 gate");
        assert_ne!(a.cell_arc(g, 0).std_dev(), c.cell_arc(g, 0).std_dev());
    }

    #[test]
    fn sigma_fraction_in_range() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(5));
        for id in nl.node_ids() {
            for pin in 0..nl.fanins(id).len() {
                let arc = t.cell_arc(id, pin);
                let frac = arc.std_dev() / arc.mean();
                assert!((0.04..=0.10).contains(&frac), "σ/mean {frac}");
            }
        }
    }

    #[test]
    fn mean_respects_pin_count_rule() {
        let nl = samples::c17();
        let m = DelayModel::dac2001(5);
        let t = Timing::annotate(&nl, &m);
        let g16 = nl.node_id("16").expect("c17 stem gate"); // 2 fanins, 2 fanouts
        let g22 = nl.node_id("22").expect("c17 output gate"); // 2 fanins, 0 fanouts (PO)
        assert_eq!(t.cell_arc(g16, 0).mean(), m.mean_delay(2, 2));
        assert_eq!(t.cell_arc(g22, 0).mean(), m.mean_delay(2, 1)); // fanout floor 1
        assert!(t.cell_arc(g16, 0).mean() > t.cell_arc(g22, 0).mean());
    }

    #[test]
    fn inputs_have_zero_delay() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(5));
        for &pi in nl.primary_inputs() {
            assert!(t.cell[pi.index()].is_empty(), "PIs have no arcs");
        }
    }

    #[test]
    fn wire_delays_disabled_by_default() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(5));
        assert!(!t.has_wire_delays());
        let g = nl.node_id("22").expect("c17 gate");
        assert_eq!(t.wire_arc(g, 0).mean(), 0.0);
        assert_eq!(t.wire_arc(g, 0).variance(), 0.0);
    }

    #[test]
    fn wire_delays_enabled() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(5).with_wire_fraction(0.2));
        assert!(t.has_wire_delays());
        let g22 = nl.node_id("22").expect("c17 gate");
        assert!(t.wire_arc(g22, 0).mean() > 0.0);
        assert!(t.arc_mean(g22, 0) > t.cell_arc(g22, 0).mean());
    }

    #[test]
    fn uniform_annotation() {
        let nl = samples::c17();
        let t = Timing::uniform(&nl, 3.0);
        let g = nl.node_id("10").expect("c17 gate");
        assert_eq!(t.cell_arc(g, 0).mean(), 3.0);
        assert_eq!(t.cell_arc(g, 0).variance(), 0.0);
    }

    #[test]
    fn shapes_match_requested_moments() {
        let nl = samples::c17();
        for shape in [
            DelayShape::Normal,
            DelayShape::Triangular,
            DelayShape::Uniform,
        ] {
            let t = Timing::annotate(&nl, &DelayModel::dac2001(5).with_shape(shape));
            let g = nl.node_id("16").expect("c17 gate");
            let arc = t.cell_arc(g, 0);
            let frac = arc.std_dev() / arc.mean();
            assert!(
                (0.04..=0.10).contains(&frac),
                "{shape:?} σ/mean out of range: {frac}"
            );
        }
    }

    #[test]
    fn step_for_samples_scales() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(5));
        let s10 = t.step_for_samples(10);
        let s20 = t.step_for_samples(20);
        assert!((s10.size() / s20.size() - 2.0).abs() < 1e-9);
    }
}
