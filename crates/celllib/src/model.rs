use serde::{Deserialize, Serialize};

/// The pdf shape given to each delay random variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayShape {
    /// Gaussian (the default process-variation model).
    Normal,
    /// Symmetric triangular over ±√6·σ (the paper's Fig. 2 shape).
    Triangular,
    /// Uniform over ±√3·σ.
    Uniform,
}

/// A parametric statistical delay model, playing the role of a cell
/// library.
///
/// The paper's §4 assignment rule is the default ([`DelayModel::dac2001`]):
/// mean = `base + per_fanin·(#inputs) + per_fanout·(#outputs)`, standard
/// deviation a per-cell constant fraction of the mean drawn uniformly from
/// `sigma_range` using the model's seed. Wire delays are off by default
/// (set [`wire_fraction`](DelayModel::with_wire_fraction) to enable).
///
/// # Example
///
/// ```
/// use pep_celllib::{DelayModel, DelayShape};
///
/// let model = DelayModel::dac2001(1)
///     .with_shape(DelayShape::Triangular)
///     .with_sigma_range(0.05, 0.08);
/// assert_eq!(model.shape(), DelayShape::Triangular);
/// assert!((model.mean_delay(2, 3) - (2.0 + 2.0 * 1.0 + 3.0 * 0.5)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    base: f64,
    per_fanin: f64,
    per_fanout: f64,
    sigma_lo: f64,
    sigma_hi: f64,
    shape: DelayShape,
    wire_fraction: f64,
    seed: u64,
}

impl DelayModel {
    /// The paper's §4 model: mean a linear function of pin counts
    /// (base 2.0, +1.0 per input pin, +0.5 per fanout branch, in arbitrary
    /// library time units), σ uniform in (4%, 10%) of the mean, normal
    /// shape, no wire delay.
    ///
    /// `seed` fixes the per-cell σ draws, so a given `(netlist, model)`
    /// pair always produces identical timing.
    pub fn dac2001(seed: u64) -> Self {
        DelayModel {
            base: 2.0,
            per_fanin: 1.0,
            per_fanout: 0.5,
            sigma_lo: 0.04,
            sigma_hi: 0.10,
            shape: DelayShape::Normal,
            wire_fraction: 0.0,
            seed,
        }
    }

    /// Replaces the mean-delay coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the resulting mean could be non-positive for a 1-input,
    /// 0-fanout cell (`base + per_fanin <= 0`).
    #[must_use]
    pub fn with_mean_coefficients(mut self, base: f64, per_fanin: f64, per_fanout: f64) -> Self {
        assert!(
            base + per_fanin > 0.0,
            "smallest cells would get a non-positive mean delay"
        );
        self.base = base;
        self.per_fanin = per_fanin;
        self.per_fanout = per_fanout;
        self
    }

    /// Replaces the σ/mean range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo <= hi < 1`.
    #[must_use]
    pub fn with_sigma_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo <= hi && hi < 1.0, "need 0 < lo <= hi < 1");
        self.sigma_lo = lo;
        self.sigma_hi = hi;
        self
    }

    /// Replaces the pdf shape.
    #[must_use]
    pub fn with_shape(mut self, shape: DelayShape) -> Self {
        self.shape = shape;
        self
    }

    /// Enables wire delays: each fanout branch gets a delay with mean
    /// `fraction` × the driving cell's mean (0 disables; the default).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative.
    #[must_use]
    pub fn with_wire_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction >= 0.0, "wire fraction must be non-negative");
        self.wire_fraction = fraction;
        self
    }

    /// Replaces the σ-draw seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The mean delay assigned to a cell with the given pin counts.
    pub fn mean_delay(&self, fanins: usize, fanouts: usize) -> f64 {
        self.base + self.per_fanin * fanins as f64 + self.per_fanout * fanouts as f64
    }

    /// The σ/mean range `(lo, hi)`.
    pub fn sigma_range(&self) -> (f64, f64) {
        (self.sigma_lo, self.sigma_hi)
    }

    /// The configured pdf shape.
    pub fn shape(&self) -> DelayShape {
        self.shape
    }

    /// The wire-delay fraction (0 = wire delays disabled).
    pub fn wire_fraction(&self) -> f64 {
        self.wire_fraction
    }

    /// The σ-draw seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_paper() {
        let m = DelayModel::dac2001(0);
        assert_eq!(m.sigma_range(), (0.04, 0.10));
        assert_eq!(m.shape(), DelayShape::Normal);
        assert_eq!(m.wire_fraction(), 0.0);
        // Mean grows with pin counts.
        assert!(m.mean_delay(3, 2) > m.mean_delay(2, 2));
        assert!(m.mean_delay(2, 3) > m.mean_delay(2, 2));
    }

    #[test]
    fn builder_validation() {
        let m = DelayModel::dac2001(0);
        let ok = m.clone().with_sigma_range(0.02, 0.02);
        assert_eq!(ok.sigma_range(), (0.02, 0.02));
        let r = std::panic::catch_unwind(|| m.clone().with_sigma_range(0.3, 0.2));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| m.clone().with_mean_coefficients(-5.0, 1.0, 0.0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| m.clone().with_wire_fraction(-0.1));
        assert!(r.is_err());
    }
}
