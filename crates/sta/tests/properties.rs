//! Property-based tests of the deterministic STA core, the Monte Carlo
//! engine and the transition simulator.

use pep_celllib::{DelayModel, Timing};
use pep_netlist::generate::{random_circuit, RandomCircuitSpec};
use pep_sta::arrivals::{critical_path, latest_output, nominal_arrivals};
use pep_sta::monte_carlo::{run_monte_carlo, McConfig};
use pep_sta::slack::{k_longest_paths, SlackReport};
use pep_sta::transition::simulate_transition;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = RandomCircuitSpec> {
    (2usize..16, 8usize..80, 2usize..8, 0.0f64..0.6, any::<u64>()).prop_map(
        |(inputs, gates, depth, inv, seed)| RandomCircuitSpec {
            name: "prop".into(),
            inputs,
            gates,
            depth: depth.min(gates),
            max_fanin: 3,
            level_reach: 2,
            window: 1.0,
            inverter_fraction: inv,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The critical path's re-accumulated delay equals the endpoint's
    /// arrival, for any circuit and annotation.
    #[test]
    fn critical_path_delay_matches_arrival(spec in arb_spec(), seed in any::<u64>()) {
        let nl = random_circuit(&spec);
        let t = Timing::annotate(&nl, &DelayModel::dac2001(seed));
        let arrivals = nominal_arrivals(&nl, &t);
        let Some((po, worst)) = latest_output(&nl, &arrivals) else {
            return Ok(());
        };
        let path = critical_path(&nl, &arrivals, |g, p| t.arc_mean(g, p), po);
        let mut acc = 0.0;
        for w in path.windows(2) {
            let pin = nl
                .fanins(w[1])
                .iter()
                .position(|&f| f == w[0])
                .expect("path edges exist");
            acc += t.arc_mean(w[1], pin);
        }
        prop_assert!((acc - worst).abs() < 1e-9);
        // And the K-path enumerator's first path has the same delay.
        let top = k_longest_paths(&nl, &t, 1);
        prop_assert!((top[0].delay - worst).abs() < 1e-9);
    }

    /// Slack is non-negative everywhere at the self-derived period, and
    /// relaxing the period raises every slack by exactly the relaxation.
    #[test]
    fn slack_shifts_with_period(spec in arb_spec(), seed in any::<u64>(), extra in 0.1f64..50.0) {
        let nl = random_circuit(&spec);
        let t = Timing::annotate(&nl, &DelayModel::dac2001(seed));
        let base = SlackReport::analyze(&nl, &t, None);
        prop_assert!(base.worst_slack() > -1e-9);
        let relaxed = SlackReport::analyze(&nl, &t, Some(base.clock_period() + extra));
        for id in nl.node_ids() {
            let b = base.slack(id);
            let r = relaxed.slack(id);
            if b.is_finite() {
                prop_assert!((r - b - extra).abs() < 1e-9);
            } else {
                prop_assert!(r.is_infinite());
            }
        }
    }

    /// Monte Carlo with zero-variance delays reproduces the nominal STA
    /// exactly, for any circuit.
    #[test]
    fn mc_degenerates_to_nominal(spec in arb_spec(), delay in 0.5f64..5.0) {
        let nl = random_circuit(&spec);
        let t = Timing::uniform(&nl, delay);
        let mc = run_monte_carlo(&nl, &t, &McConfig { runs: 3, ..McConfig::default() });
        let nominal = nominal_arrivals(&nl, &t);
        for id in nl.node_ids() {
            prop_assert!((mc.mean(id) - nominal[id.index()]).abs() < 1e-9);
            prop_assert_eq!(mc.std(id), 0.0);
        }
    }

    /// Transition simulation: final values match static evaluation and
    /// every switching node's time is at least its depth below the
    /// earliest switching input (with positive delays).
    #[test]
    fn transition_times_consistent(spec in arb_spec(), bits1 in any::<u64>(), bits2 in any::<u64>()) {
        let nl = random_circuit(&spec);
        let n_in = nl.primary_inputs().len();
        let v1: Vec<bool> = (0..n_in).map(|i| bits1 >> (i % 64) & 1 == 1).collect();
        let v2: Vec<bool> = (0..n_in).map(|i| bits2 >> (i % 64) & 1 == 1).collect();
        let sim = simulate_transition(&nl, &v1, &v2, |_, _| 1.0);
        let final_values = nl.eval(&v2);
        for id in nl.node_ids() {
            prop_assert_eq!(sim.final_values[id.index()], final_values[id.index()]);
            // A switching node switches no earlier than one delay after
            // some switching fanin (unit delays).
            if let Some(t) = sim.arrival[id.index()] {
                if nl.kind(id) != pep_netlist::GateKind::Input {
                    let fanin_times: Vec<f64> = nl
                        .fanins(id)
                        .iter()
                        .filter_map(|&f| sim.arrival[f.index()])
                        .collect();
                    prop_assert!(!fanin_times.is_empty());
                    let lo = fanin_times.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = fanin_times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!(t >= lo + 1.0 - 1e-9 && t <= hi + 1.0 + 1e-9);
                }
            }
        }
    }

    /// Monte Carlo statistics are independent of the thread count.
    #[test]
    fn mc_thread_count_invariant(spec in arb_spec()) {
        let nl = random_circuit(&spec);
        let t = Timing::annotate(&nl, &DelayModel::dac2001(2));
        let base = McConfig { runs: 64, ..McConfig::default() };
        let one = run_monte_carlo(&nl, &t, &McConfig { threads: 1, ..base.clone() });
        let many = run_monte_carlo(&nl, &t, &McConfig { threads: 5, ..base });
        for id in nl.node_ids() {
            prop_assert!((one.mean(id) - many.mean(id)).abs() < 1e-9);
            prop_assert!((one.std(id) - many.std(id)).abs() < 1e-9);
        }
    }
}
