//! Monte Carlo statistical static timing analysis — the paper's baseline.
//!
//! Each run samples a concrete delay for every cell (one draw per cell,
//! shared by its pins) and every wire arc, then performs one deterministic
//! arrival-time analysis; per-node running statistics accumulate across
//! runs. The paper uses 5 000 runs and bounds the sample-mean error by the
//! Student-t expression `c·s/(√n·m)` at 99% confidence (§4) —
//! [`McResult::error_bound`] reports exactly that.

use crate::cancel::{CancelState, CancelToken};
use crate::error::{panic_detail, AnalysisError, BudgetExceeded, Cancelled, PepError};
use pep_celllib::Timing;
use pep_dist::stats::{mc_error_bound, Confidence, Running};
use pep_dist::{ContinuousDist, DiscreteDist, DistScratch, TimeStep};
use pep_netlist::{GateKind, Netlist, NodeId};
use pep_obs::{Session, Warning};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a Monte Carlo analysis.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of runs (the paper uses 5 000).
    pub runs: usize,
    /// Base RNG seed. Run `i` derives its own generator from
    /// `seed ⊕ i`, so results are independent of the thread count.
    pub seed: u64,
    /// Confidence level of the reported error bound.
    pub confidence: Confidence,
    /// Worker threads; resolved by
    /// [`resolve_threads`](crate::threads::resolve_threads) (0 = auto:
    /// `PEP_THREADS`, then all available parallelism).
    pub threads: usize,
    /// When set, also collect per-node arrival histograms on this grid
    /// (costs one [`DiscreteDist`] per node).
    pub histogram_step: Option<TimeStep>,
    /// Wall-clock budget in milliseconds. When it expires mid-analysis
    /// the loop stops early with however many runs completed (a
    /// [`Warning`] records the shortfall); completing zero runs is a
    /// [`BudgetExceeded`] error. Which runs complete under a deadline
    /// depends on wall time and thread layout, so deadline-limited
    /// results are *not* bit-identical across thread counts.
    pub deadline_ms: Option<u64>,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            runs: 5_000,
            seed: 0xDAC_2001,
            confidence: Confidence::P99,
            threads: 0,
            histogram_step: None,
            deadline_ms: None,
        }
    }
}

/// Per-node statistics produced by [`run_monte_carlo`].
#[derive(Debug, Clone)]
pub struct McResult {
    stats: Vec<Running>,
    histograms: Option<Vec<DiscreteDist>>,
    confidence: Confidence,
    runs: usize,
}

impl McResult {
    /// Number of runs performed.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Sample mean arrival time at a node.
    pub fn mean(&self, node: NodeId) -> f64 {
        self.stats[node.index()].mean()
    }

    /// Sample standard deviation of the arrival time at a node.
    pub fn std(&self, node: NodeId) -> f64 {
        self.stats[node.index()].sample_std()
    }

    /// The raw accumulator for a node.
    pub fn running(&self, node: NodeId) -> &Running {
        &self.stats[node.index()]
    }

    /// The paper's relative sample-mean error bound `c·s/(√n·m)` for a
    /// node, at the configured confidence.
    pub fn error_bound(&self, node: NodeId) -> f64 {
        mc_error_bound(&self.stats[node.index()], self.confidence)
    }

    /// The worst error bound across the given nodes (e.g. all primary
    /// outputs) — the number the paper quotes as "0.95%".
    pub fn worst_error_bound<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> f64 {
        nodes
            .into_iter()
            .map(|n| self.error_bound(n))
            .fold(0.0, f64::max)
    }

    /// The collected arrival histogram of a node, if histogram collection
    /// was enabled.
    pub fn histogram(&self, node: NodeId) -> Option<&DiscreteDist> {
        self.histograms.as_ref().map(|h| &h[node.index()])
    }
}

/// Runs the Monte Carlo baseline.
///
/// Deterministic: the per-run RNG depends only on `config.seed` and the
/// run index, so any thread count produces identical statistics (up to
/// floating-point merge order, which is also fixed).
///
/// # Panics
///
/// Panics if `config.runs` is zero or the wall-clock deadline expires
/// before any run completes. Prefer [`try_run_monte_carlo`] for typed
/// errors.
pub fn run_monte_carlo(netlist: &Netlist, timing: &Timing, config: &McConfig) -> McResult {
    run_monte_carlo_observed(netlist, timing, config, &Session::disabled())
}

/// Fallible form of [`run_monte_carlo`].
///
/// # Errors
///
/// See [`try_run_monte_carlo_observed`].
pub fn try_run_monte_carlo(
    netlist: &Netlist,
    timing: &Timing,
    config: &McConfig,
) -> Result<McResult, PepError> {
    try_run_monte_carlo_observed(netlist, timing, config, &Session::disabled())
}

/// [`run_monte_carlo`], recording progress into `obs`.
///
/// Opens an `mc-baseline` phase on the calling thread; workers bump the
/// `mc.runs_completed` counter once per run (so a concurrent reader sees
/// live progress) and, when the session is enabled, record each worker's
/// wall time into the `mc.chunk_seconds` histogram.
///
/// # Panics
///
/// Panics if `config.runs` is zero or the deadline expires with zero
/// completed runs. Prefer [`try_run_monte_carlo_observed`] for typed
/// errors.
pub fn run_monte_carlo_observed(
    netlist: &Netlist,
    timing: &Timing,
    config: &McConfig,
    obs: &Session,
) -> McResult {
    // invariant: the panicking wrapper exists for legacy callers that
    // configure neither zero runs nor a deadline; those cannot fail.
    try_run_monte_carlo_observed(netlist, timing, config, obs).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run_monte_carlo_observed`]: returns typed errors
/// instead of panicking, catches worker panics, and honors
/// [`McConfig::deadline_ms`].
///
/// When the deadline expires mid-loop the analysis stops early and
/// returns statistics over the runs that finished —
/// [`McResult::runs`] reports the actual count and a `mc.deadline`
/// [`Warning`] is recorded on `obs`.
///
/// # Errors
///
/// * [`AnalysisError::NoRuns`] if `config.runs` is zero,
/// * [`AnalysisError::WorkerPanic`] if a worker thread panicked,
/// * [`BudgetExceeded`] if the deadline expired before any run
///   completed.
pub fn try_run_monte_carlo_observed(
    netlist: &Netlist,
    timing: &Timing,
    config: &McConfig,
    obs: &Session,
) -> Result<McResult, PepError> {
    try_run_monte_carlo_cancellable(netlist, timing, config, obs, &CancelToken::new())
}

/// [`try_run_monte_carlo_observed`] honoring a cooperative
/// [`CancelToken`], polled at every run boundary.
///
/// A [degrade](CancelToken::cancel_degrade) cancellation stops the loop
/// early and keeps the completed runs' statistics (an `mc.cancelled`
/// [`Warning`] records the shortfall, like `mc.deadline` does for an
/// expired deadline); an [abort](CancelToken::cancel_abort) — or any
/// cancellation before the first run completes — returns a typed
/// [`Cancelled`] error and discards partial state.
///
/// # Errors
///
/// Everything [`try_run_monte_carlo_observed`] returns, plus
/// [`PepError::Cancelled`].
pub fn try_run_monte_carlo_cancellable(
    netlist: &Netlist,
    timing: &Timing,
    config: &McConfig,
    obs: &Session,
    cancel: &CancelToken,
) -> Result<McResult, PepError> {
    if config.runs == 0 {
        return Err(AnalysisError::NoRuns.into());
    }
    let _phase = obs.phase("mc-baseline");
    let threads = crate::threads::resolve_threads(config.threads).min(config.runs);
    obs.gauge("mc.threads").set(threads as f64);
    obs.gauge("mc.runs_requested").set(config.runs as f64);
    let started = Instant::now();
    let deadline = config
        .deadline_ms
        .map(|ms| started + Duration::from_millis(ms));
    // Latch: once any worker sees the deadline pass, everyone stops at
    // their next run boundary.
    let expired = AtomicBool::new(false);

    // Fixed chunking: run indices are pre-assigned so merge order is
    // deterministic for a given thread count.
    let chunk = config.runs.div_ceil(threads);
    type Partial = (Vec<Running>, Option<Vec<DiscreteDist>>, usize);
    let mut partials: Vec<Partial> = Vec::new();
    let mut worker_panic: Option<AnalysisError> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(config.runs);
            if lo >= hi {
                break;
            }
            let runs_done = obs.counter("mc.runs_completed");
            let chunk_seconds = obs.histogram("mc.chunk_seconds");
            let timed = obs.is_enabled();
            let expired = &expired;
            handles.push(scope.spawn(move || {
                let start = timed.then(Instant::now);
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    simulate_runs(
                        netlist,
                        timing,
                        config,
                        lo..hi,
                        &runs_done,
                        deadline,
                        expired,
                        cancel,
                    )
                }));
                if let Some(start) = start {
                    chunk_seconds.record(start.elapsed().as_secs_f64());
                }
                out.map_err(|payload| panic_detail(payload.as_ref()))
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            // invariant: the worker closure catches its own unwinds, so
            // join() only fails on an abort-class event.
            match h.join().expect("monte carlo worker terminated abnormally") {
                Ok(part) => partials.push(part),
                Err(detail) => {
                    // First panicking worker (by thread index) wins —
                    // deterministic regardless of completion order.
                    if worker_panic.is_none() {
                        worker_panic = Some(AnalysisError::WorkerPanic {
                            node: format!("mc-worker-{t}"),
                            detail,
                        });
                    }
                }
            }
        }
    });
    if let Some(e) = worker_panic {
        return Err(e.into());
    }
    let completed: usize = partials.iter().map(|(_, _, c)| c).sum();
    // An abort-strength cancellation — or any cancellation before the
    // first run completed — discards partial state with a typed error.
    let cancelled = cancel.state();
    if cancelled == CancelState::Abort || (cancelled != CancelState::Live && completed == 0) {
        return Err(Cancelled {
            phase: "mc-baseline",
            elapsed_ms: started.elapsed().as_millis() as u64,
        }
        .into());
    }
    if completed == 0 {
        return Err(BudgetExceeded {
            resource: "deadline_ms",
            limit: config.deadline_ms.unwrap_or(0),
            observed: started.elapsed().as_millis() as u64,
        }
        .into());
    }
    if completed < config.runs {
        let (code, what) = if cancelled == CancelState::Degrade {
            ("mc.cancelled", "cancellation requested".to_owned())
        } else {
            (
                "mc.deadline",
                format!("deadline {} ms expired", config.deadline_ms.unwrap_or(0)),
            )
        };
        obs.warn(Warning::new(
            code,
            "mc-baseline",
            "runs",
            format!("{what} after {completed} of {} runs", config.runs),
            format!(
                "statistics use {completed} samples; error bound widens by ~sqrt({}/{})",
                config.runs, completed
            ),
        ));
    }

    let n = netlist.node_count();
    let mut stats = vec![Running::new(); n];
    let mut histograms = config
        .histogram_step
        .map(|_| vec![DiscreteDist::empty(); n]);
    // Partial histograms merge through one scratch arena: the union
    // buffer is recycled across all n × threads accumulations instead of
    // reallocated per merge (`accumulate_scaled` with scale 1 is
    // bit-identical to `accumulate`).
    let mut scratch = DistScratch::new();
    for (part_stats, part_hist, _) in partials {
        for (acc, p) in stats.iter_mut().zip(&part_stats) {
            acc.merge(p);
        }
        if let (Some(hists), Some(parts)) = (histograms.as_mut(), part_hist) {
            for (acc, p) in hists.iter_mut().zip(&parts) {
                acc.accumulate_scaled(p, 1.0, &mut scratch);
            }
        }
    }
    if let Some(hists) = histograms.as_mut() {
        for h in hists.iter_mut() {
            h.normalize();
        }
    }
    Ok(McResult {
        stats,
        histograms,
        confidence: config.confidence,
        runs: completed,
    })
}

/// Executes a contiguous range of runs and returns partial accumulators
/// plus how many runs actually completed before the deadline.
#[allow(clippy::too_many_arguments)]
fn simulate_runs(
    netlist: &Netlist,
    timing: &Timing,
    config: &McConfig,
    runs: std::ops::Range<usize>,
    runs_done: &pep_obs::Counter,
    deadline: Option<Instant>,
    expired: &AtomicBool,
    cancel: &CancelToken,
) -> (Vec<Running>, Option<Vec<DiscreteDist>>, usize) {
    let n = netlist.node_count();
    let mut stats = vec![Running::new(); n];
    // Histogram bins are counted as raw tallies and normalized at the end.
    let mut tallies: Option<Vec<std::collections::HashMap<i64, u32>>> = config
        .histogram_step
        .map(|_| vec![std::collections::HashMap::new(); n]);
    let mut arrival = vec![0.0f64; n];
    let total_runs = config.runs as f64;
    let mut completed = 0usize;
    for run in runs {
        if cancel.is_cancelled() {
            break;
        }
        if let Some(d) = deadline {
            if expired.load(Ordering::Relaxed) || Instant::now() >= d {
                expired.store(true, Ordering::Relaxed);
                break;
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ run as u64);
        for &id in netlist.topo_order() {
            if netlist.kind(id) == GateKind::Input {
                arrival[id.index()] = 0.0;
                continue;
            }
            // One draw per cell, shared by every pin (the cell delay is a
            // single random variable); wires are drawn per arc.
            let cell_sample = sample_nonzero(timing.cell_arc(id, 0), &mut rng);
            let mut at = f64::NEG_INFINITY;
            for (pin, &f) in netlist.fanins(id).iter().enumerate() {
                let wire = timing.wire_arc(id, pin);
                let w = if timing.has_wire_delays() {
                    sample_nonzero(wire, &mut rng)
                } else {
                    0.0
                };
                at = at.max(arrival[f.index()] + w + cell_sample);
            }
            arrival[id.index()] = at;
        }
        for (i, &at) in arrival.iter().enumerate() {
            stats[i].push(at);
        }
        if let (Some(tallies), Some(step)) = (tallies.as_mut(), config.histogram_step) {
            for (i, &at) in arrival.iter().enumerate() {
                *tallies[i].entry(step.ticks_of(at)).or_insert(0) += 1;
            }
        }
        runs_done.inc();
        completed += 1;
    }
    let histograms = tallies.map(|ts| {
        ts.into_iter()
            .map(|t| {
                DiscreteDist::from_pairs(
                    t.into_iter().map(|(tick, c)| (tick, c as f64 / total_runs)),
                )
            })
            .collect()
    });
    (stats, histograms, completed)
}

fn sample_nonzero(dist: &ContinuousDist, rng: &mut StdRng) -> f64 {
    match dist {
        ContinuousDist::Point { value } => *value,
        other => other.sample(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::nominal_arrivals;
    use pep_celllib::DelayModel;
    use pep_netlist::samples;

    #[test]
    fn deterministic_across_thread_counts() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let base = McConfig {
            runs: 200,
            ..McConfig::default()
        };
        let r1 = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                threads: 1,
                ..base.clone()
            },
        );
        let r4 = run_monte_carlo(&nl, &t, &McConfig { threads: 4, ..base });
        for id in nl.node_ids() {
            assert!((r1.mean(id) - r4.mean(id)).abs() < 1e-9);
            assert!((r1.std(id) - r4.std(id)).abs() < 1e-9);
        }
    }

    #[test]
    fn mc_mean_close_to_nominal_for_small_sigma() {
        let nl = samples::c17();
        let model = DelayModel::dac2001(1).with_sigma_range(0.04, 0.041);
        let t = Timing::annotate(&nl, &model);
        let mc = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 2_000,
                ..McConfig::default()
            },
        );
        let nominal = nominal_arrivals(&nl, &t);
        for &po in nl.primary_outputs() {
            let rel = (mc.mean(po) - nominal[po.index()]).abs() / nominal[po.index()];
            // max() biases the mean upward slightly; it must stay small
            // with 4% sigmas.
            assert!(
                rel < 0.05,
                "mean {} vs nominal {}",
                mc.mean(po),
                nominal[po.index()]
            );
        }
    }

    #[test]
    fn error_bound_shrinks_with_runs() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(2));
        let small = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 50,
                ..McConfig::default()
            },
        );
        let large = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 5_000,
                ..McConfig::default()
            },
        );
        let pos = nl.primary_outputs()[0];
        assert!(large.error_bound(pos) < small.error_bound(pos));
        // The paper quotes ~1% for 5 000 runs with s/m ≈ their circuits';
        // for c17's s/m the bound is far below 1%.
        assert!(
            large.worst_error_bound(nl.primary_outputs().iter().copied()) < 0.01,
            "bound {}",
            large.worst_error_bound(nl.primary_outputs().iter().copied())
        );
    }

    #[test]
    fn histograms_collect_and_normalize() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let step = t.step_for_samples(10);
        let mc = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 500,
                histogram_step: Some(step),
                ..McConfig::default()
            },
        );
        let po = nl.primary_outputs()[0];
        let h = mc.histogram(po).expect("histograms enabled");
        assert!((h.total_mass() - 1.0).abs() < 1e-9);
        // Histogram mean tracks the running mean.
        assert!((h.mean_time(step) - mc.mean(po)).abs() < step.size());
    }

    #[test]
    fn zero_runs_is_a_typed_error() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let err = try_run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 0,
                ..McConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PepError::Analysis(AnalysisError::NoRuns)));
    }

    #[test]
    fn expired_deadline_before_first_run_is_budget_error() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let err = try_run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 100,
                deadline_ms: Some(0),
                ..McConfig::default()
            },
        )
        .unwrap_err();
        match err {
            PepError::Budget(b) => assert_eq!(b.resource, "deadline_ms"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn deadline_stops_early_with_warning() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let obs = Session::new();
        // Far more runs than 50 ms allows: the loop must stop early,
        // keep the completed statistics, and record a warning.
        let result = try_run_monte_carlo_observed(
            &nl,
            &t,
            &McConfig {
                runs: 500_000_000,
                deadline_ms: Some(50),
                threads: 2,
                ..McConfig::default()
            },
            &obs,
        )
        .expect("some runs complete within 50 ms");
        assert!(result.runs() > 0);
        assert!(result.runs() < 500_000_000);
        let warnings = obs.warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, "mc.deadline");
        assert_eq!(warnings[0].knob, "runs");
        // Statistics over the completed runs are still usable.
        let po = nl.primary_outputs()[0];
        assert!(result.mean(po) > 0.0);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(1));
        let base = McConfig {
            runs: 200,
            threads: 1,
            ..McConfig::default()
        };
        let plain = run_monte_carlo(&nl, &t, &base);
        let budgeted = try_run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                deadline_ms: Some(600_000),
                ..base
            },
        )
        .expect("completes well under ten minutes");
        assert_eq!(budgeted.runs(), plain.runs());
        for id in nl.node_ids() {
            assert_eq!(plain.mean(id), budgeted.mean(id), "bit-identical stats");
            assert_eq!(plain.std(id), budgeted.std(id));
        }
    }

    #[test]
    fn zero_variance_delays_give_exact_answers() {
        let nl = samples::c17();
        let t = Timing::uniform(&nl, 2.0);
        let mc = run_monte_carlo(
            &nl,
            &t,
            &McConfig {
                runs: 10,
                ..McConfig::default()
            },
        );
        for id in nl.node_ids() {
            assert_eq!(mc.mean(id), 2.0 * nl.level(id) as f64);
            assert_eq!(mc.std(id), 0.0);
        }
    }
}
