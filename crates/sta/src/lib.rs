//! Deterministic static timing analysis and the Monte Carlo statistical
//! baseline.
//!
//! The DAC 2001 paper compares its probabilistic-event-propagation
//! algorithm against "a Monte Carlo process for traditional static timing
//! analysis" (§4). This crate provides that whole baseline stack:
//!
//! * [`arrivals`] — single-pass deterministic arrival-time propagation and
//!   critical-path extraction (the analysis each Monte Carlo run performs),
//! * [`monte_carlo`] — the sampling loop: draw every cell/wire delay,
//!   analyze, accumulate per-node statistics, report the paper's
//!   Student-t convergence bound,
//! * [`transition`] — two-vector (dynamic) timing simulation for the
//!   paper's "dynamic simulation with given input vectors" mode, plus its
//!   Monte Carlo version.
//!
//! # Example
//!
//! ```
//! use pep_celllib::{DelayModel, Timing};
//! use pep_netlist::samples;
//! use pep_sta::monte_carlo::{run_monte_carlo, McConfig};
//!
//! let nl = samples::c17();
//! let timing = Timing::annotate(&nl, &DelayModel::dac2001(1));
//! let result = run_monte_carlo(&nl, &timing, &McConfig { runs: 500, ..McConfig::default() });
//! let po = nl.primary_outputs()[0];
//! assert!(result.mean(po) > 0.0);
//! assert!(result.std(po) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod cancel;
pub mod error;
pub mod monte_carlo;
pub mod slack;
pub mod threads;
pub mod transition;

pub use cancel::{CancelState, CancelToken};
pub use error::{AnalysisError, BudgetExceeded, Cancelled, PepError};
