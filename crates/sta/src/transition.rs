//! Two-vector (dynamic) timing simulation.
//!
//! The paper's algorithm "can be applied for vectorless static analysis as
//! well as for dynamic simulation with given input vectors" (§1). This
//! module provides the deterministic dynamic reference: apply vector `v1`,
//! let the circuit settle, apply `v2`, and compute when each signal's
//! (single, glitch-free) transition arrives. Whether the earliest or the
//! latest input event decides a gate's output follows from the gate's
//! controlling value and the output's final state — exactly the paper's
//! falling-AND example (Fig. 5), where the earliest controlling input
//! dominates.

use crate::monte_carlo::McConfig;
use pep_celllib::Timing;
use pep_dist::stats::Running;
use pep_netlist::{GateKind, Netlist, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one deterministic two-vector simulation.
#[derive(Debug, Clone)]
pub struct TransitionSim {
    /// Steady-state values under the first vector.
    pub initial: Vec<bool>,
    /// Steady-state values under the second vector.
    pub final_values: Vec<bool>,
    /// Per node: when its transition arrives (`None` if the node does not
    /// switch between the two vectors).
    pub arrival: Vec<Option<f64>>,
}

impl TransitionSim {
    /// Whether the node switches between the vectors.
    pub fn transitions(&self, node: NodeId) -> bool {
        self.arrival[node.index()].is_some()
    }

    /// Whether the node's transition (if any) is rising.
    pub fn is_rising(&self, node: NodeId) -> bool {
        !self.initial[node.index()] && self.final_values[node.index()]
    }
}

/// Simulates the vector pair `v1 → v2` with per-arc delays from
/// `arc_delay(gate, pin)`.
///
/// Uses the single-transition (glitch-free) timing model: every node
/// carries at most one event. A gate output switching *into* its
/// controlled state is decided by the **earliest** newly-controlling
/// input; switching *out of* it by the **latest** input to leave; parity
/// gates settle with their last switching input.
///
/// # Panics
///
/// Panics if the vectors' lengths differ from the primary input count.
pub fn simulate_transition<F>(
    netlist: &Netlist,
    v1: &[bool],
    v2: &[bool],
    mut arc_delay: F,
) -> TransitionSim
where
    F: FnMut(NodeId, usize) -> f64,
{
    let pis = netlist.primary_inputs();
    assert_eq!(v1.len(), pis.len(), "v1 must cover every primary input");
    assert_eq!(v2.len(), pis.len(), "v2 must cover every primary input");
    let initial = netlist.eval(v1);
    let final_values = netlist.eval(v2);
    let mut arrival: Vec<Option<f64>> = vec![None; netlist.node_count()];
    for (i, &pi) in pis.iter().enumerate() {
        if v1[i] != v2[i] {
            arrival[pi.index()] = Some(0.0);
        }
    }
    for &id in netlist.topo_order() {
        let kind = netlist.kind(id);
        if kind == GateKind::Input {
            continue;
        }
        if initial[id.index()] == final_values[id.index()] {
            continue;
        }
        let fanins = netlist.fanins(id);
        let times = |pin: usize, f: NodeId, arc: &mut F| -> Option<f64> {
            arrival[f.index()].map(|t| t + arc(id, pin))
        };
        let t = match kind.controlling_value() {
            Some(c) => {
                let output_controlled = fanins.iter().any(|&f| final_values[f.index()] == c);
                if output_controlled {
                    // Earliest input to reach the controlling value wins.
                    fanins
                        .iter()
                        .enumerate()
                        .filter(|(_, &f)| final_values[f.index()] == c)
                        .filter_map(|(pin, &f)| times(pin, f, &mut arc_delay))
                        .fold(f64::INFINITY, f64::min)
                } else {
                    // Output enables only after the last input leaves the
                    // controlling value.
                    fanins
                        .iter()
                        .enumerate()
                        .filter_map(|(pin, &f)| times(pin, f, &mut arc_delay))
                        .fold(f64::NEG_INFINITY, f64::max)
                }
            }
            None => {
                // Parity gates and single-input gates settle with the last
                // switching input.
                fanins
                    .iter()
                    .enumerate()
                    .filter_map(|(pin, &f)| times(pin, f, &mut arc_delay))
                    .fold(f64::NEG_INFINITY, f64::max)
            }
        };
        debug_assert!(
            t.is_finite(),
            "output of {} switched with no switching input",
            netlist.node_name(id)
        );
        arrival[id.index()] = Some(t);
    }
    TransitionSim {
        initial,
        final_values,
        arrival,
    }
}

/// Per-node transition-time statistics from a dynamic Monte Carlo run.
#[derive(Debug, Clone)]
pub struct TransitionMcResult {
    stats: Vec<Running>,
    /// The (delay-independent) transition pattern of the vector pair.
    pub pattern: TransitionSim,
}

impl TransitionMcResult {
    /// Mean transition time at a node (`None` if the node never switches).
    pub fn mean(&self, node: NodeId) -> Option<f64> {
        self.pattern.arrival[node.index()].map(|_| self.stats[node.index()].mean())
    }

    /// Standard deviation of the transition time at a node.
    pub fn std(&self, node: NodeId) -> Option<f64> {
        self.pattern.arrival[node.index()].map(|_| self.stats[node.index()].sample_std())
    }
}

/// Monte Carlo over the dynamic simulation: per run, sample every cell and
/// wire delay and re-time the same vector pair.
///
/// # Panics
///
/// Panics if `config.runs` is zero or the vectors don't match the inputs.
pub fn monte_carlo_transition(
    netlist: &Netlist,
    timing: &Timing,
    v1: &[bool],
    v2: &[bool],
    config: &McConfig,
) -> TransitionMcResult {
    // invariant: the only try_ failure is zero runs, which this
    // panicking wrapper promises to reject loudly.
    try_monte_carlo_transition(netlist, timing, v1, v2, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`monte_carlo_transition`].
///
/// # Errors
///
/// Returns [`crate::AnalysisError::NoRuns`] if `config.runs` is zero.
pub fn try_monte_carlo_transition(
    netlist: &Netlist,
    timing: &Timing,
    v1: &[bool],
    v2: &[bool],
    config: &McConfig,
) -> Result<TransitionMcResult, crate::PepError> {
    if config.runs == 0 {
        return Err(crate::AnalysisError::NoRuns.into());
    }
    let n = netlist.node_count();
    let mut stats = vec![Running::new(); n];
    let mut pattern = None;
    for run in 0..config.runs {
        let mut rng = StdRng::seed_from_u64(config.seed ^ run as u64);
        // One cell-delay draw per gate, shared by its pins, matching the
        // static Monte Carlo engine.
        let mut cell_sample = vec![0.0f64; n];
        let mut wire_sample: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &id in netlist.topo_order() {
            if netlist.kind(id) == GateKind::Input {
                continue;
            }
            cell_sample[id.index()] = timing.cell_arc(id, 0).sample(&mut rng);
            wire_sample[id.index()] = (0..netlist.fanins(id).len())
                .map(|pin| {
                    if timing.has_wire_delays() {
                        timing.wire_arc(id, pin).sample(&mut rng)
                    } else {
                        0.0
                    }
                })
                .collect();
        }
        let sim = simulate_transition(netlist, v1, v2, |gate, pin| {
            cell_sample[gate.index()] + wire_sample[gate.index()][pin]
        });
        for (i, t) in sim.arrival.iter().enumerate() {
            if let Some(t) = t {
                stats[i].push(*t);
            }
        }
        if pattern.is_none() {
            pattern = Some(sim);
        }
    }
    // invariant: runs >= 1 was checked above, so the first iteration
    // always stored a pattern.
    Ok(TransitionMcResult {
        stats,
        pattern: pattern.expect("at least one run"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_celllib::DelayModel;
    use pep_netlist::{samples, NetlistBuilder};

    #[test]
    fn and_gate_falling_takes_earliest() {
        // Fig. 5's principle: a falling AND output follows the earliest
        // falling input.
        let mut b = NetlistBuilder::new("and2");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        // Both inputs fall: 1,1 -> 0,0. Give pin a delay 3, pin b delay 5.
        let sim = simulate_transition(&nl, &[true, true], &[false, false], |_, pin| {
            if pin == 0 {
                3.0
            } else {
                5.0
            }
        });
        let y = nl.node_id("y").unwrap();
        assert_eq!(sim.arrival[y.index()], Some(3.0), "earliest dominates");
        assert!(!sim.is_rising(y));
    }

    #[test]
    fn and_gate_rising_takes_latest() {
        let mut b = NetlistBuilder::new("and2");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        let sim = simulate_transition(&nl, &[false, false], &[true, true], |_, pin| {
            if pin == 0 {
                3.0
            } else {
                5.0
            }
        });
        let y = nl.node_id("y").unwrap();
        assert_eq!(sim.arrival[y.index()], Some(5.0), "latest dominates");
        assert!(sim.is_rising(y));
    }

    #[test]
    fn side_input_masking() {
        // Only one input switches; if the other holds the controlling
        // value, the output never moves.
        let mut b = NetlistBuilder::new("mask");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        let sim = simulate_transition(&nl, &[false, false], &[false, true], |_, _| 1.0);
        let y = nl.node_id("y").unwrap();
        assert_eq!(sim.arrival[y.index()], None, "a=0 masks b's rise");
    }

    #[test]
    fn xor_follows_last_switching_input() {
        let mut b = NetlistBuilder::new("x");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.input("c").unwrap();
        b.gate("y", GateKind::Xor, &["a", "b", "c"]).unwrap();
        b.output("y").unwrap();
        let nl = b.build().unwrap();
        // a, b, c all rise (odd parity flips 0 -> 1).
        let sim = simulate_transition(
            &nl,
            &[false, false, false],
            &[true, true, true],
            |_, pin| (pin + 1) as f64,
        );
        let y = nl.node_id("y").unwrap();
        assert_eq!(sim.arrival[y.index()], Some(3.0));
    }

    #[test]
    fn chain_accumulates_delay() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a").unwrap();
        b.gate("n1", GateKind::Not, &["a"]).unwrap();
        b.gate("n2", GateKind::Not, &["n1"]).unwrap();
        b.gate("n3", GateKind::Not, &["n2"]).unwrap();
        b.output("n3").unwrap();
        let nl = b.build().unwrap();
        let sim = simulate_transition(&nl, &[false], &[true], |_, _| 2.0);
        let n3 = nl.node_id("n3").unwrap();
        assert_eq!(sim.arrival[n3.index()], Some(6.0));
        assert!(!sim.is_rising(n3), "three inversions flip the rise");
    }

    #[test]
    fn mux_select_switch() {
        let nl = samples::mux2();
        // a=1, b=0; select flips from b (0) to a (1): y rises.
        // Inputs ordered a, b, s.
        let sim = simulate_transition(&nl, &[true, false, false], &[true, false, true], |_, _| 1.0);
        let y = nl.node_id("y").unwrap();
        assert!(sim.is_rising(y));
        assert!(sim.arrival[y.index()].is_some());
    }

    #[test]
    fn dynamic_monte_carlo_statistics() {
        let nl = samples::mux2();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(4));
        let mc = monte_carlo_transition(
            &nl,
            &t,
            &[true, false, false],
            &[true, false, true],
            &McConfig {
                runs: 400,
                ..McConfig::default()
            },
        );
        let y = nl.node_id("y").unwrap();
        let mean = mc.mean(y).expect("y transitions");
        let std = mc.std(y).expect("y transitions");
        assert!(mean > 0.0);
        assert!(std > 0.0);
        // Non-switching nodes report no statistics.
        let b_in = nl.node_id("b").unwrap();
        assert_eq!(mc.mean(b_in), None);
    }
}
