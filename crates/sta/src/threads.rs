//! Thread-count resolution shared by the Monte Carlo baseline and the
//! event-propagation analyzer.
//!
//! Every parallel component in the workspace takes a `threads: usize`
//! knob with the same meaning: a positive value is used verbatim, and
//! `0` means *auto* — the `PEP_THREADS` environment variable when it is
//! set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. Centralizing the resolution
//! keeps the CLI flag, the env override, and the library defaults in
//! agreement, and gives CI a single switch (`PEP_THREADS=1`) that pins
//! the whole test suite to the sequential path.

/// Resolves a `threads` knob to a concrete worker count (always ≥ 1).
///
/// * `threads > 0` — used as-is.
/// * `threads == 0` — `PEP_THREADS` if set to a positive integer,
///   otherwise the machine's available parallelism (1 if unknown).
///
/// # Example
///
/// ```
/// use pep_sta::threads::resolve_threads;
///
/// assert_eq!(resolve_threads(4), 4);
/// assert!(resolve_threads(0) >= 1);
/// ```
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads;
    }
    if let Some(n) = std::env::var("PEP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_pass_through() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(8), 8);
    }

    #[test]
    fn auto_is_at_least_one() {
        // With or without PEP_THREADS set, auto resolves to a usable
        // worker count.
        assert!(resolve_threads(0) >= 1);
    }
}
