//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the
//! party that *requests* a stop (a service handler, a signal handler, a
//! drain loop) and the analysis that *honors* it. The engine never
//! blocks on the token — it polls at the same places the PR-4 budget
//! machinery already polls (wave boundaries, the conditioning
//! recursion's leaf counter, Monte Carlo run boundaries), so
//! cancellation latency is bounded by the existing deadline-poll
//! granularity and costs nothing when the token is never cancelled.
//!
//! Two strengths of cancellation exist, because the two callers want
//! different things:
//!
//! * [`CancelToken::cancel_degrade`] — "wrap up": the run *finishes*,
//!   fast, by degrading remaining supergates to plain topological
//!   propagation exactly as an expired deadline would, and the caller
//!   gets a partial-but-usable result plus `cancel.requested` warnings.
//!   This is what Ctrl-C on an interactive run wants.
//! * [`CancelToken::cancel_abort`] — "stop": the run returns a typed
//!   [`Cancelled`](crate::error::Cancelled) error at the next poll
//!   point and the partial state is discarded. This is what a service
//!   job cancellation (`DELETE /jobs/:id`) or a drain deadline wants.
//!
//! Abort is strictly stronger than degrade; escalating a token from
//! degrade to abort is allowed, de-escalating is not.
//!
//! # Signal bridging
//!
//! POSIX signal handlers may only touch async-signal-safe state, so a
//! handler cannot reach into an `Arc`. The bridge is a process-global
//! atomic: the handler calls [`note_signal`] (one relaxed store), and
//! any token created with [`CancelToken::signal_aware`] observes that
//! global in addition to its own state. Ordinary tokens (e.g. per-job
//! tokens inside a server) ignore the global entirely.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// How strongly a [`CancelToken`] has been cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CancelState {
    /// Not cancelled; the run proceeds normally.
    Live = 0,
    /// Finish quickly with degraded (topological-fallback) results and
    /// `cancel.requested` warnings.
    Degrade = 1,
    /// Stop at the next poll point with a typed
    /// [`Cancelled`](crate::error::Cancelled) error.
    Abort = 2,
}

impl CancelState {
    fn from_u8(v: u8) -> CancelState {
        match v {
            2 => CancelState::Abort,
            1 => CancelState::Degrade,
            _ => CancelState::Live,
        }
    }
}

/// Process-global signal latch written by (async-signal-safe) signal
/// handlers and read by [`CancelToken::signal_aware`] tokens.
static SIGNAL_STATE: AtomicU8 = AtomicU8::new(0);

/// Records a cancellation request from a signal handler.
///
/// This performs exactly one relaxed atomic store and is therefore
/// async-signal-safe; it is the only function in this crate a signal
/// handler may call. Escalation-only: a `Degrade` note never overwrites
/// an earlier `Abort`.
pub fn note_signal(state: CancelState) {
    SIGNAL_STATE.fetch_max(state as u8, Ordering::Relaxed);
}

/// The current process-global signal cancellation state.
pub fn signal_state() -> CancelState {
    CancelState::from_u8(SIGNAL_STATE.load(Ordering::Relaxed))
}

/// Clears the process-global signal latch (test isolation; also called
/// by long-lived processes between interactive runs).
pub fn reset_signal_state() {
    SIGNAL_STATE.store(0, Ordering::Relaxed);
}

/// A cheap, cloneable cooperative-cancellation handle.
///
/// Cloning shares the underlying state: cancelling any clone cancels
/// them all. The default token is live and, unless created with
/// [`signal_aware`](CancelToken::signal_aware), independent of the
/// process signal latch.
///
/// ```
/// use pep_sta::cancel::{CancelState, CancelToken};
///
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel_degrade();
/// assert_eq!(shared.state(), CancelState::Degrade);
/// shared.cancel_abort();
/// assert_eq!(token.state(), CancelState::Abort);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
    follow_signals: bool,
}

impl CancelToken {
    /// A live token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that also observes the process-global signal latch (see
    /// [`note_signal`]), for interactive runs that should honor
    /// Ctrl-C / SIGTERM.
    pub fn signal_aware() -> Self {
        CancelToken {
            state: Arc::default(),
            follow_signals: true,
        }
    }

    /// Requests a graceful wrap-up: the analysis finishes quickly with
    /// degraded results (see module docs).
    pub fn cancel_degrade(&self) {
        self.state
            .fetch_max(CancelState::Degrade as u8, Ordering::Relaxed);
    }

    /// Requests a hard stop: the analysis returns a typed
    /// [`Cancelled`](crate::error::Cancelled) error at the next poll
    /// point.
    pub fn cancel_abort(&self) {
        self.state
            .fetch_max(CancelState::Abort as u8, Ordering::Relaxed);
    }

    /// The effective cancellation state (own state, escalated by the
    /// signal latch for signal-aware tokens).
    pub fn state(&self) -> CancelState {
        let own = self.state.load(Ordering::Relaxed);
        let effective = if self.follow_signals {
            own.max(SIGNAL_STATE.load(Ordering::Relaxed))
        } else {
            own
        };
        CancelState::from_u8(effective)
    }

    /// Whether any cancellation (degrade or abort) has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.state() != CancelState::Live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state_and_escalate_only() {
        let t = CancelToken::new();
        let u = t.clone();
        assert_eq!(t.state(), CancelState::Live);
        u.cancel_degrade();
        assert_eq!(t.state(), CancelState::Degrade);
        t.cancel_abort();
        assert_eq!(u.state(), CancelState::Abort);
        // De-escalation is impossible.
        u.cancel_degrade();
        assert_eq!(u.state(), CancelState::Abort);
    }

    #[test]
    fn plain_tokens_ignore_the_signal_latch() {
        reset_signal_state();
        let plain = CancelToken::new();
        let aware = CancelToken::signal_aware();
        note_signal(CancelState::Degrade);
        assert_eq!(plain.state(), CancelState::Live);
        assert_eq!(aware.state(), CancelState::Degrade);
        note_signal(CancelState::Abort);
        assert_eq!(aware.state(), CancelState::Abort);
        // The latch only ever escalates…
        note_signal(CancelState::Degrade);
        assert_eq!(signal_state(), CancelState::Abort);
        // …until explicitly reset.
        reset_signal_state();
        assert_eq!(aware.state(), CancelState::Live);
    }
}
