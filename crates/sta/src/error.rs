//! The workspace-wide error taxonomy for fallible analysis paths.
//!
//! Library crates in this workspace must not abort a run: anything that
//! can fail on hostile input, exhausted resources, or a worker panic is
//! surfaced as a [`PepError`]. The enum is `#[non_exhaustive]` and
//! source-chained, so callers can match the broad category, walk
//! [`std::error::Error::source`] for detail, and keep compiling as new
//! failure kinds are added. The CLI maps each variant to a distinct
//! process exit code.

use pep_dist::DistError;
use pep_netlist::NetlistError;
use std::fmt;

/// A resource budget was exhausted and the engine could not (or was
/// asked not to) degrade around it.
///
/// Carries plain numbers rather than the budget type itself so the
/// error can live below the crate that defines budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Which budget tripped (`deadline_ms`, `max_combinations`,
    /// `max_slab_bytes`, `max_stems_per_supergate`, …).
    pub resource: &'static str,
    /// The configured limit.
    pub limit: u64,
    /// What the run observed (or estimated) when it tripped.
    pub observed: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exceeded: {} limit {} (observed {})",
            self.resource, self.limit, self.observed
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The run was stopped by a cooperative cancellation request (see
/// [`crate::cancel::CancelToken::cancel_abort`]): a service job was
/// cancelled, a client disconnected, or a drain window closed.
///
/// Distinct from [`BudgetExceeded`] — nothing was exhausted; somebody
/// asked the work to stop, and partial state was discarded rather than
/// degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// The pipeline phase that observed the cancellation
    /// (`propagate`, `mc-baseline`, …).
    pub phase: &'static str,
    /// Milliseconds of work performed before the stop was observed.
    pub elapsed_ms: u64,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cancelled during {} after {} ms",
            self.phase, self.elapsed_ms
        )
    }
}

impl std::error::Error for Cancelled {}

/// Failures inside the analysis engine itself (as opposed to its
/// inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A worker thread panicked; the panic was caught and converted
    /// instead of poisoning the run.
    WorkerPanic {
        /// The node (or worker) being evaluated when the panic fired.
        node: String,
        /// The panic payload, stringified.
        detail: String,
    },
    /// A Monte Carlo analysis was requested with zero runs.
    NoRuns,
    /// A node's event group degenerated (NaN, infinite or zero mass)
    /// and recovery was not possible.
    DegenerateGroup {
        /// The affected node's name.
        node: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::WorkerPanic { node, detail } => {
                write!(f, "worker panicked while evaluating `{node}`: {detail}")
            }
            AnalysisError::NoRuns => write!(f, "need at least one run"),
            AnalysisError::DegenerateGroup { node } => {
                write!(
                    f,
                    "event group at `{node}` degenerated (non-finite or empty)"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// The workspace-wide error type returned by `pep-sta` and `pep-core`
/// public `try_*` APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PepError {
    /// Netlist construction or `.bench` parsing failed.
    Netlist(NetlistError),
    /// Distribution construction or arithmetic failed.
    Dist(DistError),
    /// The analysis engine failed.
    Analysis(AnalysisError),
    /// A resource budget was exhausted without a degradation path.
    Budget(BudgetExceeded),
    /// The run was stopped by a cooperative cancellation request.
    Cancelled(Cancelled),
}

impl fmt::Display for PepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PepError::Netlist(e) => write!(f, "netlist error: {e}"),
            PepError::Dist(e) => write!(f, "distribution error: {e}"),
            PepError::Analysis(e) => write!(f, "analysis error: {e}"),
            PepError::Budget(e) => write!(f, "{e}"),
            PepError::Cancelled(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PepError::Netlist(e) => Some(e),
            PepError::Dist(e) => Some(e),
            PepError::Analysis(e) => Some(e),
            PepError::Budget(e) => Some(e),
            PepError::Cancelled(e) => Some(e),
        }
    }
}

impl From<NetlistError> for PepError {
    fn from(e: NetlistError) -> Self {
        PepError::Netlist(e)
    }
}

impl From<DistError> for PepError {
    fn from(e: DistError) -> Self {
        PepError::Dist(e)
    }
}

impl From<AnalysisError> for PepError {
    fn from(e: AnalysisError) -> Self {
        PepError::Analysis(e)
    }
}

impl From<BudgetExceeded> for PepError {
    fn from(e: BudgetExceeded) -> Self {
        PepError::Budget(e)
    }
}

impl From<Cancelled> for PepError {
    fn from(e: Cancelled) -> Self {
        PepError::Cancelled(e)
    }
}

/// Renders a caught panic payload (from `std::panic::catch_unwind`) as
/// text for [`AnalysisError::WorkerPanic`].
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn sources_chain() {
        let e = PepError::from(NetlistError::NoOutputs);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no primary outputs"));

        let e = PepError::from(DistError::NotFinite { what: "cdf value" });
        assert!(e.source().unwrap().to_string().contains("finite"));

        let e = PepError::from(BudgetExceeded {
            resource: "deadline_ms",
            limit: 2_000,
            observed: 2_417,
        });
        assert!(e.to_string().contains("deadline_ms"));
        assert!(e.to_string().contains("2417"));
    }

    #[test]
    fn panic_payloads_stringify() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).expect_err("must panic");
        assert_eq!(panic_detail(caught.as_ref()), "boom 7");
        let caught = std::panic::catch_unwind(|| panic!("literal")).expect_err("must panic");
        assert_eq!(panic_detail(caught.as_ref()), "literal");
    }
}
