//! Deterministic arrival-time propagation — the inner analysis of every
//! Monte Carlo run, and a corner/nominal STA in its own right.

use pep_celllib::Timing;
use pep_netlist::{GateKind, Netlist, NodeId};

/// Propagates latest arrival times through the circuit with per-arc delays
/// supplied by `arc_delay(gate, pin)`.
///
/// Primary inputs arrive at time 0; a gate's arrival is the maximum over
/// its pins of `fanin arrival + arc delay`. Returns one arrival per node,
/// indexed by [`NodeId::index`].
///
/// This generic core lets callers plug in nominal means
/// ([`nominal_arrivals`]), sampled values (the Monte Carlo engine) or
/// corner values without re-deriving the traversal.
pub fn propagate<F>(netlist: &Netlist, mut arc_delay: F) -> Vec<f64>
where
    F: FnMut(NodeId, usize) -> f64,
{
    let mut arrival = vec![0.0f64; netlist.node_count()];
    for &id in netlist.topo_order() {
        if netlist.kind(id) == GateKind::Input {
            continue;
        }
        let mut at = f64::NEG_INFINITY;
        for (pin, &f) in netlist.fanins(id).iter().enumerate() {
            at = at.max(arrival[f.index()] + arc_delay(id, pin));
        }
        arrival[id.index()] = at;
    }
    arrival
}

/// Nominal (mean-delay) arrival times.
///
/// # Example
///
/// ```
/// use pep_celllib::Timing;
/// use pep_netlist::samples;
/// use pep_sta::arrivals::nominal_arrivals;
///
/// let nl = samples::c17();
/// let timing = Timing::uniform(&nl, 1.0);
/// let at = nominal_arrivals(&nl, &timing);
/// let po22 = nl.node_id("22").expect("c17 output");
/// // Unit delays: arrival equals logic level.
/// assert_eq!(at[po22.index()], nl.level(po22) as f64);
/// ```
pub fn nominal_arrivals(netlist: &Netlist, timing: &Timing) -> Vec<f64> {
    propagate(netlist, |gate, pin| timing.arc_mean(gate, pin))
}

/// The latest-arriving primary output and its arrival time.
///
/// Returns `None` only for pathological circuits whose outputs are all
/// primary inputs.
pub fn latest_output(netlist: &Netlist, arrivals: &[f64]) -> Option<(NodeId, f64)> {
    netlist
        .primary_outputs()
        .iter()
        .map(|&po| (po, arrivals[po.index()]))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("arrivals are finite"))
}

/// Extracts one critical path ending at `endpoint`, following the
/// latest-arriving fanin at every step; returned input-to-output.
///
/// `arc_delay` must be the same delay source used to compute `arrivals`.
pub fn critical_path<F>(
    netlist: &Netlist,
    arrivals: &[f64],
    mut arc_delay: F,
    endpoint: NodeId,
) -> Vec<NodeId>
where
    F: FnMut(NodeId, usize) -> f64,
{
    let mut path = vec![endpoint];
    let mut cur = endpoint;
    while netlist.kind(cur) != GateKind::Input {
        let (pin, &f) = netlist
            .fanins(cur)
            .iter()
            .enumerate()
            .max_by(|(pa, a), (pb, b)| {
                let ta = arrivals[a.index()] + arc_delay(cur, *pa);
                let tb = arrivals[b.index()] + arc_delay(cur, *pb);
                ta.partial_cmp(&tb).expect("arrivals are finite")
            })
            .expect("gates have fanins");
        let _ = pin;
        path.push(f);
        cur = f;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_celllib::{DelayModel, Timing};
    use pep_netlist::samples;

    #[test]
    fn unit_delay_arrivals_equal_levels() {
        let nl = samples::c17();
        let t = Timing::uniform(&nl, 1.0);
        let at = nominal_arrivals(&nl, &t);
        for id in nl.node_ids() {
            assert_eq!(at[id.index()], nl.level(id) as f64, "{}", nl.node_name(id));
        }
    }

    #[test]
    fn nominal_arrivals_monotone_along_edges() {
        let nl = samples::fig6();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(2));
        let at = nominal_arrivals(&nl, &t);
        for id in nl.node_ids() {
            for &f in nl.fanins(id) {
                assert!(at[id.index()] > at[f.index()]);
            }
        }
    }

    #[test]
    fn critical_path_is_connected_and_critical() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(3));
        let at = nominal_arrivals(&nl, &t);
        let (po, worst) = latest_output(&nl, &at).expect("c17 has outputs");
        let path = critical_path(&nl, &at, |g, p| t.arc_mean(g, p), po);
        assert_eq!(*path.last().expect("non-empty"), po);
        assert_eq!(nl.kind(path[0]), pep_netlist::GateKind::Input);
        // Consecutive nodes are connected.
        for w in path.windows(2) {
            assert!(nl.fanins(w[1]).contains(&w[0]));
        }
        // Path delay equals the endpoint arrival.
        let mut acc = 0.0;
        for w in path.windows(2) {
            let pin = nl
                .fanins(w[1])
                .iter()
                .position(|&f| f == w[0])
                .expect("connected");
            acc += t.arc_mean(w[1], pin);
        }
        assert!((acc - worst).abs() < 1e-9);
    }

    #[test]
    fn wire_delays_lengthen_arrivals() {
        let nl = samples::c17();
        let plain = Timing::annotate(&nl, &DelayModel::dac2001(3));
        let wired = Timing::annotate(&nl, &DelayModel::dac2001(3).with_wire_fraction(0.25));
        let at_plain = nominal_arrivals(&nl, &plain);
        let at_wired = nominal_arrivals(&nl, &wired);
        let po = nl.primary_outputs()[0];
        assert!(at_wired[po.index()] > at_plain[po.index()]);
    }
}
