//! Required times, slack, and K-longest-path extraction.
//!
//! The deterministic complement of the statistical analyzer: once a clock
//! period is chosen (for instance from the probabilistic circuit-delay
//! distribution's quantiles), these routines answer the classic STA
//! questions — which nodes are critical, what the slack distribution over
//! the netlist looks like, and which concrete paths are the longest.

use crate::arrivals;
use pep_celllib::Timing;
use pep_netlist::{GateKind, Netlist, NodeId};
use std::collections::BinaryHeap;

/// Per-node arrival, required time and slack under mean delays.
///
/// # Example
///
/// ```
/// use pep_celllib::Timing;
/// use pep_netlist::samples;
/// use pep_sta::slack::SlackReport;
///
/// let nl = samples::c17();
/// let timing = Timing::uniform(&nl, 1.0);
/// let report = SlackReport::analyze(&nl, &timing, None);
/// // With the period at the worst arrival, the critical path has slack 0.
/// assert_eq!(report.worst_slack(), 0.0);
/// assert!(!report.critical_nodes(&nl, 1e-9).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SlackReport {
    arrival: Vec<f64>,
    required: Vec<f64>,
    clock_period: f64,
}

impl SlackReport {
    /// Runs a mean-delay arrival/required/slack analysis.
    ///
    /// `clock_period = None` uses the worst primary-output arrival (so the
    /// critical path gets slack exactly zero).
    pub fn analyze(netlist: &Netlist, timing: &Timing, clock_period: Option<f64>) -> Self {
        let arrival = arrivals::nominal_arrivals(netlist, timing);
        let worst = arrivals::latest_output(netlist, &arrival)
            .map(|(_, t)| t)
            .unwrap_or(0.0);
        let clock_period = clock_period.unwrap_or(worst);
        // Required times propagate backward: POs are due at the period;
        // every other node must arrive early enough for each fanout.
        let mut required = vec![f64::INFINITY; netlist.node_count()];
        for &po in netlist.primary_outputs() {
            required[po.index()] = clock_period;
        }
        for &id in netlist.topo_order().iter().rev() {
            if required[id.index()].is_infinite() && netlist.fanout_count(id) == 0 {
                // Dangling node (not a PO): unconstrained.
                continue;
            }
            for (pin, &f) in netlist.fanins(id).iter().enumerate() {
                let due = required[id.index()] - timing.arc_mean(id, pin);
                if due < required[f.index()] {
                    required[f.index()] = due;
                }
            }
        }
        SlackReport {
            arrival,
            required,
            clock_period,
        }
    }

    /// The clock period the report was computed against.
    pub fn clock_period(&self) -> f64 {
        self.clock_period
    }

    /// Mean arrival time of a node.
    pub fn arrival(&self, node: NodeId) -> f64 {
        self.arrival[node.index()]
    }

    /// Required time of a node (`+∞` for unconstrained nodes).
    pub fn required(&self, node: NodeId) -> f64 {
        self.required[node.index()]
    }

    /// Slack of a node (`required − arrival`; `+∞` when unconstrained).
    pub fn slack(&self, node: NodeId) -> f64 {
        self.required[node.index()] - self.arrival[node.index()]
    }

    /// The smallest slack in the design.
    pub fn worst_slack(&self) -> f64 {
        (0..self.arrival.len())
            .map(|i| self.required[i] - self.arrival[i])
            .fold(f64::INFINITY, f64::min)
    }

    /// Nodes whose slack is within `epsilon` of the worst slack — the
    /// critical network.
    pub fn critical_nodes(&self, netlist: &Netlist, epsilon: f64) -> Vec<NodeId> {
        let worst = self.worst_slack();
        netlist
            .node_ids()
            .filter(|&n| self.slack(n) <= worst + epsilon)
            .collect()
    }
}

/// One enumerated path, input to output, with its total mean delay.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Total mean delay along the path.
    pub delay: f64,
    /// The path's nodes, primary input first.
    pub nodes: Vec<NodeId>,
}

/// Heap entry for the K-longest-path search: a partial path (built
/// backward from an endpoint) with an upper bound on its completed length.
struct Partial {
    bound: f64,
    suffix_delay: f64,
    nodes: Vec<NodeId>,
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .expect("bounds are finite")
    }
}

/// Enumerates the `k` longest input-to-output paths under mean delays, in
/// non-increasing delay order.
///
/// Uses best-first search over partial paths grown backward from the
/// endpoints, with the longest prefix arrival as an admissible bound, so
/// paths pop off the heap in exact order and only `O(k · depth)` partials
/// expand.
///
/// # Example
///
/// ```
/// use pep_celllib::Timing;
/// use pep_netlist::samples;
/// use pep_sta::slack::k_longest_paths;
///
/// let nl = samples::c17();
/// let timing = Timing::uniform(&nl, 1.0);
/// let paths = k_longest_paths(&nl, &timing, 3);
/// assert_eq!(paths.len(), 3);
/// assert!(paths[0].delay >= paths[1].delay);
/// assert_eq!(paths[0].delay, 3.0, "c17 is three levels deep");
/// ```
pub fn k_longest_paths(netlist: &Netlist, timing: &Timing, k: usize) -> Vec<TimingPath> {
    let arrival = arrivals::nominal_arrivals(netlist, timing);
    let mut heap: BinaryHeap<Partial> = netlist
        .primary_outputs()
        .iter()
        .map(|&po| Partial {
            bound: arrival[po.index()],
            suffix_delay: 0.0,
            nodes: vec![po],
        })
        .collect();
    let mut out = Vec::with_capacity(k);
    while let Some(p) = heap.pop() {
        let head = p.nodes[0];
        if netlist.kind(head) == GateKind::Input {
            out.push(TimingPath {
                delay: p.suffix_delay,
                nodes: p.nodes,
            });
            if out.len() == k {
                break;
            }
            continue;
        }
        for (pin, &f) in netlist.fanins(head).iter().enumerate() {
            let arc = timing.arc_mean(head, pin);
            let mut nodes = Vec::with_capacity(p.nodes.len() + 1);
            nodes.push(f);
            nodes.extend_from_slice(&p.nodes);
            heap.push(Partial {
                bound: arrival[f.index()] + arc + p.suffix_delay,
                suffix_delay: arc + p.suffix_delay,
                nodes,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pep_celllib::DelayModel;
    use pep_netlist::{samples, NetlistBuilder};

    #[test]
    fn slack_zero_on_critical_path() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(4));
        let report = SlackReport::analyze(&nl, &t, None);
        assert!((report.worst_slack() - 0.0).abs() < 1e-9);
        // The critical network is a connected input-to-output chain.
        let critical = report.critical_nodes(&nl, 1e-9);
        assert!(critical.len() >= 4, "at least one full path");
        // Every node's required >= arrival at the relaxed period.
        let relaxed = SlackReport::analyze(&nl, &t, Some(report.clock_period() + 10.0));
        for id in nl.node_ids() {
            assert!(relaxed.slack(id) >= 10.0 - 1e-9);
        }
    }

    #[test]
    fn unconstrained_nodes_have_infinite_slack() {
        // A gate feeding nothing (not a PO) is unconstrained.
        let mut b = NetlistBuilder::new("dangle");
        b.input("a").unwrap();
        b.gate("used", GateKind::Not, &["a"]).unwrap();
        b.gate("dangling", GateKind::Buf, &["a"]).unwrap();
        b.output("used").unwrap();
        let nl = b.build().unwrap();
        let t = Timing::uniform(&nl, 1.0);
        let report = SlackReport::analyze(&nl, &t, None);
        let dangling = nl.node_id("dangling").unwrap();
        assert!(report.slack(dangling).is_infinite());
        assert_eq!(report.slack(nl.node_id("used").unwrap()), 0.0);
    }

    #[test]
    fn k_longest_paths_ordered_and_valid() {
        let nl = samples::c17();
        let t = Timing::annotate(&nl, &DelayModel::dac2001(2));
        let paths = k_longest_paths(&nl, &t, 5);
        assert_eq!(paths.len(), 5);
        for w in paths.windows(2) {
            assert!(w[0].delay >= w[1].delay - 1e-12);
        }
        // Each path is connected PI -> PO and its delay re-adds correctly.
        for p in &paths {
            assert_eq!(nl.kind(p.nodes[0]), GateKind::Input);
            assert!(nl
                .primary_outputs()
                .contains(p.nodes.last().expect("non-empty")));
            let mut acc = 0.0;
            for pair in p.nodes.windows(2) {
                let pin = nl
                    .fanins(pair[1])
                    .iter()
                    .position(|&f| f == pair[0])
                    .expect("edge exists");
                acc += t.arc_mean(pair[1], pin);
            }
            assert!((acc - p.delay).abs() < 1e-9);
        }
        // The longest equals the nominal worst arrival.
        let arrival = arrivals::nominal_arrivals(&nl, &t);
        let (_, worst) = arrivals::latest_output(&nl, &arrival).expect("has outputs");
        assert!((paths[0].delay - worst).abs() < 1e-9);
    }

    #[test]
    fn k_longest_paths_exhausts_small_circuits() {
        // mux2 has a limited number of PI->PO paths; asking for more
        // returns them all.
        let nl = samples::mux2();
        let t = Timing::uniform(&nl, 1.0);
        let paths = k_longest_paths(&nl, &t, 100);
        // Paths: a->t0->y, s->t0->y, b->t1->y, s->ns->t1->y.
        assert_eq!(paths.len(), 4);
        assert_eq!(paths[0].delay, 3.0, "through the inverter");
    }
}
