//! Micro-probe behind the `convolve_300x20` BENCH_kernels row: times the
//! allocating convolve against `convolve_into` variants to attribute the
//! gap (allocation vs zero-fill vs inner-loop shape).
//!
//! ```text
//! cargo run -p pep-dist --release --example convolve_probe
//! ```

use pep_dist::DiscreteDist;
use std::hint::black_box;
use std::time::Instant;

fn smooth(n: usize, origin: i64) -> DiscreteDist {
    let mid = n as f64 / 2.0;
    let weights: Vec<(i64, f64)> = (0..n)
        .map(|i| {
            let z = (i as f64 - mid) / (n as f64 / 6.0);
            (origin + i as i64, (-0.5 * z * z).exp())
        })
        .collect();
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    DiscreteDist::from_pairs(weights.into_iter().map(|(t, w)| (t, w / total)))
}

fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

fn main() {
    const REPS: usize = 9;
    const ITERS: usize = 20_000;
    let wide = smooth(300, 0);
    let cell = smooth(20, 5);
    let mut out = DiscreteDist::empty();

    let alloc = time_ns(REPS, ITERS, || {
        black_box(wide.convolve(&cell));
    });
    let into = time_ns(REPS, ITERS, || {
        wide.convolve_into(&cell, &mut out);
        black_box(&out);
    });
    // Operand order swapped at the call site (the kernel itself picks the
    // shorter outer operand, so this should match `into`).
    let into_swapped = time_ns(REPS, ITERS, || {
        cell.convolve_into(&wide, &mut out);
        black_box(&out);
    });
    // Fresh output each call: isolates buffer-reuse effects from the
    // inner-loop shape.
    let into_fresh = time_ns(REPS, ITERS, || {
        let mut fresh = DiscreteDist::empty();
        wide.convolve_into(&cell, &mut fresh);
        black_box(&fresh);
    });

    println!("convolve 300x20, best-of-{REPS} x {ITERS} iters");
    println!("  alloc        {alloc:8.1} ns/op");
    println!(
        "  into (reuse) {into:8.1} ns/op   ({:.2}x vs alloc)",
        alloc / into
    );
    println!(
        "  into (swap)  {into_swapped:8.1} ns/op   ({:.2}x vs alloc)",
        alloc / into_swapped
    );
    println!(
        "  into (fresh) {into_fresh:8.1} ns/op   ({:.2}x vs alloc)",
        alloc / into_fresh
    );
}
