//! Property-based tests of the probability substrate's algebraic laws.

use pep_dist::{naive, ContinuousDist, DiscreteDist, DistScratch, TimeStep};
use proptest::prelude::*;

/// Strategy producing a normalized discrete distribution with up to
/// `max_events` events on ticks in `[-50, 50]`.
fn arb_dist(max_events: usize) -> impl Strategy<Value = DiscreteDist> {
    prop::collection::vec((-50i64..50, 1u32..1000), 1..=max_events).prop_map(|pairs| {
        let total: u64 = pairs.iter().map(|&(_, w)| w as u64).sum();
        DiscreteDist::from_pairs(pairs.into_iter().map(|(t, w)| (t, w as f64 / total as f64)))
    })
}

/// Strategy for a (possibly sub-probability) distribution.
fn arb_subdist(max_events: usize) -> impl Strategy<Value = DiscreteDist> {
    (arb_dist(max_events), 0.05f64..=1.0).prop_map(|(d, k)| d.scaled(k))
}

proptest! {
    #[test]
    fn mass_is_conserved_by_convolution(a in arb_dist(8), b in arb_dist(8)) {
        let c = a.convolve(&b);
        prop_assert!((c.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_adds_means(a in arb_dist(8), b in arb_dist(8)) {
        let c = a.convolve(&b);
        prop_assert!((c.mean_ticks() - (a.mean_ticks() + b.mean_ticks())).abs() < 1e-6);
        prop_assert!(
            (c.variance_ticks() - (a.variance_ticks() + b.variance_ticks())).abs() < 1e-6
        );
    }

    #[test]
    fn max_dominates_min(a in arb_dist(8), b in arb_dist(8)) {
        let hi = a.max(&b);
        let lo = a.min(&b);
        prop_assert!(hi.mean_ticks() + 1e-9 >= lo.mean_ticks());
        prop_assert!(hi.min_tick() >= lo.min_tick());
        prop_assert!(hi.max_tick() >= lo.max_tick());
    }

    #[test]
    fn max_min_masses_multiply(a in arb_subdist(8), b in arb_subdist(8)) {
        let expect = a.total_mass() * b.total_mass();
        prop_assert!((a.max(&b).total_mass() - expect).abs() < 1e-9);
        prop_assert!((a.min(&b).total_mass() - expect).abs() < 1e-9);
    }

    #[test]
    fn fast_ops_match_naive(a in arb_subdist(6), b in arb_subdist(6)) {
        prop_assert!(a.max(&b).l1_distance(&naive::max(&a, &b)) < 1e-9);
        prop_assert!(a.min(&b).l1_distance(&naive::min(&a, &b)) < 1e-9);
        prop_assert!(a.convolve(&b).l1_distance(&naive::convolve(&a, &b)) < 1e-9);
    }

    #[test]
    fn combining_is_commutative(a in arb_dist(6), b in arb_dist(6)) {
        prop_assert_eq!(a.max(&b), b.max(&a));
        prop_assert_eq!(a.min(&b), b.min(&a));
    }

    #[test]
    fn combining_is_associative(a in arb_dist(4), b in arb_dist(4), c in arb_dist(4)) {
        let left = a.max(&b).max(&c);
        let right = a.max(&b.max(&c));
        prop_assert!(left.l1_distance(&right) < 1e-9);
        let left = a.min(&b).min(&c);
        let right = a.min(&b.min(&c));
        prop_assert!(left.l1_distance(&right) < 1e-9);
    }

    #[test]
    fn max_with_point_below_support_is_identity(a in arb_dist(8)) {
        let floor = DiscreteDist::point(a.min_tick().expect("non-empty") - 1);
        // Up to 1 ulp of rounding from the CDF differencing.
        prop_assert!(a.max(&floor).l1_distance(&a) < 1e-12);
        prop_assert!(a.min(&floor).l1_distance(&floor) < 1e-12);
    }

    #[test]
    fn shift_preserves_shape(a in arb_dist(8), dt in -100i64..100) {
        let shifted = a.shifted(dt);
        prop_assert!((shifted.mean_ticks() - (a.mean_ticks() + dt as f64)).abs() < 1e-9);
        prop_assert!((shifted.variance_ticks() - a.variance_ticks()).abs() < 1e-9);
        prop_assert!((shifted.total_mass() - a.total_mass()).abs() < 1e-12);
    }

    #[test]
    fn truncate_then_mass_accounting(a in arb_dist(12), pmin in 0.0f64..0.2) {
        let mut t = a.clone();
        let dropped = t.truncate_below(pmin);
        prop_assert!((t.total_mass() + dropped - a.total_mass()).abs() < 1e-9);
        for (tick, p) in t.iter() {
            prop_assert!(p >= pmin || p == a.prob_at(tick));
            prop_assert!(p >= pmin);
        }
    }

    #[test]
    fn normalize_restores_unit_mass(a in arb_subdist(8)) {
        let n = a.normalized();
        prop_assert!((n.total_mass() - 1.0).abs() < 1e-12);
        // Shape is preserved.
        prop_assert!((n.mean_ticks() - a.mean_ticks()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(a in arb_dist(10)) {
        let q1 = a.quantile(0.25).expect("non-empty");
        let q2 = a.quantile(0.5).expect("non-empty");
        let q3 = a.quantile(0.99).expect("non-empty");
        prop_assert!(q1 <= q2 && q2 <= q3);
        prop_assert!(q1 >= a.min_tick().expect("non-empty"));
        prop_assert!(q3 <= a.max_tick().expect("non-empty"));
    }

    #[test]
    fn discretization_conserves_mass(
        mean in 5.0f64..50.0,
        sigma_frac in 0.04f64..0.10,
        step in 0.1f64..2.0,
    ) {
        let d = ContinuousDist::normal(mean, mean * sigma_frac).expect("valid");
        let ts = TimeStep::new(step).expect("valid");
        let pmf = pep_dist::discretize(&d, ts);
        prop_assert!((pmf.total_mass() - 1.0).abs() < 1e-9);
        // Mean error bounded by one step.
        prop_assert!((pmf.mean_time(ts) - d.mean()).abs() <= step);
    }

    #[test]
    fn op_chains_preserve_invariants_across_threads(
        start in arb_subdist(8),
        ops in prop::collection::vec((0u8..7, -20i64..20, 0.1f64..=1.0, arb_subdist(6)), 1..8),
    ) {
        // Invariants every constructor guarantees (release builds
        // included, since the probability validation moved out of
        // debug_assert): finite non-negative probabilities, trimmed
        // support ends, and sub-probability mass for sub-probability
        // inputs. Any chain of the propagation operators must preserve
        // them.
        fn apply_chain(start: &DiscreteDist, ops: &[(u8, i64, f64, DiscreteDist)]) -> DiscreteDist {
            let mut d = start.clone();
            for (op, dt, k, aux) in ops {
                d = match op {
                    0 => d.shifted(*dt),
                    1 => d.scaled(*k),
                    2 => d.convolve(aux),
                    3 => d.max(aux),
                    4 => d.min(aux),
                    5 => {
                        let mut t = d.clone();
                        t.truncate_below(*k * 1e-3);
                        t
                    }
                    _ => d.coarsened((*dt).unsigned_abs() as usize + 1),
                };
            }
            d
        }
        let sequential = apply_chain(&start, &ops);
        for (tick, p) in sequential.iter() {
            prop_assert!(p.is_finite() && p >= 0.0, "prob {p} at tick {tick}");
        }
        prop_assert!(sequential.total_mass() <= 1.0 + 1e-9);
        if !sequential.is_empty() {
            let lo = sequential.min_tick().expect("non-empty");
            let hi = sequential.max_tick().expect("non-empty");
            prop_assert!(sequential.prob_at(lo) > 0.0, "support is trimmed at the low end");
            prop_assert!(sequential.prob_at(hi) > 0.0, "support is trimmed at the high end");
        }
        // The operators are pure: re-running the same chain concurrently
        // on worker threads must reproduce the sequential result bit for
        // bit (the analyzer's wave scheduler relies on exactly this).
        let threaded: Vec<DiscreteDist> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| scope.spawn(|| apply_chain(&start, &ops)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for t in &threaded {
            prop_assert_eq!(t, &sequential);
        }
    }

    // ------------------------------------------------------------------
    // Allocation-free kernel layer: every `*_into` kernel must be
    // bit-identical (`==`, not ε-close) to its allocating counterpart —
    // the analyzer's deterministic output contract depends on it.
    // ------------------------------------------------------------------

    #[test]
    fn convolve_into_matches_allocating(a in arb_subdist(8), b in arb_subdist(8)) {
        let mut scratch = DistScratch::new();
        let mut out = scratch.take();
        a.convolve_into(&b, &mut out);
        prop_assert_eq!(&out, &a.convolve(&b));
        // In-place variant, both operand orders.
        let mut c = a.clone();
        c.convolve_in_place(&b, &mut scratch);
        prop_assert_eq!(&c, &a.convolve(&b));
    }

    #[test]
    fn point_convolve_fast_path_matches(a in arb_subdist(8), t in -50i64..50, p in 0.05f64..=1.0) {
        // Single-event operands take the shift+scale fast path; it must
        // reproduce the generic quadratic loop bit for bit.
        let point = DiscreteDist::event(t, p);
        let mut out = DiscreteDist::empty();
        a.convolve_into(&point, &mut out);
        prop_assert_eq!(&out, &a.convolve(&point));
        point.convolve_into(&a, &mut out);
        prop_assert_eq!(&out, &point.convolve(&a));
        let mut scratch = DistScratch::new();
        let mut c = a.clone();
        c.convolve_in_place(&point, &mut scratch);
        prop_assert_eq!(&c, &a.convolve(&point));
        let mut c = point.clone();
        c.convolve_in_place(&a, &mut scratch);
        prop_assert_eq!(&c, &point.convolve(&a));
    }

    #[test]
    fn max_min_into_match_allocating(a in arb_subdist(8), b in arb_subdist(8)) {
        let mut out = DiscreteDist::empty();
        a.max_into(&b, &mut out);
        prop_assert_eq!(&out, &a.max(&b));
        a.min_into(&b, &mut out);
        prop_assert_eq!(&out, &a.min(&b));
        // Buffer reuse must not leak previous contents.
        a.max_into(&b, &mut out);
        prop_assert_eq!(&out, &a.max(&b));
    }

    #[test]
    fn accumulate_into_and_scaled_match(a in arb_subdist(6), b in arb_subdist(6),
                                        k in 0.05f64..=1.0) {
        let mut expect = a.scaled(0.5);
        let b = b.scaled(0.5);
        let mut got = DiscreteDist::empty();
        a.scaled(0.5).accumulate_into(&b, &mut got);
        expect.accumulate(&b);
        prop_assert_eq!(&got, &expect);

        // Fused accumulate_scaled == accumulate(&other.scaled(k)).
        let mut scratch = DistScratch::new();
        let mut fused = a.scaled(0.5);
        fused.accumulate_scaled(&b, k, &mut scratch);
        let mut twostep = a.scaled(0.5);
        twostep.accumulate(&b.scaled(k));
        prop_assert_eq!(&fused, &twostep);

        // Nested-span fast path: widen self so other nests inside.
        let mut wide = a.scaled(0.25);
        wide.accumulate(&b.shifted(-200).scaled(0.25));
        wide.accumulate(&b.shifted(200).scaled(0.25));
        let mut wide2 = wide.clone();
        wide.accumulate_scaled(&b, k, &mut scratch);
        wide2.accumulate(&b.scaled(k));
        prop_assert_eq!(&wide, &wide2);
    }

    #[test]
    fn coarsen_into_matches_allocating(a in arb_subdist(12), k in 1usize..8) {
        let mut scratch = DistScratch::new();
        let mut out = DiscreteDist::empty();
        a.coarsen_into(k, &mut out, &mut scratch);
        prop_assert_eq!(&out, &a.coarsened(k));
    }

    #[test]
    fn kary_combine_matches_pairwise_fold(
        groups in prop::collection::vec(
            (arb_subdist(6), any::<bool>()).prop_map(|(d, keep)| {
                if keep { d } else { DiscreteDist::empty() }
            }),
            0..6),
    ) {
        let refs: Vec<&DiscreteDist> = groups.iter().collect();
        let mut scratch = DistScratch::new();
        let mut out = DiscreteDist::empty();

        // Reference: the pairwise fold that gate-input combining uses
        // (empty groups are skipped, not poisoning).
        let fold = |op: fn(&DiscreteDist, &DiscreteDist) -> DiscreteDist| {
            let mut acc: Option<DiscreteDist> = None;
            for g in groups.iter().filter(|g| !g.is_empty()) {
                acc = Some(match acc {
                    None => g.clone(),
                    Some(a) => op(&a, g),
                });
            }
            acc.unwrap_or_default()
        };

        DiscreteDist::max_k_into(&refs, &mut out, &mut scratch);
        prop_assert_eq!(&out, &fold(DiscreteDist::max));
        DiscreteDist::min_k_into(&refs, &mut out, &mut scratch);
        prop_assert_eq!(&out, &fold(DiscreteDist::min));
        // The streaming reference implementation must stay bit-identical
        // to the fold too (it is benchmarked against it).
        DiscreteDist::max_k_streaming_into(&refs, &mut out, &mut scratch);
        prop_assert_eq!(&out, &fold(DiscreteDist::max));
    }

    #[test]
    fn from_pairs_one_pass_matches_reference(
        pairs in prop::collection::vec((-50i64..50, 0u32..1000), 0..12),
    ) {
        // Reference: the original collect-then-three-scan construction.
        let total: u64 = pairs.iter().map(|&(_, w)| w as u64).sum::<u64>().max(1);
        let fp: Vec<(i64, f64)> = pairs
            .iter()
            .map(|&(t, w)| (t, w as f64 / total as f64))
            .collect();
        let filtered: Vec<(i64, f64)> = fp.iter().copied().filter(|&(_, p)| p != 0.0).collect();
        let expect = if filtered.is_empty() {
            DiscreteDist::empty()
        } else {
            let lo = filtered.iter().map(|&(t, _)| t).min().expect("non-empty");
            let hi = filtered.iter().map(|&(t, _)| t).max().expect("non-empty");
            let mut probs = vec![0.0; (hi - lo) as usize + 1];
            for &(t, p) in &filtered {
                probs[(t - lo) as usize] += p;
            }
            DiscreteDist::from_dense(lo, probs)
        };
        prop_assert_eq!(&DiscreteDist::from_pairs(fp), &expect);
    }

    #[test]
    fn running_merge_matches_sequential(xs in prop::collection::vec(-100.0f64..100.0, 2..50),
                                        split in 0usize..49) {
        use pep_dist::stats::Running;
        let split = split.min(xs.len() - 1);
        let mut a: Running = xs[..split].iter().copied().collect();
        let b: Running = xs[split..].iter().copied().collect();
        a.merge(&b);
        let all: Running = xs.iter().copied().collect();
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((a.population_variance() - all.population_variance()).abs() < 1e-6);
    }
}
