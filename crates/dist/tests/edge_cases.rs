//! Edge-case tests of the public distribution API, complementing the
//! property suite with exact, hand-checkable expectations.

use pep_dist::stats::{Confidence, ErrorSummary, Running};
use pep_dist::{discretize, naive, ContinuousDist, DiscreteDist, TimeStep};

#[test]
fn convolving_with_a_point_is_a_shift() {
    let g = DiscreteDist::from_ratios([(2, 1), (5, 3)]);
    assert_eq!(g.convolve(&DiscreteDist::point(7)), g.shifted(7));
    assert_eq!(g.convolve(&DiscreteDist::point(0)), g);
}

#[test]
fn max_with_itself_squares_the_cdf() {
    // max(X, X') of two *independent* copies is NOT X: P(max<=t)=F(t)^2.
    let g = DiscreteDist::from_ratios([(0, 1), (1, 1)]);
    let m = g.max(&g);
    assert!((m.prob_at(0) - 0.25).abs() < 1e-12);
    assert!((m.prob_at(1) - 0.75).abs() < 1e-12);
}

#[test]
fn negative_ticks_work_everywhere() {
    let g = DiscreteDist::from_pairs([(-10, 0.5), (-3, 0.5)]);
    assert_eq!(g.min_tick(), Some(-10));
    assert!((g.mean_ticks() + 6.5).abs() < 1e-12);
    let shifted = g.shifted(-100);
    assert_eq!(shifted.min_tick(), Some(-110));
    let c = g.convolve(&DiscreteDist::point(-5));
    assert_eq!(c.max_tick(), Some(-8));
    assert_eq!(g.quantile(0.5), Some(-10));
}

#[test]
fn zero_probability_events_are_dropped_at_construction() {
    let g = DiscreteDist::from_pairs([(1, 0.0), (2, 1.0), (3, 0.0)]);
    assert_eq!(g.support_len(), 1);
    assert_eq!(g.min_tick(), Some(2));
    assert!(DiscreteDist::event(5, 0.0).is_empty());
}

#[test]
fn from_dense_trims_leading_and_trailing_zeros() {
    let g = DiscreteDist::from_dense(10, vec![0.0, 0.0, 0.4, 0.6, 0.0]);
    assert_eq!(g.min_tick(), Some(12));
    assert_eq!(g.max_tick(), Some(13));
    assert_eq!(g.support_span(), 2);
}

#[test]
fn quantile_of_subprobability_uses_normalized_mass() {
    let g = DiscreteDist::from_pairs([(1, 0.2), (9, 0.2)]); // mass 0.4
    assert_eq!(g.quantile(0.5), Some(1));
    assert_eq!(g.quantile(0.51), Some(9));
    assert_eq!(g.quantile(1.0), Some(9));
}

#[test]
fn naive_ops_cover_subprobability_inputs() {
    let a = DiscreteDist::from_pairs([(0, 0.3), (2, 0.3)]);
    let b = DiscreteDist::from_pairs([(1, 0.5)]);
    assert!((naive::max(&a, &b).total_mass() - 0.3).abs() < 1e-12);
    assert!(naive::min(&a, &b).l1_distance(&a.min(&b)) < 1e-12);
    assert!(naive::convolve(&a, &b).l1_distance(&a.convolve(&b)) < 1e-12);
}

#[test]
fn coarsened_is_idempotent_at_target_size() {
    let g = DiscreteDist::from_pairs((0..100).map(|t| (t, 0.01)));
    let once = g.coarsened(10);
    let twice = once.coarsened(10);
    assert_eq!(once, twice);
}

#[test]
fn discretize_point_like_uniform() {
    // A very narrow uniform collapses to one or two grid points.
    let d = ContinuousDist::uniform(5.0, 5.001).expect("valid");
    let g = discretize(&d, TimeStep::new(1.0).expect("valid"));
    assert!(g.support_len() <= 2);
    assert!((g.total_mass() - 1.0).abs() < 1e-12);
}

#[test]
fn discretize_offset_grids_round_consistently() {
    let d = ContinuousDist::uniform(0.0, 10.0).expect("valid");
    for step in [0.3, 0.7, 1.9] {
        let ts = TimeStep::new(step).expect("valid");
        let g = discretize(&d, ts);
        assert!((g.total_mass() - 1.0).abs() < 1e-9, "step {step}");
        assert!((g.mean_time(ts) - 5.0).abs() < step, "step {step}");
    }
}

#[test]
fn running_with_one_sample() {
    let r: Running = [42.0].into_iter().collect();
    assert_eq!(r.count(), 1);
    assert_eq!(r.mean(), 42.0);
    assert_eq!(r.sample_variance(), 0.0);
    assert_eq!(r.population_variance(), 0.0);
}

#[test]
fn error_summary_tracks_worst() {
    let mut e = ErrorSummary::new();
    e.push_pair(10.0, 10.5); // 5%
    e.push_pair(10.0, 9.0); // 10%
    e.push_pair(10.0, 10.01); // 0.1%
    assert!((e.worst_percent() - 10.0).abs() < 1e-9);
    assert!(e.report_percent() > e.mean_percent());
}

#[test]
fn student_t_monotone_in_confidence_and_dof() {
    use pep_dist::stats::student_t_critical;
    for dof in [1, 5, 10, 30, 100] {
        let c90 = student_t_critical(Confidence::P90, dof);
        let c95 = student_t_critical(Confidence::P95, dof);
        let c99 = student_t_critical(Confidence::P99, dof);
        assert!(c90 < c95 && c95 < c99, "dof {dof}");
    }
    // Critical values shrink toward the normal limit as dof grows.
    assert!(student_t_critical(Confidence::P99, 2) > student_t_critical(Confidence::P99, 20));
}

#[test]
fn tick_sampler_is_deterministic_per_seed() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let g = DiscreteDist::from_ratios([(1, 1), (4, 2), (9, 1)]);
    let s = g.sampler().expect("non-empty");
    let draw = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..16).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
    };
    assert_eq!(draw(7), draw(7));
    assert_ne!(draw(7), draw(8));
}

#[test]
fn kolmogorov_distance_properties() {
    let a = DiscreteDist::from_ratios([(0, 1), (10, 1)]);
    let shifted = a.shifted(1);
    // A one-tick shift barely moves KS for wide shapes but saturates L1.
    assert!(a.kolmogorov_distance(&shifted) <= 0.5);
    assert!((a.l1_distance(&shifted) - 2.0).abs() < 1e-12);
    assert_eq!(a.kolmogorov_distance(&a), 0.0);
    let far = DiscreteDist::point(100);
    assert!((a.kolmogorov_distance(&far) - 1.0).abs() < 1e-12);
    assert_eq!(
        DiscreteDist::empty().kolmogorov_distance(&DiscreteDist::empty()),
        0.0
    );
    assert_eq!(a.kolmogorov_distance(&DiscreteDist::empty()), 1.0);
    // Subprobability inputs compare by shape.
    assert!(a.kolmogorov_distance(&a.scaled(0.3)) < 1e-12);
}

#[test]
fn skewness_signs() {
    let symmetric = DiscreteDist::from_ratios([(0, 1), (1, 2), (2, 1)]);
    assert!(symmetric.skewness().abs() < 1e-12);
    let right_tailed = DiscreteDist::from_ratios([(0, 8), (1, 2), (10, 1)]);
    assert!(right_tailed.skewness() > 0.0);
    let left_tailed = DiscreteDist::from_ratios([(0, 1), (9, 2), (10, 8)]);
    assert!(left_tailed.skewness() < 0.0);
    assert!(DiscreteDist::point(5).skewness().is_nan());
}

#[test]
fn l1_distance_is_a_metric_on_samples() {
    let a = DiscreteDist::from_ratios([(0, 1), (2, 1)]);
    let b = DiscreteDist::from_ratios([(0, 1), (3, 1)]);
    let c = DiscreteDist::from_ratios([(1, 1), (3, 1)]);
    // Symmetry and triangle inequality.
    assert!((a.l1_distance(&b) - b.l1_distance(&a)).abs() < 1e-12);
    assert!(a.l1_distance(&c) <= a.l1_distance(&b) + b.l1_distance(&c) + 1e-12);
    assert_eq!(a.l1_distance(&a), 0.0);
}
