use std::fmt;

/// Errors produced while constructing or manipulating distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A parameter that must be strictly positive was zero or negative.
    NonPositive {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Distribution bounds were inverted or degenerate (`lo >= hi`).
    BadRange {
        /// Lower bound supplied by the caller.
        lo: f64,
        /// Upper bound supplied by the caller.
        hi: f64,
    },
    /// The triangular mode lies outside `[lo, hi]`.
    ModeOutOfRange {
        /// The rejected mode.
        mode: f64,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A probability was negative or not finite.
    BadProbability {
        /// The rejected probability value.
        value: f64,
    },
    /// A value was NaN or infinite where a finite number is required.
    NotFinite {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// Shifting a distribution would overflow the `i64` tick index.
    TickOverflow {
        /// Tick origin before the shift.
        origin: i64,
        /// The shift amount that would overflow.
        delta: i64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            DistError::BadRange { lo, hi } => {
                write!(f, "invalid range: lo {lo} must be less than hi {hi}")
            }
            DistError::ModeOutOfRange { mode, lo, hi } => {
                write!(f, "triangular mode {mode} outside [{lo}, {hi}]")
            }
            DistError::BadProbability { value } => {
                write!(f, "probability {value} must be finite and non-negative")
            }
            DistError::NotFinite { what } => write!(f, "{what} must be finite"),
            DistError::TickOverflow { origin, delta } => {
                write!(f, "tick shift overflows: origin {origin} + delta {delta}")
            }
        }
    }
}

impl std::error::Error for DistError {}
