//! Probability substrate for statistical timing analysis by probabilistic
//! event propagation.
//!
//! This crate provides the mathematical foundation used by the rest of the
//! `psta` workspace (a reproduction of Liou, Cheng, Kundu and Krstić,
//! *"Fast Statistical Timing Analysis By Probabilistic Event Propagation"*,
//! DAC 2001):
//!
//! * [`ContinuousDist`] — the continuous delay models (normal, uniform,
//!   triangular) that cell libraries attach to timing arcs,
//! * [`TimeStep`] — the fixed *sampling step* that places every delay and
//!   arrival time on a shared integer tick grid (paper §2.2),
//! * [`DiscreteDist`] — a discrete (sub-)probability distribution over ticks;
//!   arrival-time *event groups* are exactly these,
//! * the propagation primitives on [`DiscreteDist`]: shift-with-scaling,
//!   grouping, convolution and the statistical [`DiscreteDist::min`] /
//!   [`DiscreteDist::max`] combining operators (paper §2.3),
//! * [`discretize`](fn@discretize) — pdf discretization (paper Fig. 2),
//! * [`stats`] — running statistics, Student-t confidence bounds and the
//!   paper's `M_e + 3σ_e` error metric (paper §4).
//!
//! # Example
//!
//! Discretize a triangular cell delay and push one deterministic input event
//! through it (the paper's Fig. 3):
//!
//! ```
//! use pep_dist::{ContinuousDist, DiscreteDist, TimeStep, discretize};
//!
//! let delay = ContinuousDist::triangular(1.0, 2.0, 3.0)?;
//! let step = TimeStep::new(0.5)?;
//! let delay_pmf = discretize(&delay, step);
//! // A deterministic event at t = 10 ticks propagates by convolution.
//! let out = DiscreteDist::point(10).convolve(&delay_pmf);
//! assert!((out.total_mass() - 1.0).abs() < 1e-12);
//! assert!((out.mean_ticks() - (10.0 + delay.mean() / 0.5)).abs() < 0.3);
//! # Ok::<(), pep_dist::DistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod continuous;
mod discrete;
mod discretize;
mod error;
pub mod naive;
mod scratch;
mod step;

pub mod stats;

pub use continuous::ContinuousDist;
pub use discrete::{DiscreteDist, TickSampler};
pub use discretize::{discretize, discretize_with_samples, step_for_samples, try_discretize};
pub use error::DistError;
pub use scratch::DistScratch;
pub use step::TimeStep;
