use crate::{ContinuousDist, DiscreteDist, DistError, TimeStep};

/// Discretizes a continuous delay pdf onto the tick grid (paper Fig. 2).
///
/// Each grid tick `t` receives the probability mass of the half-open bin
/// `((t − ½)·step, (t + ½)·step]`; the first and last bins absorb any tail
/// mass outside the distribution's [discretization range], so the result
/// always sums to one.
///
/// A smaller `step` yields more data points (the paper's `N_s` knob): higher
/// resolution, slower analysis.
///
/// # Example
///
/// ```
/// use pep_dist::{ContinuousDist, TimeStep, discretize};
///
/// let tri = ContinuousDist::triangular(0.0, 2.0, 4.0)?;
/// let pmf = discretize(&tri, TimeStep::new(1.0)?);
/// assert!((pmf.total_mass() - 1.0).abs() < 1e-12);
/// // Symmetric triangle: mean preserved on the grid.
/// assert!((pmf.mean_ticks() - 2.0).abs() < 1e-9);
/// # Ok::<(), pep_dist::DistError>(())
/// ```
///
/// [discretization range]: ContinuousDist::discretization_range
pub fn discretize(dist: &ContinuousDist, step: TimeStep) -> DiscreteDist {
    // invariant: ContinuousDist constructors validate their parameters,
    // so a checked discretization of a well-formed dist cannot fail.
    try_discretize(dist, step).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`discretize`]: validates the discretization range
/// and every CDF evaluation instead of folding NaN into the bins.
///
/// A NaN from a buggy CDF would otherwise be clamped to zero mass by the
/// `max(0.0)` bin arithmetic and silently vanish from the result.
///
/// # Errors
///
/// Returns [`DistError::NotFinite`] if the distribution's range bounds
/// or any CDF value are NaN or infinite.
pub fn try_discretize(dist: &ContinuousDist, step: TimeStep) -> Result<DiscreteDist, DistError> {
    let (lo, hi) = dist.discretization_range();
    if !lo.is_finite() || !hi.is_finite() {
        return Err(DistError::NotFinite {
            what: "discretization range",
        });
    }
    let t_lo = step.ticks_of(lo);
    let t_hi = step.ticks_of(hi).max(t_lo);
    let n = (t_hi - t_lo) as usize + 1;
    let mut probs = vec![0.0; n];
    let h = step.size();
    let mut prev_cdf = 0.0; // everything below the first bin's lower edge
    for (i, slot) in probs.iter_mut().enumerate() {
        let t = t_lo + i as i64;
        let cur_cdf = if t == t_hi {
            1.0 // last bin absorbs the upper tail
        } else {
            dist.cdf((t as f64 + 0.5) * h)
        };
        if !cur_cdf.is_finite() {
            return Err(DistError::NotFinite { what: "cdf value" });
        }
        *slot = (cur_cdf - prev_cdf).max(0.0);
        prev_cdf = cur_cdf;
    }
    DiscreteDist::try_from_dense(t_lo, probs)
}

/// Chooses a step so that `dist` discretizes to approximately `n_samples`
/// data points, then discretizes with it.
///
/// This is the direct implementation of the paper's "number of data samples
/// of each random variable" (`N_s`) parameterization (§4, Fig. 8). Returns
/// the chosen step alongside the distribution.
///
/// # Panics
///
/// Panics if `n_samples` is zero.
pub fn discretize_with_samples(
    dist: &ContinuousDist,
    n_samples: usize,
) -> (DiscreteDist, TimeStep) {
    let step = step_for_samples(dist, n_samples);
    (discretize(dist, step), step)
}

/// The step that gives `dist` approximately `n_samples` grid points over its
/// discretization range.
///
/// Degenerate (zero-width) distributions get a unit step.
///
/// # Panics
///
/// Panics if `n_samples` is zero.
pub fn step_for_samples(dist: &ContinuousDist, n_samples: usize) -> TimeStep {
    assert!(n_samples > 0, "need at least one sample");
    let (lo, hi) = dist.discretization_range();
    let width = hi - lo;
    if width <= 0.0 {
        return TimeStep::new(1.0).expect("1.0 is a valid step");
    }
    TimeStep::new(width / n_samples as f64).expect("positive width / positive count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_discretization_matches_fig2() {
        // Fig. 2: a triangle pdf discretized with a sampling step; mass in
        // each bin follows the ramp shape.
        let tri = ContinuousDist::triangular(0.0, 2.0, 4.0).unwrap();
        let pmf = discretize(&tri, TimeStep::new(1.0).unwrap());
        assert!((pmf.total_mass() - 1.0).abs() < 1e-12);
        // Symmetry of the symmetric triangle.
        assert!((pmf.prob_at(0) - pmf.prob_at(4)).abs() < 1e-12);
        assert!((pmf.prob_at(1) - pmf.prob_at(3)).abs() < 1e-12);
        // The mode bin has the most mass.
        assert!(pmf.prob_at(2) > pmf.prob_at(1));
        assert!(pmf.prob_at(1) > pmf.prob_at(0));
    }

    #[test]
    fn finer_steps_converge_to_continuous_moments() {
        let d = ContinuousDist::normal(20.0, 1.5).unwrap();
        let mut prev_err = f64::INFINITY;
        for step in [2.0, 1.0, 0.5, 0.25] {
            let ts = TimeStep::new(step).unwrap();
            let pmf = discretize(&d, ts);
            let mean_err = (pmf.mean_time(ts) - d.mean()).abs();
            let std_err = (pmf.std_time(ts) - d.std_dev()).abs();
            let err = mean_err + std_err;
            assert!(err <= prev_err + 1e-9, "error should shrink with the step");
            prev_err = err;
        }
        assert!(prev_err < 0.05);
    }

    #[test]
    fn normal_tails_folded_into_boundary_bins() {
        let d = ContinuousDist::normal(10.0, 1.0).unwrap();
        let pmf = discretize(&d, TimeStep::new(0.5).unwrap());
        assert!((pmf.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_distribution_discretizes_to_point() {
        let d = ContinuousDist::point(7.2).unwrap();
        let pmf = discretize(&d, TimeStep::new(1.0).unwrap());
        assert_eq!(pmf, DiscreteDist::point(7));
    }

    #[test]
    fn with_samples_hits_requested_count() {
        let d = ContinuousDist::uniform(0.0, 10.0).unwrap();
        for n in [4, 10, 25] {
            let (pmf, _) = discretize_with_samples(&d, n);
            let got = pmf.support_span();
            assert!(
                (got as i64 - n as i64).unsigned_abs() <= 1,
                "requested {n} samples, got {got}"
            );
        }
    }

    #[test]
    fn uniform_bins_are_flat() {
        let d = ContinuousDist::uniform(0.0, 8.0).unwrap();
        let pmf = discretize(&d, TimeStep::new(1.0).unwrap());
        // Interior bins all carry step/width mass.
        for t in 1..8 {
            assert!((pmf.prob_at(t) - 1.0 / 8.0).abs() < 1e-12);
        }
        // Boundary bins carry half bins.
        assert!((pmf.prob_at(0) - 0.5 / 8.0).abs() < 1e-12);
        assert!((pmf.total_mass() - 1.0).abs() < 1e-12);
    }
}
