//! Reference `O(n²)` implementations of the combining operators, written
//! directly from the paper's pairwise-event description (§2.3).
//!
//! These exist to differentially test the fast CDF-based operators in
//! [`DiscreteDist`] and to serve as executable documentation of the paper's
//! semantics; production code should use the methods on [`DiscreteDist`].

use crate::DiscreteDist;

/// Pairwise-event maximum: every event pair `(t₁,p₁) × (t₂,p₂)` contributes
/// `p₁·p₂` at `max(t₁,t₂)`.
///
/// # Example
///
/// ```
/// use pep_dist::DiscreteDist;
/// use pep_dist::naive;
///
/// let a = DiscreteDist::from_pairs([(1, 0.5), (3, 0.5)]);
/// let b = DiscreteDist::from_pairs([(2, 1.0)]);
/// let fast = a.max(&b);
/// let slow = naive::max(&a, &b);
/// assert!(fast.l1_distance(&slow) < 1e-12);
/// ```
pub fn max(a: &DiscreteDist, b: &DiscreteDist) -> DiscreteDist {
    combine(a, b, i64::max)
}

/// Pairwise-event minimum: every event pair contributes `p₁·p₂` at
/// `min(t₁,t₂)` — the operation illustrated in the paper's Fig. 5.
pub fn min(a: &DiscreteDist, b: &DiscreteDist) -> DiscreteDist {
    combine(a, b, i64::min)
}

/// Pairwise-event sum (convolution by enumeration).
pub fn convolve(a: &DiscreteDist, b: &DiscreteDist) -> DiscreteDist {
    combine(a, b, |x, y| x + y)
}

fn combine(a: &DiscreteDist, b: &DiscreteDist, f: fn(i64, i64) -> i64) -> DiscreteDist {
    let mut pairs = Vec::new();
    for (ta, pa) in a.iter() {
        for (tb, pb) in b.iter() {
            pairs.push((f(ta, tb), pa * pb));
        }
    }
    DiscreteDist::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_ops_agree_with_fast_ops() {
        let a = DiscreteDist::from_pairs([(0, 0.1), (2, 0.4), (3, 0.2), (7, 0.3)]);
        let b = DiscreteDist::from_pairs([(1, 0.6), (3, 0.15), (5, 0.25)]);
        assert!(a.max(&b).l1_distance(&max(&a, &b)) < 1e-12);
        assert!(a.min(&b).l1_distance(&min(&a, &b)) < 1e-12);
        assert!(a.convolve(&b).l1_distance(&convolve(&a, &b)) < 1e-12);
    }

    #[test]
    fn fig5_style_min_combine() {
        // Two groups feeding a falling AND output: the earliest event
        // dominates. Probability-ratio bookkeeping per the paper.
        let upper = DiscreteDist::from_ratios([(2, 1), (3, 2), (4, 1)]);
        let lower = DiscreteDist::from_ratios([(1, 1), (2, 2), (3, 1)]);
        let fast = upper.min(&lower);
        let slow = min(&upper, &lower);
        assert!(fast.l1_distance(&slow) < 1e-12);
        // The t=1 event of the lower group dominates everything in the
        // upper group, so its full probability (1/4) survives.
        assert!((fast.prob_at(1) - 0.25).abs() < 1e-12);
        assert!((fast.total_mass() - 1.0).abs() < 1e-12);
    }
}
