use crate::DistError;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A continuous delay model, as attached to cells and wires by a library.
///
/// The paper models every cell delay as a random variable with a known pdf;
/// the three shapes here cover the paper's examples (triangular, Fig. 2) and
/// the usual process-variation models (normal). All are parameterized in the
/// library's physical time unit.
///
/// # Example
///
/// ```
/// use pep_dist::ContinuousDist;
///
/// let d = ContinuousDist::normal(10.0, 0.8)?;
/// assert_eq!(d.mean(), 10.0);
/// assert!((d.cdf(10.0) - 0.5).abs() < 1e-6);
/// # Ok::<(), pep_dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ContinuousDist {
    /// Gaussian with the given mean and standard deviation.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation (strictly positive).
        sigma: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Triangular on `[lo, hi]` with the given mode.
    Triangular {
        /// Lower bound.
        lo: f64,
        /// Mode (peak of the pdf), within `[lo, hi]`.
        mode: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A deterministic (zero-variance) delay.
    Point {
        /// The single possible value.
        value: f64,
    },
}

/// How many standard deviations of a normal are covered when discretizing.
///
/// ±4σ captures 99.994% of the mass; the remainder is folded into the
/// boundary bins so the discrete distribution still sums to one.
pub(crate) const NORMAL_SUPPORT_SIGMAS: f64 = 4.0;

impl ContinuousDist {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Rejects non-finite parameters and non-positive `sigma`.
    pub fn normal(mean: f64, sigma: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || !sigma.is_finite() {
            return Err(DistError::NotFinite {
                what: "normal parameter",
            });
        }
        if sigma <= 0.0 {
            return Err(DistError::NonPositive {
                what: "sigma",
                value: sigma,
            });
        }
        Ok(ContinuousDist::Normal { mean, sigma })
    }

    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite bounds and `lo >= hi`.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(DistError::NotFinite {
                what: "uniform bound",
            });
        }
        if lo >= hi {
            return Err(DistError::BadRange { lo, hi });
        }
        Ok(ContinuousDist::Uniform { lo, hi })
    }

    /// Creates a triangular distribution on `[lo, hi]` with the given mode.
    ///
    /// # Errors
    ///
    /// Rejects non-finite parameters, `lo >= hi`, and a mode outside the
    /// bounds.
    pub fn triangular(lo: f64, mode: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !mode.is_finite() || !hi.is_finite() {
            return Err(DistError::NotFinite {
                what: "triangular parameter",
            });
        }
        if lo >= hi {
            return Err(DistError::BadRange { lo, hi });
        }
        if mode < lo || mode > hi {
            return Err(DistError::ModeOutOfRange { mode, lo, hi });
        }
        Ok(ContinuousDist::Triangular { lo, mode, hi })
    }

    /// Creates a deterministic delay.
    ///
    /// # Errors
    ///
    /// Rejects non-finite values.
    pub fn point(value: f64) -> Result<Self, DistError> {
        if !value.is_finite() {
            return Err(DistError::NotFinite {
                what: "point value",
            });
        }
        Ok(ContinuousDist::Point { value })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            ContinuousDist::Normal { mean, .. } => mean,
            ContinuousDist::Uniform { lo, hi } => 0.5 * (lo + hi),
            ContinuousDist::Triangular { lo, mode, hi } => (lo + mode + hi) / 3.0,
            ContinuousDist::Point { value } => value,
        }
    }

    /// The variance of the distribution.
    pub fn variance(&self) -> f64 {
        match *self {
            ContinuousDist::Normal { sigma, .. } => sigma * sigma,
            ContinuousDist::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            ContinuousDist::Triangular { lo, mode, hi } => {
                (lo * lo + mode * mode + hi * hi - lo * mode - lo * hi - mode * hi) / 18.0
            }
            ContinuousDist::Point { .. } => 0.0,
        }
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            ContinuousDist::Normal { mean, sigma } => normal_cdf((x - mean) / sigma),
            ContinuousDist::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            ContinuousDist::Triangular { lo, mode, hi } => {
                if x <= lo {
                    0.0
                } else if x >= hi {
                    1.0
                } else if x <= mode {
                    // lo < x <= mode implies mode > lo, so the division is safe.
                    (x - lo) * (x - lo) / ((hi - lo) * (mode - lo))
                } else {
                    // mode <= x < hi implies mode < hi, so the division is safe.
                    1.0 - (hi - x) * (hi - x) / ((hi - lo) * (hi - mode))
                }
            }
            ContinuousDist::Point { value } => {
                if x >= value {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The probability density function at `x` (a Dirac spike reports `0`
    /// except exactly at its location, where it reports `f64::INFINITY`).
    pub fn pdf(&self, x: f64) -> f64 {
        match *self {
            ContinuousDist::Normal { mean, sigma } => {
                let z = (x - mean) / sigma;
                (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            }
            ContinuousDist::Uniform { lo, hi } => {
                if x >= lo && x <= hi {
                    1.0 / (hi - lo)
                } else {
                    0.0
                }
            }
            ContinuousDist::Triangular { lo, mode, hi } => {
                if x < lo || x > hi {
                    0.0
                } else if x < mode {
                    2.0 * (x - lo) / ((hi - lo) * (mode - lo))
                } else if x > mode {
                    2.0 * (hi - x) / ((hi - lo) * (hi - mode))
                } else {
                    2.0 / (hi - lo)
                }
            }
            ContinuousDist::Point { value } => {
                if x == value {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            ContinuousDist::Normal { mean, sigma } => mean + sigma * sample_standard_normal(rng),
            ContinuousDist::Uniform { lo, hi } => rng.random_range(lo..=hi),
            ContinuousDist::Triangular { lo, mode, hi } => {
                // Inverse-CDF sampling.
                let u: f64 = rng.random();
                let fc = (mode - lo) / (hi - lo);
                if u < fc {
                    lo + (u * (hi - lo) * (mode - lo)).sqrt()
                } else {
                    hi - ((1.0 - u) * (hi - lo) * (hi - mode)).sqrt()
                }
            }
            ContinuousDist::Point { value } => value,
        }
    }

    /// The finite range used when discretizing the distribution.
    ///
    /// Bounded distributions return their exact support; the normal is
    /// truncated at ±4σ (the clipped tail mass is folded into the boundary
    /// bins by [`discretize`](crate::discretize)).
    pub fn discretization_range(&self) -> (f64, f64) {
        match *self {
            ContinuousDist::Normal { mean, sigma } => (
                mean - NORMAL_SUPPORT_SIGMAS * sigma,
                mean + NORMAL_SUPPORT_SIGMAS * sigma,
            ),
            ContinuousDist::Uniform { lo, hi } => (lo, hi),
            ContinuousDist::Triangular { lo, hi, .. } => (lo, hi),
            ContinuousDist::Point { value } => (value, value),
        }
    }
}

/// Standard normal CDF via the complementary error function.
fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function, `1 - erf(x)`.
///
/// Uses the rational Chebyshev approximation from Numerical Recipes
/// (`erfcc`), accurate to about 1.2e-7 everywhere — more than enough for
/// timing-grade discretization.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Marsaglia polar method for a standard normal sample.
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validation() {
        assert!(ContinuousDist::normal(0.0, 0.0).is_err());
        assert!(ContinuousDist::normal(f64::NAN, 1.0).is_err());
        assert!(ContinuousDist::uniform(2.0, 1.0).is_err());
        assert!(ContinuousDist::triangular(0.0, 3.0, 2.0).is_err());
        assert!(ContinuousDist::triangular(0.0, -1.0, 2.0).is_err());
        assert!(ContinuousDist::point(f64::INFINITY).is_err());
        assert!(ContinuousDist::triangular(0.0, 1.0, 2.0).is_ok());
    }

    #[test]
    fn normal_cdf_symmetry() {
        let d = ContinuousDist::normal(0.0, 1.0).unwrap();
        // The erfc approximation is accurate to ~1.2e-7.
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-6);
        for z in [0.5, 1.0, 2.0, 3.0] {
            assert!((d.cdf(z) + d.cdf(-z) - 1.0).abs() < 1e-7);
        }
        // Standard values.
        assert!((d.cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((d.cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn triangular_moments() {
        let d = ContinuousDist::triangular(1.0, 2.0, 4.0).unwrap();
        assert!((d.mean() - 7.0 / 3.0).abs() < 1e-12);
        let expect_var = (1.0 + 4.0 + 16.0 - 2.0 - 4.0 - 8.0) / 18.0;
        assert!((d.variance() - expect_var).abs() < 1e-12);
    }

    #[test]
    fn triangular_cdf_is_monotone_and_normalized() {
        let d = ContinuousDist::triangular(0.0, 1.0, 3.0).unwrap();
        let mut prev = 0.0;
        for i in 0..=300 {
            let x = i as f64 * 0.01;
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12, "cdf must not decrease");
            prev = c;
        }
        assert!((d.cdf(3.0) - 1.0).abs() < 1e-12);
        assert!(
            (d.cdf(1.0) - 1.0 / 3.0).abs() < 1e-12,
            "F(mode) = (mode-lo)/(hi-lo)"
        );
    }

    #[test]
    fn triangular_degenerate_modes() {
        // mode == lo (pure ramp down) and mode == hi (pure ramp up).
        let down = ContinuousDist::triangular(0.0, 0.0, 2.0).unwrap();
        let up = ContinuousDist::triangular(0.0, 2.0, 2.0).unwrap();
        assert!((down.cdf(2.0) - 1.0).abs() < 1e-12);
        assert!((up.cdf(2.0) - 1.0).abs() < 1e-12);
        assert!((up.cdf(1.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [
            ContinuousDist::normal(5.0, 0.5).unwrap(),
            ContinuousDist::uniform(1.0, 3.0).unwrap(),
            ContinuousDist::triangular(0.0, 1.0, 4.0).unwrap(),
        ] {
            let n = 200_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                sum += x;
                sumsq += x * x;
            }
            let mean = sum / n as f64;
            let var = sumsq / n as f64 - mean * mean;
            assert!(
                (mean - d.mean()).abs() < 0.02,
                "sample mean {mean} vs {}",
                d.mean()
            );
            assert!(
                (var - d.variance()).abs() < 0.05,
                "sample var {var} vs {}",
                d.variance()
            );
        }
    }

    #[test]
    fn point_is_deterministic() {
        let d = ContinuousDist::point(3.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.mean(), 3.5);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cdf(3.4), 0.0);
        assert_eq!(d.cdf(3.5), 1.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        for d in [
            ContinuousDist::normal(2.0, 0.7).unwrap(),
            ContinuousDist::uniform(0.0, 2.0).unwrap(),
            ContinuousDist::triangular(0.0, 0.5, 2.0).unwrap(),
        ] {
            let (lo, hi) = d.discretization_range();
            let n = 20_000;
            let h = (hi - lo) / n as f64;
            let mut integral = 0.0;
            for i in 0..n {
                let x = lo + (i as f64 + 0.5) * h;
                integral += d.pdf(x) * h;
            }
            assert!(
                (integral - 1.0).abs() < 1e-3,
                "pdf of {d:?} integrates to {integral}"
            );
        }
    }
}
